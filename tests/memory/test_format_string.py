"""printf interpreter tests: parsing, rendering, varargs walking, %n."""

import pytest

from repro.memory import (
    AddressSpace,
    contains_directives,
    parse_directives,
    vsprintf,
)


@pytest.fixture
def space():
    return AddressSpace(size=1024 * 1024)


class TestParsing:
    def test_simple_directives(self):
        directives = parse_directives(b"%d %x %s %n")
        assert [d.conversion for d in directives] == ["d", "x", "s", "n"]

    def test_literal_percent_excluded(self):
        assert parse_directives(b"100%% done") == []

    def test_width_parsed(self):
        (directive,) = parse_directives(b"%08x")
        assert directive.width == 8

    def test_length_modifiers_skipped(self):
        (directive,) = parse_directives(b"%ld")
        assert directive.conversion == "d"

    def test_is_write_flag(self):
        d_read, d_write = parse_directives(b"%x%n")
        assert not d_read.is_write
        assert d_write.is_write

    def test_no_directives(self):
        assert parse_directives(b"/var/statmon/sm/host") == []

    def test_contains_directives(self):
        assert contains_directives(b"evil%n")
        assert not contains_directives(b"benign")
        assert not contains_directives(b"100%%")

    def test_trailing_bare_percent(self):
        assert parse_directives(b"50%") == []


class TestRendering:
    def test_plain_text(self, space):
        result = vsprintf(space, b"hello")
        assert result.output == b"hello"

    def test_decimal(self, space):
        assert vsprintf(space, b"%d", args=(42,)).output == b"42"

    def test_negative_decimal_from_bit_pattern(self, space):
        assert vsprintf(space, b"%d", args=(0xFFFFFFFF,)).output == b"-1"

    def test_unsigned(self, space):
        assert vsprintf(space, b"%u", args=(0xFFFFFFFF,)).output == b"4294967295"

    def test_hex(self, space):
        assert vsprintf(space, b"%x", args=(255,)).output == b"ff"

    def test_hex_upper(self, space):
        assert vsprintf(space, b"%X", args=(255,)).output == b"FF"

    def test_octal(self, space):
        assert vsprintf(space, b"%o", args=(8,)).output == b"10"

    def test_char(self, space):
        assert vsprintf(space, b"%c", args=(65,)).output == b"A"

    def test_width_padding(self, space):
        assert vsprintf(space, b"%8x", args=(0xAB,)).output == b"      ab"

    def test_string_inline(self, space):
        assert vsprintf(space, b"[%s]", args=(b"abc",)).output == b"[abc]"

    def test_string_by_pointer(self, space):
        space.write_cstring(0x500, b"ptr")
        assert vsprintf(space, b"%s", args=(0x500,)).output == b"ptr"

    def test_literal_percent(self, space):
        assert vsprintf(space, b"100%%").output == b"100%"

    def test_mixed(self, space):
        result = vsprintf(space, b"%d+%d", args=(1, 2))
        assert result.output == b"1+2"
        assert result.words_consumed == 2


class TestVarargsWalk:
    def test_excess_args_read_from_stack(self, space):
        space.write_word(0x600, 0xDEAD)
        result = vsprintf(space, b"%x", args=(), vararg_base=0x600)
        assert result.output == b"dead"

    def test_walk_is_sequential(self, space):
        space.write_word(0x600, 1)
        space.write_word(0x604, 2)
        result = vsprintf(space, b"%d%d", args=(), vararg_base=0x600)
        assert result.output == b"12"

    def test_explicit_args_consumed_first(self, space):
        space.write_word(0x600, 99)
        result = vsprintf(space, b"%d%d", args=(7,), vararg_base=0x600)
        assert result.output == b"799"

    def test_no_vararg_base_reads_zero(self, space):
        assert vsprintf(space, b"%d").output == b"0"

    def test_stack_leak_signature(self, space):
        # The classic %x%x%x information leak.
        for offset, word in enumerate((0xAAAA, 0xBBBB, 0xCCCC)):
            space.write_word(0x600 + 4 * offset, word)
        result = vsprintf(space, b"%x.%x.%x", args=(), vararg_base=0x600)
        assert result.output == b"aaaa.bbbb.cccc"


class TestPercentN:
    def test_writes_output_length(self, space):
        result = vsprintf(space, b"AAAA%n", args=(0x700,))
        assert space.read_word(0x700) == 4
        assert result.writes == [0x700]
        assert result.wrote_memory

    def test_count_includes_padding(self, space):
        vsprintf(space, b"%100x%n", args=(1, 0x700))
        assert space.read_word(0x700) == 100

    def test_target_from_stack_walk(self, space):
        # The exploit shape: the target address sits among the varargs.
        space.write_word(0x600, 0x700)
        vsprintf(space, b"AB%n", args=(), vararg_base=0x600)
        assert space.read_word(0x700) == 2

    def test_multiple_writes(self, space):
        result = vsprintf(space, b"a%nbb%n", args=(0x700, 0x710))
        assert space.read_word(0x700) == 1
        assert space.read_word(0x710) == 3
        assert len(result.writes) == 2

    def test_no_write_without_n(self, space):
        assert not vsprintf(space, b"%x", args=(1,)).wrote_memory
