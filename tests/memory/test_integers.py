"""C integer semantics tests — the arithmetic behind the signed-overflow
vulnerabilities."""

import pytest

from repro.memory import (
    Int8,
    Int16,
    Int32,
    UInt8,
    UInt16,
    UInt32,
    Int64,
    UInt64,
    atoi,
    int32,
    strtol,
    uint32,
)


class TestRanges:
    def test_int32_bounds(self):
        assert Int32.min_value() == -(2**31)
        assert Int32.max_value() == 2**31 - 1

    def test_uint32_bounds(self):
        assert UInt32.min_value() == 0
        assert UInt32.max_value() == 2**32 - 1

    def test_in_range(self):
        assert Int32.in_range(2**31 - 1)
        assert not Int32.in_range(2**31)
        assert Int32.in_range(-(2**31))
        assert not Int32.in_range(-(2**31) - 1)

    def test_would_overflow(self):
        assert Int32.would_overflow(2**31)
        assert not Int32.would_overflow(100)

    def test_int8_bounds(self):
        assert Int8.min_value() == -128
        assert Int8.max_value() == 127


class TestWraparound:
    def test_positive_overflow_wraps_negative(self):
        assert Int32(2**31).value == -(2**31)

    def test_negative_overflow_wraps_positive(self):
        assert Int32(-(2**31) - 1).value == 2**31 - 1

    def test_unsigned_wraps_modulo(self):
        assert UInt32(2**32 + 5).value == 5

    def test_addition_wraps(self):
        assert (Int32(2**31 - 1) + 1).value == -(2**31)

    def test_subtraction_wraps(self):
        assert (UInt32(0) - 1).value == 2**32 - 1

    def test_multiplication_wraps(self):
        assert (Int32(2**16) * (2**16)).value == 0  # 2^32 wraps to 0

    def test_nullhttpd_size_arithmetic(self):
        # The exact arithmetic of calloc(contentLen + 1024, 1).
        assert (Int32(-800) + 1024).value == 224

    def test_int16_truncation(self):
        assert Int16(0x12345).value == 0x2345


class TestCasts:
    def test_signed_to_unsigned_reinterpret(self):
        assert Int32(-1).cast(UInt32).value == 2**32 - 1

    def test_unsigned_to_signed_reinterpret(self):
        assert UInt32(2**32 - 1).cast(Int32).value == -1

    def test_narrowing_cast(self):
        assert Int32(0x1FF).cast(Int8).value == -1

    def test_as_unsigned(self):
        assert Int32(-1).as_unsigned() == 0xFFFFFFFF

    def test_roundtrip_bytes(self):
        value = Int32(-563)
        assert Int32.from_bytes_le(value.to_bytes_le()) == value

    def test_from_bytes_wrong_width(self):
        with pytest.raises(ValueError):
            Int32.from_bytes_le(b"\x01\x02")


class TestDivision:
    def test_c_division_truncates_toward_zero(self):
        assert (Int32(-7) // 2).value == -3  # Python would give -4

    def test_c_modulo_sign_follows_dividend(self):
        assert (Int32(-7) % 2).value == -1  # Python would give 1

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Int32(1) // 0

    def test_modulo_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Int32(1) % 0


class TestShifts:
    def test_signed_right_shift_is_arithmetic(self):
        assert (Int32(-8) >> 1).value == -4

    def test_unsigned_right_shift_is_logical(self):
        assert (UInt32(0x80000000) >> 1).value == 0x40000000

    def test_left_shift_wraps(self):
        assert (Int32(1) << 31).value == -(2**31)


class TestBitwise:
    def test_and(self):
        assert (Int32(-1) & 0xFF).value == 0xFF

    def test_or(self):
        assert (UInt32(0xF0) | 0x0F).value == 0xFF

    def test_xor(self):
        assert (UInt32(0xFF) ^ 0x0F).value == 0xF0

    def test_invert(self):
        assert (~Int32(0)).value == -1


class TestComparison:
    def test_equality_across_types_by_value(self):
        assert Int32(5) == UInt32(5)
        assert Int32(5) == 5

    def test_negative_not_equal_reinterpretation(self):
        assert Int32(-1) != UInt32(2**32 - 1)  # values differ

    def test_ordering(self):
        assert Int32(-1) < Int32(0) < Int32(1)

    def test_hashable(self):
        assert len({Int32(1), Int32(1), Int32(2)}) == 2

    def test_bool(self):
        assert Int32(1)
        assert not Int32(0)


class TestAtoi:
    def test_simple(self):
        assert atoi("42").value == 42

    def test_negative(self):
        assert atoi("-800").value == -800

    def test_leading_whitespace(self):
        assert atoi("   17").value == 17

    def test_trailing_garbage_ignored(self):
        assert atoi("25.120").value == 25

    def test_no_digits(self):
        assert atoi("abc").value == 0

    def test_empty(self):
        assert atoi("").value == 0

    def test_plus_sign(self):
        assert atoi("+9").value == 9

    def test_wraps_like_the_sendmail_exploit(self):
        # A huge decimal wraps to a negative index through 32-bit math.
        assert atoi(str(2**32 - 3772)).value == -3772

    def test_2_31_wraps_negative(self):
        assert atoi(str(2**31)).value == -(2**31)


class TestStrtol:
    def test_simple(self):
        assert strtol("123").value == 123

    def test_saturates_high(self):
        assert strtol(str(2**40)).value == Int32.max_value()

    def test_saturates_low(self):
        assert strtol("-" + str(2**40)).value == Int32.min_value()

    def test_hex_base(self):
        assert strtol("ff", base=16).value == 255

    def test_stops_at_invalid(self):
        assert strtol("12z9").value == 12

    def test_empty(self):
        assert strtol("").value == 0


class TestConstructors:
    def test_shorthand_constructors(self):
        assert int32(-1).value == -1
        assert uint32(-1).value == 2**32 - 1

    def test_repr(self):
        assert repr(Int32(5)) == "Int32(5)"

    def test_index_protocol(self):
        assert [10, 20, 30][Int32(1)] == 20

    def test_64_bit(self):
        assert Int64(2**63).value == -(2**63)
        assert UInt64(-1).value == 2**64 - 1

    def test_construct_from_cint(self):
        assert Int32(UInt32(2**32 - 1)).value == -1
