"""Address space tests: regions, bounds, audit trail, watchpoints."""

import pytest

from repro.memory import AddressSpace, MemoryFault, WORD_SIZE


@pytest.fixture
def space():
    return AddressSpace(size=64 * 1024)


class TestRegions:
    def test_map_and_lookup(self, space):
        region = space.map_region("buf", 0x100, 0x40)
        assert space.region("buf") is region
        assert region.end == 0x140

    def test_contains(self, space):
        region = space.map_region("buf", 0x100, 0x40)
        assert region.contains(0x100)
        assert region.contains(0x13F)
        assert not region.contains(0x140)

    def test_overlap_rejected(self, space):
        space.map_region("a", 0x100, 0x40)
        with pytest.raises(ValueError):
            space.map_region("b", 0x120, 0x40)

    def test_duplicate_name_rejected(self, space):
        space.map_region("a", 0x100, 0x40)
        with pytest.raises(ValueError):
            space.map_region("a", 0x200, 0x40)

    def test_exceeds_space_rejected(self, space):
        with pytest.raises(ValueError):
            space.map_region("big", 0, space.size + 1)

    def test_unmap_preserves_contents(self, space):
        space.map_region("a", 0x100, 0x40)
        space.write_byte(0x100, 0xAB)
        space.unmap_region("a")
        assert space.read_byte(0x100) == 0xAB

    def test_region_at(self, space):
        space.map_region("a", 0x100, 0x40)
        assert space.region_at(0x110).name == "a"
        assert space.region_at(0x200) is None

    def test_regions_sorted(self, space):
        space.map_region("hi", 0x400, 0x10)
        space.map_region("lo", 0x100, 0x10)
        assert [r.name for r in space.regions()] == ["lo", "hi"]

    def test_find_free_range(self, space):
        space.map_region("a", WORD_SIZE, 0x100)
        start = space.find_free_range(0x50)
        region = space.map_region("b", start, 0x50)
        assert not region.overlaps(space.region("a"))

    def test_find_free_range_exhausted(self):
        tiny = AddressSpace(size=32)
        with pytest.raises(Exception):
            tiny.map_region("a", 4, 28)
            tiny.find_free_range(64)


class TestByteAccess:
    def test_unwritten_reads_zero(self, space):
        assert space.read_byte(0x500) == 0

    def test_write_read_roundtrip(self, space):
        space.write_byte(0x500, 0x7F)
        assert space.read_byte(0x500) == 0x7F

    def test_byte_masked(self, space):
        space.write_byte(0x500, 0x1FF)
        assert space.read_byte(0x500) == 0xFF

    def test_out_of_bounds_read_faults(self, space):
        with pytest.raises(MemoryFault):
            space.read_byte(space.size)

    def test_negative_address_faults(self, space):
        with pytest.raises(MemoryFault):
            space.read_byte(-1)

    def test_bulk_write_read(self, space):
        space.write(0x600, b"hello")
        assert space.read(0x600, 5) == b"hello"

    def test_bulk_straddling_end_faults(self, space):
        with pytest.raises(MemoryFault):
            space.write(space.size - 2, b"abcd")


class TestWordAccess:
    def test_little_endian(self, space):
        space.write_word(0x700, 0x11223344)
        assert space.read(0x700, 4) == b"\x44\x33\x22\x11"

    def test_word_roundtrip(self, space):
        space.write_word(0x700, 0xDEADBEEF)
        assert space.read_word(0x700) == 0xDEADBEEF

    def test_word_masks_to_32_bits(self, space):
        space.write_word(0x700, 0x1_0000_0001)
        assert space.read_word(0x700) == 1


class TestCStrings:
    def test_write_read(self, space):
        space.write_cstring(0x800, b"abc")
        assert space.read_cstring(0x800) == b"abc"

    def test_terminator_written(self, space):
        space.write(0x800, b"\xff" * 8)
        space.write_cstring(0x800, b"ab")
        assert space.read_byte(0x802) == 0

    def test_read_stops_at_nul(self, space):
        space.write(0x800, b"ab\x00cd")
        assert space.read_cstring(0x800) == b"ab"

    def test_read_limit(self, space):
        space.write(0x800, b"\x41" * 100)
        assert len(space.read_cstring(0x800, limit=10)) == 10


class TestAuditTrail:
    def test_writes_logged(self, space):
        space.map_region("buf", 0x100, 4)
        space.write(0x100, b"ab", label="buf")
        assert len(space.write_log) == 2
        assert space.write_log[0].region == "buf"

    def test_out_of_bounds_writes_flagged(self, space):
        space.map_region("buf", 0x100, 4)
        space.write(0x100, b"abcdef", label="buf")
        outside = space.writes_outside("buf")
        assert len(outside) == 2
        assert all(record.out_of_bounds for record in outside)

    def test_overlapping_writes(self, space):
        space.write(0x100, b"xy")
        space.write(0x200, b"z")
        hits = space.overlapping_writes(0x100, 4)
        assert len(hits) == 2

    def test_tracking_disabled(self):
        space = AddressSpace(size=1024, track_writes=False)
        space.write(0x10, b"ab")
        assert space.write_log == []


class TestSnapshots:
    def test_unchanged(self, space):
        space.write_word(0x100, 42)
        snap = space.snapshot(0x100, 4)
        assert space.unchanged_since(snap)

    def test_changed_detected(self, space):
        space.write_word(0x100, 42)
        snap = space.snapshot(0x100, 4)
        space.write_byte(0x102, 9)
        assert not space.unchanged_since(snap)


class TestWatchpoints:
    def test_fires_on_write(self, space):
        hits = []
        space.add_watchpoint(0x100, lambda addr, val: hits.append((addr, val)))
        space.write_byte(0x100, 5)
        assert hits == [(0x100, 5)]

    def test_not_fired_elsewhere(self, space):
        hits = []
        space.add_watchpoint(0x100, lambda addr, val: hits.append(addr))
        space.write_byte(0x101, 5)
        assert hits == []

    def test_clear(self, space):
        hits = []
        space.add_watchpoint(0x100, lambda addr, val: hits.append(addr))
        space.clear_watchpoints()
        space.write_byte(0x100, 5)
        assert hits == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AddressSpace(size=0)
