"""Call-stack tests: frame layout, smash detection, canary semantics."""

import pytest

from repro.memory import AddressSpace, CallStack, StackSmashed, strcpy


@pytest.fixture
def space():
    return AddressSpace(size=1024 * 1024)


@pytest.fixture
def stack(space):
    return CallStack(space, size=16 * 1024)


class TestFrameLayout:
    def test_push_returns_frame(self, stack):
        frame = stack.push_frame("f", 0x1000, {"buf": 64})
        assert frame.function == "f"
        assert frame.local_size("buf") == 64

    def test_return_address_stored_in_memory(self, stack, space):
        frame = stack.push_frame("f", 0x1234, {})
        assert space.read_word(frame.return_address_slot) == 0x1234

    def test_locals_below_return_address(self, stack):
        frame = stack.push_frame("f", 0x1000, {"buf": 64})
        assert frame.local_address("buf") < frame.return_address_slot

    def test_declaration_order_layout(self, stack):
        # First-declared local sits highest (closest to the frame data).
        frame = stack.push_frame("f", 0x1000, {"first": 16, "second": 16})
        assert frame.local_address("first") > frame.local_address("second")

    def test_stack_grows_downward(self, stack):
        outer = stack.push_frame("outer", 0x1000, {"a": 32})
        inner = stack.push_frame("inner", 0x1000, {"b": 32})
        assert inner.base < outer.base

    def test_overflow_of_stack_region(self, stack):
        with pytest.raises(OverflowError):
            stack.push_frame("huge", 0x1000, {"buf": 10**6})

    def test_current_frame(self, stack):
        stack.push_frame("f", 0x1000, {})
        assert stack.current_frame.function == "f"

    def test_current_frame_empty_raises(self, stack):
        with pytest.raises(IndexError):
            stack.current_frame


class TestReturnSemantics:
    def test_clean_return(self, stack):
        stack.push_frame("f", 0xBEEF, {})
        assert stack.pop_frame() == 0xBEEF

    def test_nested_returns(self, stack):
        stack.push_frame("outer", 0x1111, {})
        stack.push_frame("inner", 0x2222, {})
        assert stack.pop_frame() == 0x2222
        assert stack.pop_frame() == 0x1111

    def test_stack_pointer_restored(self, stack):
        before = stack._top
        stack.push_frame("f", 0x1000, {"buf": 64})
        stack.pop_frame()
        assert stack._top == before

    def test_smash_detected_on_return(self, stack, space):
        frame = stack.push_frame("f", 0x1000, {"buf": 16})
        gap = frame.return_address_slot - frame.local_address("buf")
        strcpy(space, frame.local_address("buf"),
               b"A" * gap + (0x41414141).to_bytes(4, "little"))
        with pytest.raises(StackSmashed) as exc:
            stack.pop_frame()
        assert exc.value.hijacked_target == 0x41414141
        assert exc.value.legitimate == 0x1000

    def test_return_address_intact_predicate(self, stack, space):
        frame = stack.push_frame("f", 0x1000, {"buf": 16})
        assert stack.return_address_intact()
        space.write_word(frame.return_address_slot, 0xBAD)
        assert not stack.return_address_intact()


class TestCanary:
    def test_canary_between_locals_and_return(self, stack):
        frame = stack.push_frame("f", 0x1000, {"buf": 16}, canary=0xCAFE)
        assert frame.local_address("buf") < frame.canary_slot
        assert frame.canary_slot < frame.return_address_slot

    def test_intact_canary_returns(self, stack):
        stack.push_frame("f", 0x1000, {"buf": 16}, canary=0xCAFE)
        assert stack.pop_frame() == 0x1000

    def test_linear_overflow_trips_canary(self, stack, space):
        frame = stack.push_frame("f", 0x1000, {"buf": 16}, canary=0xCAFE)
        strcpy(space, frame.local_address("buf"), b"A" * 40)
        with pytest.raises(ValueError, match="smashing detected"):
            stack.pop_frame()

    def test_canary_check_can_be_skipped(self, stack, space):
        frame = stack.push_frame("f", 0x1000, {"buf": 16}, canary=0xCAFE)
        space.write_word(frame.canary_slot, 0)
        # Without the check, the (intact) return address still works.
        assert stack.pop_frame(check_canary=False) == 0x1000

    def test_canary_intact_predicate(self, stack, space):
        frame = stack.push_frame("f", 0x1000, {"buf": 16}, canary=0xCAFE)
        assert stack.canary_intact()
        space.write_word(frame.canary_slot, 1)
        assert not stack.canary_intact()

    def test_no_canary_is_vacuously_intact(self, stack):
        stack.push_frame("f", 0x1000, {})
        assert stack.canary_intact()

    def test_targeted_write_bypasses_canary(self, stack, space):
        # A non-linear write (e.g. format-string) skips the canary — the
        # documented limitation of canaries vs %n.
        frame = stack.push_frame("f", 0x1000, {"buf": 16}, canary=0xCAFE)
        space.write_word(frame.return_address_slot, 0x666)
        with pytest.raises(StackSmashed):
            stack.pop_frame()  # canary passes, smash still detected here
