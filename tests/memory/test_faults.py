"""Fault-injection and detection-coverage tests."""

import pytest

from repro.memory import (
    AddressSpace,
    CallStack,
    FaultInjector,
    FaultKind,
    Heap,
    Process,
    Region,
    WORD_SIZE,
    measure_detection_coverage,
)


@pytest.fixture
def space():
    space = AddressSpace(size=64 * 1024)
    space.write(0x100, b"\xaa" * 64)
    return space


class TestPrimitives:
    def test_bit_flip_changes_one_bit(self, space):
        injector = FaultInjector(space, seed=1)
        record = injector.flip_bit(0x100, bit=3)
        assert record.effective
        assert record.after[0] == 0xAA ^ 0x08

    def test_byte_set(self, space):
        injector = FaultInjector(space, seed=1)
        record = injector.set_byte(0x100, value=0x55)
        assert space.read_byte(0x100) == 0x55
        assert record.before == b"\xaa"

    def test_byte_set_same_value_not_effective(self, space):
        injector = FaultInjector(space, seed=1)
        record = injector.set_byte(0x100, value=0xAA)
        assert not record.effective

    def test_word_set(self, space):
        injector = FaultInjector(space, seed=1)
        injector.set_word(0x100, value=0xDEADBEEF)
        assert space.read_word(0x100) == 0xDEADBEEF

    def test_log_accumulates(self, space):
        injector = FaultInjector(space, seed=1)
        injector.flip_bit(0x100)
        injector.set_byte(0x101)
        assert len(injector.log) == 2

    def test_deterministic_by_seed(self):
        def run(seed):
            space = AddressSpace(size=4096)
            region = space.map_region("target", 0x100, 64)
            injector = FaultInjector(space, seed=seed)
            return [injector.random_fault_in(region).address
                    for _ in range(10)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_random_fault_within_region(self, space):
        region = space.map_region("target", 0x200, 32)
        injector = FaultInjector(space, seed=3)
        for _ in range(50):
            record = injector.random_fault_in(region)
            assert region.start <= record.address < region.end


def _got_target():
    process = Process()
    symbols = list(process.got.symbols())
    span = Region("got-loaded", process.got.entry_address(symbols[0]),
                  len(symbols) * WORD_SIZE)
    return (process.space, span,
            lambda: all(process.got.is_consistent(s) for s in symbols))


def _return_slot_target(check):
    space = AddressSpace(size=1 << 20)
    stack = CallStack(space, size=8192)
    frame = stack.push_frame("f", 0x1000, {"buf": 32}, canary=0xCAFE)
    span = Region("ret", frame.return_address_slot, WORD_SIZE)
    if check == "canary":
        return (space, span, stack.canary_intact)
    return (space, span, stack.return_address_intact)


class TestCoverage:
    def test_got_consistency_full_coverage(self):
        report = measure_detection_coverage(
            "got", _got_target, trials=40, seed=1
        )
        assert report.coverage == 1.0
        assert report.effective > 0

    def test_canary_blind_to_targeted_return_writes(self):
        # The documented canary limitation (%n-style non-linear writes).
        report = measure_detection_coverage(
            "ret-vs-canary", lambda: _return_slot_target("canary"),
            trials=40, seed=2,
        )
        assert report.coverage == 0.0
        assert len(report.missed_faults) == report.effective

    def test_consistency_check_catches_targeted_writes(self):
        report = measure_detection_coverage(
            "ret-vs-check", lambda: _return_slot_target("check"),
            trials=40, seed=3,
        )
        assert report.coverage == 1.0

    def test_heap_link_coverage(self):
        def heap_target():
            space = AddressSpace(size=1 << 20)
            heap = Heap(space, size=64 * 1024)
            a = heap.malloc(64)
            heap.malloc(16)
            heap.free(a)
            chunk = heap.chunk_for(a)
            span = Region("links", chunk.fd_address, 2 * WORD_SIZE)
            return (space, span, heap.links_intact)

        report = measure_detection_coverage(
            "heap-links", heap_target, trials=40, seed=4
        )
        # Near-perfect: safe-unlink has a rare aliasing false negative
        # (see benchmarks/bench_fault_coverage.py).
        assert report.coverage >= 0.95

    def test_ineffective_faults_excluded(self):
        def zero_target():
            space = AddressSpace(size=4096)
            span = space.map_region("zeros", 0x100, 4)
            return (space, span, lambda: True)

        report = measure_detection_coverage(
            "noop", zero_target, trials=10, seed=5,
        )
        assert report.injected == 10
        assert report.detected <= report.effective

    def test_report_str(self):
        report = measure_detection_coverage(
            "got", _got_target, trials=5, seed=6
        )
        assert "got" in str(report) and "%" in str(report)
