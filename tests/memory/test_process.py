"""Process image tests: layout, Mcode planting, consistency predicates."""

import pytest

from repro.memory import ControlFlowHijack, MCODE_MAGIC, Process


@pytest.fixture
def process():
    return Process()


class TestLayout:
    def test_regions_disjoint(self, process):
        regions = list(process.space.regions())
        for first, second in zip(regions, regions[1:]):
            assert first.end <= second.start

    def test_got_below_globals(self, process):
        # The Sendmail exploit's layout requirement: a negative index
        # from a data-segment global reaches the GOT.
        assert process.got.region.end <= process.scratch.start

    def test_symbols_loaded(self, process):
        assert set(process.got.symbols()) == {"setuid", "free", "exit"}

    def test_function_entries_in_code(self, process):
        for symbol in ("setuid", "free", "exit"):
            entry = process.function_entry(symbol)
            assert process.code.contains(entry)

    def test_entries_distinct(self, process):
        entries = {process.function_entry(s) for s in ("setuid", "free", "exit")}
        assert len(entries) == 3

    def test_custom_symbols(self):
        process = Process(symbols=("open", "close"))
        assert set(process.got.symbols()) == {"open", "close"}


class TestMcode:
    def test_plant_writes_magic(self, process):
        address = process.plant_mcode()
        assert process.space.read_word(address) == MCODE_MAGIC

    def test_is_mcode(self, process):
        address = process.plant_mcode()
        assert process.is_mcode(address)
        assert not process.is_mcode(address + 4)

    def test_no_mcode_before_planting(self, process):
        assert process.mcode_address is None
        assert not process.is_mcode(0x5000)


class TestGlobals:
    def test_place_global_in_scratch(self, process):
        address = process.place_global("tTvect", 100)
        assert process.scratch.contains(address)

    def test_sequential_globals_disjoint(self, process):
        first = process.place_global("a", 64)
        second = process.place_global("b", 64)
        assert second >= first + 64


class TestConsistencyPredicates:
    def test_got_consistent_fresh(self, process):
        assert process.got_consistent("setuid")

    def test_got_consistent_after_corruption(self, process):
        process.space.write_word(process.got.entry_address("setuid"), 0x1)
        assert not process.got_consistent("setuid")

    def test_return_address_consistent(self, process):
        process.stack.push_frame("f", 0x1000, {"buf": 16})
        assert process.return_address_consistent()

    def test_heap_links_consistent_fresh(self, process):
        a = process.heap.malloc(64)
        process.heap.malloc(16)
        process.heap.free(a)
        assert process.heap_links_consistent()

    def test_hijack_through_corrupted_got(self, process):
        mcode = process.plant_mcode()
        process.space.write_word(process.got.entry_address("exit"), mcode)
        with pytest.raises(ControlFlowHijack) as exc:
            process.got.call("exit")
        assert process.is_mcode(exc.value.target)
