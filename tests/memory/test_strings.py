"""C string routine tests: unchecked copies overflow; checked ones don't."""

import pytest

from repro.memory import (
    AddressSpace,
    gets,
    getns,
    memcpy,
    memset,
    strcat,
    strcpy,
    strlen,
    strncpy,
)


@pytest.fixture
def space():
    space = AddressSpace(size=64 * 1024)
    space.map_region("buf", 0x100, 16)
    return space


class TestStrcpy:
    def test_copies_and_terminates(self, space):
        written = strcpy(space, 0x100, b"hello", label="buf")
        assert written == 6
        assert space.read_cstring(0x100) == b"hello"

    def test_overflows_past_region(self, space):
        strcpy(space, 0x100, b"A" * 32, label="buf")
        assert space.read_byte(0x110) == ord("A")  # past the 16-byte region
        assert space.writes_outside("buf")

    def test_empty_source(self, space):
        strcpy(space, 0x100, b"", label="buf")
        assert space.read_byte(0x100) == 0


class TestStrncpy:
    def test_bounded(self, space):
        strncpy(space, 0x100, b"A" * 32, 16, label="buf")
        assert not space.writes_outside("buf")

    def test_zero_pads(self, space):
        strncpy(space, 0x100, b"ab", 8)
        assert space.read(0x100, 8) == b"ab" + b"\x00" * 6

    def test_no_terminator_when_full(self, space):
        # The classic strncpy wart is preserved.
        strncpy(space, 0x100, b"ABCDEFGH", 8)
        assert space.read(0x100, 8) == b"ABCDEFGH"
        assert space.read_byte(0x108) == 0  # only because memory is zero-fill

    def test_negative_count_rejected(self, space):
        with pytest.raises(ValueError):
            strncpy(space, 0x100, b"x", -1)


class TestStrcat:
    def test_appends(self, space):
        strcpy(space, 0x100, b"ab")
        strcat(space, 0x100, b"cd")
        assert space.read_cstring(0x100) == b"abcd"

    def test_append_to_empty(self, space):
        strcat(space, 0x100, b"xy")
        assert space.read_cstring(0x100) == b"xy"


class TestMemcpy:
    def test_exact(self, space):
        memcpy(space, 0x100, b"abcd", 4)
        assert space.read(0x100, 4) == b"abcd"

    def test_count_exceeds_source_zero_fills(self, space):
        memcpy(space, 0x100, b"ab", 4)
        assert space.read(0x100, 4) == b"ab\x00\x00"

    def test_attacker_count_overflows(self, space):
        memcpy(space, 0x100, b"B" * 64, 64, label="buf")
        assert space.writes_outside("buf")

    def test_negative_count_rejected(self, space):
        with pytest.raises(ValueError):
            memcpy(space, 0x100, b"x", -4)


class TestMemset:
    def test_fills(self, space):
        memset(space, 0x100, 0xCC, 8)
        assert space.read(0x100, 8) == b"\xcc" * 8

    def test_masks_byte(self, space):
        memset(space, 0x100, 0x1FF, 1)
        assert space.read_byte(0x100) == 0xFF

    def test_negative_count_rejected(self, space):
        with pytest.raises(ValueError):
            memset(space, 0x100, 0, -1)


class TestGets:
    def test_unbounded(self, space):
        gets(space, 0x100, b"A" * 40, label="buf")
        assert space.writes_outside("buf")

    def test_stops_at_newline(self, space):
        gets(space, 0x100, b"line1\nline2")
        assert space.read_cstring(0x100) == b"line1"


class TestGetns:
    def test_bounded(self, space):
        getns(space, 0x100, 16, b"A" * 40, label="buf")
        assert not space.writes_outside("buf")
        assert space.read_cstring(0x100) == b"A" * 15

    def test_short_line(self, space):
        getns(space, 0x100, 16, b"hi\nrest")
        assert space.read_cstring(0x100) == b"hi"

    def test_zero_size_rejected(self, space):
        with pytest.raises(ValueError):
            getns(space, 0x100, 0, b"x")


class TestStrlen:
    def test_length(self, space):
        strcpy(space, 0x100, b"four")
        assert strlen(space, 0x100) == 4

    def test_empty(self, space):
        assert strlen(space, 0x200) == 0
