"""GOT tests: loading, consistency predicate, hijack-on-call semantics."""

import pytest

from repro.memory import (
    AddressSpace,
    ControlFlowHijack,
    GlobalOffsetTable,
    WORD_SIZE,
)


@pytest.fixture
def space():
    return AddressSpace(size=1024 * 1024)


@pytest.fixture
def got(space):
    return GlobalOffsetTable(space, base=0x2000, capacity=8)


class TestLoading:
    def test_load_stores_pointer_in_memory(self, got, space):
        entry = got.load_symbol("setuid", 0x1100)
        assert space.read_word(entry.address) == 0x1100

    def test_entries_are_adjacent_words(self, got):
        first = got.load_symbol("a", 0x1)
        second = got.load_symbol("b", 0x2)
        assert second.address == first.address + WORD_SIZE

    def test_duplicate_symbol_rejected(self, got):
        got.load_symbol("a", 0x1)
        with pytest.raises(ValueError):
            got.load_symbol("a", 0x2)

    def test_capacity_enforced(self, space):
        got = GlobalOffsetTable(space, base=0x2000, capacity=1)
        got.load_symbol("a", 1)
        with pytest.raises(ValueError, match="full"):
            got.load_symbol("b", 2)

    def test_symbols_listing(self, got):
        got.load_symbol("a", 1)
        got.load_symbol("b", 2)
        assert set(got.symbols()) == {"a", "b"}

    def test_entry_address(self, got):
        entry = got.load_symbol("free", 0x1140)
        assert got.entry_address("free") == entry.address


class TestConsistency:
    def test_fresh_entry_consistent(self, got):
        got.load_symbol("setuid", 0x1100)
        assert got.is_consistent("setuid")

    def test_memory_corruption_breaks_consistency(self, got, space):
        got.load_symbol("setuid", 0x1100)
        space.write_word(got.entry_address("setuid"), 0x6666)
        assert not got.is_consistent("setuid")

    def test_single_byte_corruption_detected(self, got, space):
        got.load_symbol("setuid", 0x1100)
        space.write_byte(got.entry_address("setuid"), 0x01)
        assert not got.is_consistent("setuid")

    def test_current_target_reads_memory(self, got, space):
        got.load_symbol("free", 0x1140)
        space.write_word(got.entry_address("free"), 0x7777)
        assert got.current_target("free") == 0x7777


class TestCallDispatch:
    def test_clean_call_returns_target(self, got):
        got.load_symbol("setuid", 0x1100)
        assert got.call("setuid") == 0x1100

    def test_corrupted_call_hijacks(self, got, space):
        got.load_symbol("setuid", 0x1100)
        space.write_word(got.entry_address("setuid"), 0x6666)
        with pytest.raises(ControlFlowHijack) as exc:
            got.call("setuid")
        assert exc.value.target == 0x6666
        assert exc.value.legitimate == 0x1100
        assert exc.value.symbol == "setuid"

    def test_consistency_check_refuses_corrupted_call(self, got, space):
        got.load_symbol("setuid", 0x1100)
        space.write_word(got.entry_address("setuid"), 0x6666)
        with pytest.raises(ValueError, match="refused"):
            got.call("setuid", check_consistency=True)

    def test_consistency_check_passes_clean_call(self, got):
        got.load_symbol("setuid", 0x1100)
        assert got.call("setuid", check_consistency=True) == 0x1100

    def test_unknown_symbol(self, got):
        with pytest.raises(KeyError):
            got.call("nosuch")
