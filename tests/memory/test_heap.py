"""Heap allocator tests: allocation invariants, free-list threading,
consolidation, and the unlink write primitive."""

import pytest

from repro.memory import (
    AddressSpace,
    BK_OFFSET,
    CHUNK_HEADER_SIZE,
    FD_OFFSET,
    Heap,
    HeapCorruptionDetected,
    HeapError,
    MIN_CHUNK_SIZE,
)


@pytest.fixture
def space():
    return AddressSpace(size=4 * 1024 * 1024)


@pytest.fixture
def heap(space):
    return Heap(space, size=256 * 1024)


class TestAllocation:
    def test_malloc_returns_usable_address(self, heap, space):
        address = heap.malloc(64)
        space.write(address, b"x" * 64)
        assert space.read(address, 64) == b"x" * 64

    def test_allocations_do_not_overlap(self, heap):
        chunks = [(heap.malloc(n), n) for n in (16, 64, 128, 8, 256)]
        ranges = sorted((a, a + heap.allocation_size(a)) for a, _n in chunks)
        for (s1, e1), (s2, _e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2

    def test_allocation_size_at_least_request(self, heap):
        address = heap.malloc(50)
        assert heap.allocation_size(address) >= 50

    def test_negative_request_rejected(self, heap):
        with pytest.raises(HeapError):
            heap.malloc(-8)

    def test_zero_request_gets_minimum(self, heap):
        address = heap.malloc(0)
        assert heap.allocation_size(address) >= MIN_CHUNK_SIZE - CHUNK_HEADER_SIZE

    def test_calloc_zeroes(self, heap, space):
        address = heap.malloc(64)
        space.write(address, b"\xff" * 64)
        heap.free(address)
        address2 = heap.calloc(64, 1)
        assert space.read(address2, 64) == b"\x00" * 64

    def test_out_of_memory(self, space):
        heap = Heap(space, size=1024)
        with pytest.raises(HeapError):
            heap.malloc(4096)

    def test_alignment(self, heap):
        for request in (1, 7, 9, 100):
            address = heap.malloc(request)
            assert (address - CHUNK_HEADER_SIZE) % 8 == 0


class TestFree:
    def test_free_then_reuse(self, heap):
        a = heap.malloc(64)
        heap.free(a)
        b = heap.malloc(64)
        assert b == a  # first fit reuses the freed chunk

    def test_double_free_detected(self, heap):
        a = heap.malloc(64)
        heap.free(a)
        with pytest.raises(HeapError, match="unallocated"):
            heap.free(a)

    def test_free_of_wild_pointer(self, heap):
        with pytest.raises(HeapError):
            heap.free(0x123456)

    def test_free_list_threaded_through_memory(self, heap, space):
        a = heap.malloc(64)
        b = heap.malloc(64)
        heap.malloc(64)  # guard
        heap.free(a)
        heap.free(b)
        free_chunks = heap.free_list()
        assert len(free_chunks) == 2
        # Links are real words in memory.
        head = free_chunks[0]
        assert space.read_word(head + FD_OFFSET) == free_chunks[1]

    def test_split_leaves_remainder_free(self, heap):
        a = heap.malloc(256)
        heap.malloc(16)  # guard
        heap.free(a)
        b = heap.malloc(64)
        assert b == a
        assert len(heap.free_list()) == 1  # the split remainder


class TestConsolidation:
    def test_forward_consolidation_merges(self, heap):
        a = heap.malloc(64)
        b = heap.malloc(64)
        heap.malloc(16)  # guard
        heap.free(b)
        size_b = heap.space.read_word(b - CHUNK_HEADER_SIZE) & ~0x7
        heap.free(a)
        merged = heap.free_list()
        assert len(merged) == 1
        merged_size = heap.space.read_word(merged[0]) & ~0x7
        assert merged_size >= size_b + 64

    def test_next_physical_chunk(self, heap):
        a = heap.malloc(64)
        b = heap.malloc(64)
        chunk = heap.next_physical_chunk(a)
        assert chunk.user_address == b

    def test_next_physical_none_at_wilderness(self, heap):
        a = heap.malloc(64)
        assert heap.next_physical_chunk(a) is None


class TestUnlinkPrimitive:
    def _stage_corrupted_neighbour(self, heap, space):
        """PostData-style layout with attacker-controlled fd/bk in B."""
        a = heap.malloc(64)
        b = heap.malloc(64)
        heap.malloc(16)  # guard
        heap.free(b)
        chunk_b = heap.next_physical_chunk(a)
        target = heap.region.end + 0x100  # attacker-chosen slot (e.g. a GOT entry)
        payload = heap.region.end + 0x200  # attacker code address (must be mapped,
        # as Mcode is — the mirror write bk->fd lands near it)
        space.write_word(chunk_b.fd_address, target - BK_OFFSET)
        space.write_word(chunk_b.bk_address, payload)
        return a, target, payload

    def test_unlink_writes_attacker_word(self, heap, space):
        a, target, payload = self._stage_corrupted_neighbour(heap, space)
        heap.free(a)  # consolidation unlinks B with corrupted links
        assert space.read_word(target) == payload

    def test_links_intact_detects_corruption(self, heap, space):
        a, _target, _payload = self._stage_corrupted_neighbour(heap, space)
        assert not heap.links_intact()

    def test_links_intact_on_clean_heap(self, heap):
        a = heap.malloc(64)
        b = heap.malloc(64)
        heap.malloc(16)
        heap.free(b)
        heap.free(a)
        assert heap.links_intact()

    def test_safe_unlink_detects(self, space):
        heap = Heap(space, size=256 * 1024, check_unlink=True)
        a = heap.malloc(64)
        b = heap.malloc(64)
        heap.malloc(16)
        heap.free(b)
        chunk_b = heap.next_physical_chunk(a)
        space.write_word(chunk_b.fd_address, 0x1234)
        space.write_word(chunk_b.bk_address, 0x5678)
        with pytest.raises(HeapCorruptionDetected):
            heap.free(a)

    def test_safe_unlink_allows_clean_operations(self, space):
        heap = Heap(space, size=256 * 1024, check_unlink=True)
        a = heap.malloc(64)
        b = heap.malloc(64)
        heap.malloc(16)
        heap.free(b)
        heap.free(a)  # clean consolidation must pass the check
        c = heap.malloc(32)
        heap.free(c)

    def test_free_list_walk_bounded_on_cycles(self, heap, space):
        a = heap.malloc(64)
        heap.malloc(16)
        heap.free(a)
        # Create a self-loop in the free list.
        space.write_word(a - CHUNK_HEADER_SIZE + FD_OFFSET,
                         a - CHUNK_HEADER_SIZE)
        chunks = heap.free_list(max_hops=50)
        assert len(chunks) == 50  # bounded, no hang


class TestInspection:
    def test_allocations_iterator(self, heap):
        a = heap.malloc(16)
        b = heap.malloc(16)
        assert set(heap.allocations()) == {a, b}
        heap.free(a)
        assert set(heap.allocations()) == {b}

    def test_chunk_for(self, heap):
        a = heap.malloc(24)
        chunk = heap.chunk_for(a)
        assert chunk.user_address == a
        assert chunk.user_size >= 24


class TestLayoutDescription:
    def test_shows_chunks_in_physical_order(self, heap):
        a = heap.malloc(64)
        b = heap.malloc(64)
        heap.malloc(16)
        heap.free(b)
        text = heap.describe_layout()
        lines = [l for l in text.splitlines() if "chunk" in l]
        assert len(lines) == 3
        assert "IN USE" in lines[0]
        assert "free" in lines[1] and "fd=" in lines[1]
        assert text.strip().endswith("wilderness")

    def test_corrupt_size_word_reported(self, heap, space):
        a = heap.malloc(64)
        space.write_word(a - CHUNK_HEADER_SIZE, 3)  # size below minimum
        assert "corrupt size word" in heap.describe_layout()

    def test_empty_heap(self, heap):
        text = heap.describe_layout()
        assert "wilderness" in text
