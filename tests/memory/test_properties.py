"""Property-based tests over the memory substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    AddressSpace,
    Heap,
    Int8,
    Int32,
    UInt32,
    atoi,
)

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
any_ints = st.integers(min_value=-(2**40), max_value=2**40)


class TestIntegerProperties:
    @given(any_ints)
    def test_wrap_is_idempotent(self, value):
        assert Int32(Int32(value)).value == Int32(value).value

    @given(any_ints)
    def test_value_always_in_range(self, value):
        assert Int32.min_value() <= Int32(value).value <= Int32.max_value()

    @given(any_ints, any_ints)
    def test_addition_is_modular(self, a, b):
        assert (Int32(a) + Int32(b)).value == Int32(a + b).value

    @given(any_ints, any_ints)
    def test_multiplication_is_modular(self, a, b):
        assert (Int32(a) * Int32(b)).value == Int32(a * b).value

    @given(int32s)
    def test_in_range_values_preserved(self, value):
        assert Int32(value).value == value

    @given(any_ints)
    def test_signed_unsigned_round_trip(self, value):
        assert Int32(value).cast(UInt32).cast(Int32).value == Int32(value).value

    @given(int32s)
    def test_bytes_round_trip(self, value):
        assert Int32.from_bytes_le(Int32(value).to_bytes_le()).value == value

    @given(any_ints)
    def test_negation_involution(self, value):
        x = Int32(value)
        assert (-(-x)).value == x.value

    @given(st.integers(min_value=-(2**20), max_value=2**20))
    def test_atoi_matches_int_in_range(self, value):
        assert atoi(str(value)).value == value

    @given(any_ints)
    def test_atoi_wraps_like_int32(self, value):
        assert atoi(str(value)).value == Int32(value).value

    @given(st.integers(min_value=-(2**10), max_value=2**10))
    def test_int8_truncation_consistent(self, value):
        assert Int8(value).value == Int8(Int32(value).value & 0xFF).value


class TestAddressSpaceProperties:
    @given(st.binary(min_size=0, max_size=128),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_write_read_round_trip(self, data, offset):
        space = AddressSpace(size=8192)
        space.write(offset, data)
        assert space.read(offset, len(data)) == data

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50)
    def test_word_round_trip(self, value):
        space = AddressSpace(size=64)
        space.write_word(0, value)
        assert space.read_word(0) == value

    @given(st.binary(min_size=0, max_size=32).filter(lambda b: 0 not in b))
    @settings(max_examples=50)
    def test_cstring_round_trip(self, data):
        space = AddressSpace(size=256)
        space.write_cstring(0, data)
        assert space.read_cstring(0) == data


class TestHeapProperties:
    @given(st.lists(st.integers(min_value=1, max_value=256),
                    min_size=1, max_size=12))
    @settings(max_examples=50)
    def test_live_allocations_never_overlap(self, sizes):
        space = AddressSpace(size=1024 * 1024)
        heap = Heap(space, size=256 * 1024)
        addresses = [heap.malloc(size) for size in sizes]
        ranges = sorted(
            (addr, addr + heap.allocation_size(addr)) for addr in addresses
        )
        for (s1, e1), (s2, _e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=128),
                              st.booleans()),
                    min_size=1, max_size=16))
    @settings(max_examples=50)
    def test_free_list_consistent_after_any_sequence(self, script):
        space = AddressSpace(size=1024 * 1024)
        heap = Heap(space, size=256 * 1024)
        live = []
        for size, do_free in script:
            live.append(heap.malloc(size))
            if do_free and live:
                heap.free(live.pop(0))
        assert heap.links_intact()

    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=50)
    def test_malloc_free_malloc_reuses(self, size):
        space = AddressSpace(size=1024 * 1024)
        heap = Heap(space, size=256 * 1024)
        a = heap.malloc(size)
        heap.malloc(16)  # guard against wilderness merge
        heap.free(a)
        assert heap.malloc(size) == a
