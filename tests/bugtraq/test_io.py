"""Report serialization round-trip tests."""

import json

import pytest

from repro.bugtraq import (
    BugtraqDatabase,
    corpus_report,
    database_from_json,
    database_to_json,
    dump_database,
    load_database,
    report_from_dict,
    report_to_dict,
    studied_family_share,
)


class TestReportRoundTrip:
    def test_full_round_trip(self):
        report = corpus_report(3163)
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt == report

    def test_activities_preserved(self):
        report = corpus_report(5774)
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.activities == report.activities

    def test_none_id_preserved(self):
        db = BugtraqDatabase.curated()
        xterm = next(r for r in db if r.bugtraq_id is None)
        rebuilt = report_from_dict(report_to_dict(xterm))
        assert rebuilt.bugtraq_id is None

    def test_unknown_category_rejected(self):
        data = report_to_dict(corpus_report(3163))
        data["category"] = "Nonsense Error"
        with pytest.raises(ValueError):
            report_from_dict(data)

    def test_unknown_activity_rejected(self):
        data = report_to_dict(corpus_report(3163))
        data["activities"][0]["activity"] = "nonsense"
        with pytest.raises(ValueError):
            report_from_dict(data)

    def test_defaults_applied(self):
        minimal = {
            "title": "t",
            "category": "Design Error",
            "vulnerability_class": "design error",
        }
        report = report_from_dict(minimal)
        assert report.bugtraq_id is None
        assert not report.remote
        assert report.activities == ()


class TestDatabaseRoundTrip:
    def test_curated_round_trip(self):
        db = BugtraqDatabase.curated()
        rebuilt = database_from_json(database_to_json(db))
        assert list(rebuilt) == list(db)

    def test_synthetic_statistics_survive(self):
        db = BugtraqDatabase.synthetic(total=500, seed=9)
        rebuilt = database_from_json(database_to_json(db))
        assert studied_family_share(rebuilt) == studied_family_share(db)
        assert rebuilt.category_counts() == db.category_counts()

    def test_json_is_valid(self):
        text = database_to_json(BugtraqDatabase.curated())
        json.loads(text)

    def test_file_round_trip(self, tmp_path):
        db = BugtraqDatabase.synthetic(total=100, seed=2)
        path = tmp_path / "corpus.json"
        dump_database(db, str(path))
        loaded = load_database(str(path))
        assert len(loaded) == 100
        assert loaded.category_counts() == db.category_counts()
