"""Bugtraq data-layer tests: schema, corpus, generator, database, stats."""

import pytest

from repro.bugtraq import (
    BUFFER_OVERFLOW_CHAIN,
    BugtraqDatabase,
    CORPUS,
    FIGURE1_COUNTS,
    FIGURE1_PERCENTAGES,
    FORMAT_STRING_TRIO,
    STUDIED_CLASSES,
    TABLE1_REPORTS,
    TOTAL_REPORTS,
    VulnerabilityReport,
    corpus_report,
    dominant_categories,
    figure1_breakdown,
    generate_reports,
    studied_family_share,
    table1_ambiguity,
)
from repro.core import ActivityKind, BugtraqCategory


class TestSchema:
    def test_identifier_with_id(self):
        assert corpus_report(3163).identifier == "#3163"

    def test_identifier_without_id(self):
        xterm = next(r for r in CORPUS if r.software == "xterm")
        assert "xterm" in xterm.identifier

    def test_anchored_category(self):
        report = corpus_report(3163)
        assert report.anchored_category(ActivityKind.GET_INPUT) is \
            BugtraqCategory.INPUT_VALIDATION

    def test_anchored_category_requires_listed_activity(self):
        report = corpus_report(5493)  # has no TRANSFER_CONTROL activity
        with pytest.raises(ValueError):
            report.anchored_category(ActivityKind.TRANSFER_CONTROL)


class TestCorpus:
    def test_paper_ids_present(self):
        for bugtraq_id in (3163, 5493, 3958, 6157, 5960, 4479, 1387, 2210,
                           2264, 1480, 5774, 6255, 2708):
            assert corpus_report(bugtraq_id)

    def test_table1_categories(self):
        assert corpus_report(3163).category is BugtraqCategory.INPUT_VALIDATION
        assert corpus_report(5493).category is BugtraqCategory.BOUNDARY_CONDITION
        assert corpus_report(3958).category is BugtraqCategory.ACCESS_VALIDATION

    def test_buffer_overflow_chain_spans_three_categories(self):
        categories = {corpus_report(i).category for i in BUFFER_OVERFLOW_CHAIN}
        assert len(categories) == 3

    def test_format_string_trio_spans_three_categories(self):
        categories = {corpus_report(i).category for i in FORMAT_STRING_TRIO}
        assert len(categories) == 3

    def test_every_report_has_activities(self):
        for report in CORPUS:
            assert report.activities

    def test_6255_credits_version_0_5_1(self):
        assert corpus_report(6255).version == "0.5.1"


class TestGenerator:
    def test_full_scale_count(self):
        assert len(generate_reports()) == TOTAL_REPORTS

    def test_category_counts_exact(self):
        reports = generate_reports()
        counts = {}
        for report in reports:
            counts[report.category] = counts.get(report.category, 0) + 1
        assert counts == FIGURE1_COUNTS

    def test_counts_sum_to_total(self):
        assert sum(FIGURE1_COUNTS.values()) == TOTAL_REPORTS

    def test_deterministic(self):
        first = generate_reports(total=200, seed=5)
        second = generate_reports(total=200, seed=5)
        assert [r.bugtraq_id for r in first] == [r.bugtraq_id for r in second]
        assert [r.title for r in first] == [r.title for r in second]

    def test_seed_changes_output(self):
        a = generate_reports(total=200, seed=1)
        b = generate_reports(total=200, seed=2)
        assert [r.software for r in a] != [r.software for r in b]

    def test_scaled_counts_sum_exactly(self):
        for total in (100, 500, 1234):
            assert len(generate_reports(total=total)) == total

    def test_unique_ids(self):
        reports = generate_reports(total=500)
        ids = [r.bugtraq_id for r in reports]
        assert len(set(ids)) == len(ids)

    def test_studied_classes_present(self):
        classes = {r.vulnerability_class for r in generate_reports(total=2000)}
        for cls in STUDIED_CLASSES:
            assert cls in classes


class TestDatabase:
    @pytest.fixture(scope="class")
    def db(self):
        return BugtraqDatabase.synthetic(total=1000, seed=3)

    def test_len_and_iter(self, db):
        assert len(db) == 1000
        assert len(list(db)) == 1000

    def test_get_by_id(self, db):
        report = next(iter(db))
        assert db.get(report.bugtraq_id) is report
        assert report.bugtraq_id in db

    def test_category_filter(self, db):
        subset = db.in_category(BugtraqCategory.RACE_CONDITION)
        assert all(r.category is BugtraqCategory.RACE_CONDITION for r in subset)

    def test_class_filter(self, db):
        subset = db.of_class("format string")
        assert len(subset) > 0
        assert all(r.vulnerability_class == "format string" for r in subset)

    def test_software_filter(self, db):
        subset = db.for_software("Sendmail")
        assert all(r.software == "Sendmail" for r in subset)

    def test_remote_filter(self, db):
        assert all(r.remote for r in db.remote_only())

    def test_add_and_duplicate_rejected(self):
        db = BugtraqDatabase()
        report = corpus_report(6255)
        db.add(report)
        with pytest.raises(ValueError):
            db.add(report)

    def test_curated_constructor(self):
        assert len(BugtraqDatabase.curated()) == len(CORPUS)

    def test_category_share(self, db):
        share = db.category_share(BugtraqCategory.INPUT_VALIDATION)
        assert 0.15 < share < 0.30


class TestStats:
    @pytest.fixture(scope="class")
    def db(self):
        return BugtraqDatabase.synthetic()

    def test_figure1_percentages_exact(self, db):
        rows = figure1_breakdown(db)
        assert {row.category: row.percent for row in rows} == \
            FIGURE1_PERCENTAGES

    def test_figure1_sorted_descending(self, db):
        rows = figure1_breakdown(db)
        counts = [row.count for row in rows]
        assert counts == sorted(counts, reverse=True)

    def test_dominant_five(self, db):
        top = dominant_categories(db)
        assert [row.category for row in top] == [
            BugtraqCategory.INPUT_VALIDATION,
            BugtraqCategory.BOUNDARY_CONDITION,
            BugtraqCategory.DESIGN,
            BugtraqCategory.EXCEPTIONAL_CONDITIONS,
            BugtraqCategory.ACCESS_VALIDATION,
        ]

    def test_dominant_five_cover_83_percent(self, db):
        # 23 + 21 + 18 + 11 + 10 = 83% of the database.
        top = dominant_categories(db)
        assert sum(row.percent for row in top) == 83

    def test_studied_family_is_22_percent(self, db):
        count, share = studied_family_share(db)
        assert round(100 * share) == 22
        assert count == 1304

    def test_table1_rows(self):
        rows = table1_ambiguity()
        assert [row.bugtraq_id for row in rows] == list(TABLE1_REPORTS)
        assert all(row.consistent for row in rows)

    def test_table1_three_distinct_categories(self):
        rows = table1_ambiguity()
        assert len({row.assigned_category for row in rows}) == 3

    def test_empty_database_breakdown(self):
        rows = figure1_breakdown(BugtraqDatabase())
        assert all(row.count == 0 for row in rows)

    def test_row_str(self, db):
        assert "%" in str(figure1_breakdown(db)[0])
