"""VulnerabilityModel tests: cascading, gates, traces, securing."""

import pytest

from repro.core import (
    EventKind,
    Operation,
    Predicate,
    PrimitiveFSM,
    PropagationGate,
    VulnerabilityModel,
    in_range,
    less_equal,
)


def _op1():
    return Operation(
        "op1", "the index",
        [PrimitiveFSM("pFSM1", "index", "x",
                      spec_accepts=in_range(0, 100),
                      impl_accepts=less_equal(100))],
    )


def _op2():
    return Operation(
        "op2", "the pointer",
        [PrimitiveFSM("pFSM2", "dispatch", "ptr",
                      spec_accepts=Predicate(
                          lambda state: state["unchanged"], "ptr unchanged"),
                      impl_accepts=None)],
    )


def _gate():
    return PropagationGate(
        "pointer corrupted",
        carry=lambda result: {"unchanged": result.final_object >= 0},
    )


@pytest.fixture
def model():
    return VulnerabilityModel(
        "test model", [_op1(), _op2()], [_gate()],
        bugtraq_ids=[9999], final_consequence="Mcode executed",
    )


class TestConstruction:
    def test_gate_count_validated(self):
        with pytest.raises(ValueError, match="gates"):
            VulnerabilityModel("m", [_op1(), _op2()], [])

    def test_needs_operations(self):
        with pytest.raises(ValueError):
            VulnerabilityModel("m", [], [])

    def test_duplicate_operation_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            VulnerabilityModel("m", [_op1(), _op1()], [_gate()])

    def test_lookup(self, model):
        assert model.operation("op1").name == "op1"
        with pytest.raises(KeyError):
            model.operation("nosuch")

    def test_all_pfsms(self, model):
        pairs = model.all_pfsms()
        assert [(op.name, p.name) for op, p in pairs] == [
            ("op1", "pFSM1"), ("op2", "pFSM2"),
        ]
        assert model.pfsm_count == 2


class TestTraversal:
    def test_exploit_traverses_both_operations(self, model):
        result = model.run(-5)
        assert result.compromised
        assert result.hidden_path_count == 2
        assert result.trace.succeeded

    def test_benign_completes_without_hidden_paths(self, model):
        result = model.run(50)
        assert result.compromised  # it completes...
        assert result.hidden_path_count == 0  # ...but legitimately

    def test_is_compromised_by_requires_hidden_path(self, model):
        assert model.is_compromised_by(-5)
        assert not model.is_compromised_by(50)  # benign completion

    def test_foiled_input_stops_early(self, model):
        result = model.run(500)  # impl rejects at pFSM1
        assert not result.compromised
        assert result.foiled_at == "pFSM1"
        assert len(result.operation_results) == 1

    def test_gate_carries_state(self, model):
        result = model.run(-5)
        op2_result = result.operation_results[1]
        assert op2_result.outcomes[0].obj == {"unchanged": False}


class TestTrace:
    def test_event_sequence_for_exploit(self, model):
        trace = model.run(-5).trace
        kinds = [e.kind for e in trace.events]
        assert kinds == [
            EventKind.OPERATION_START,
            EventKind.PFSM_STEP,
            EventKind.OPERATION_COMPLETE,
            EventKind.GATE_CROSSED,
            EventKind.OPERATION_START,
            EventKind.PFSM_STEP,
            EventKind.OPERATION_COMPLETE,
            EventKind.EXPLOIT_SUCCEEDED,
        ]

    def test_event_sequence_for_foiled(self, model):
        trace = model.run(500).trace
        assert trace.events[-1].kind is EventKind.EXPLOIT_FOILED
        assert trace.foiled_at == "pFSM1"

    def test_hidden_path_steps(self, model):
        trace = model.run(-5).trace
        assert [e.subject for e in trace.hidden_path_steps()] == [
            "pFSM1", "pFSM2",
        ]

    def test_operations_completed(self, model):
        assert model.run(-5).trace.operations_completed() == ["op1", "op2"]

    def test_to_text(self, model):
        text = model.run(-5).trace.to_text()
        assert "exploit succeeded" in text
        assert "[hidden]" in text

    def test_summary(self, model):
        assert model.run(-5).trace.summary() == (True, 2, None)
        succeeded, hidden, foiled = model.run(500).trace.summary()
        assert not succeeded and foiled == "pFSM1"


class TestSecuring:
    def test_with_pfsm_secured(self, model):
        hardened = model.with_pfsm_secured("op1", "pFSM1")
        assert not hardened.is_compromised_by(-5)

    def test_with_operation_secured(self, model):
        hardened = model.with_operation_secured("op2")
        assert not hardened.is_compromised_by(-5)

    def test_with_operation_secured_missing(self, model):
        with pytest.raises(KeyError):
            model.with_operation_secured("nosuch")

    def test_fully_secured(self, model):
        hardened = model.fully_secured()
        assert not hardened.is_compromised_by(-5)
        assert hardened.run(50).compromised  # benign still completes

    def test_securing_preserves_metadata(self, model):
        hardened = model.fully_secured()
        assert hardened.bugtraq_ids == (9999,)
        assert hardened.final_consequence == "Mcode executed"

    def test_original_unchanged(self, model):
        model.fully_secured()
        assert model.is_compromised_by(-5)


class TestDescribe:
    def test_describe_contains_structure(self, model):
        text = model.describe()
        assert "#9999" in text
        assert "op1" in text and "op2" in text
        assert "pointer corrupted" in text
        assert "Mcode executed" in text

    def test_default_gate_passes_object(self):
        gate = PropagationGate("pass-through")
        op = _op1()
        result = op.run(7)
        assert gate.carry(result) == 7
