"""Domain tests: constructors, combinators, determinism."""

from repro.core import Domain


class TestConstructors:
    def test_of(self):
        assert list(Domain.of(1, 2, 3)) == [1, 2, 3]

    def test_integers(self):
        assert list(Domain.integers(-2, 2)) == [-2, -1, 0, 1, 2]

    def test_integers_step(self):
        assert list(Domain.integers(0, 10, step=5)) == [0, 5, 10]

    def test_integer_probes_cover_boundaries(self):
        probes = set(Domain.integer_probes())
        assert {0, -1, 2**31 - 1, 2**31, -(2**31), 2**32 - 1, 2**32} <= probes

    def test_integer_strings_are_decimal(self):
        for text in Domain.integer_strings():
            int(text)  # must parse

    def test_byte_strings(self):
        domain = Domain.byte_strings([0, 3], fill=b"B")
        assert list(domain) == [b"", b"BBB"]

    def test_sampled_strings_deterministic(self):
        a = list(Domain.sampled_strings(10, 20, seed=7))
        b = list(Domain.sampled_strings(10, 20, seed=7))
        assert a == b

    def test_sampled_strings_seed_matters(self):
        a = list(Domain.sampled_strings(10, 20, seed=1))
        b = list(Domain.sampled_strings(10, 20, seed=2))
        assert a != b


class TestProtocol:
    def test_len(self):
        assert len(Domain.integers(0, 9)) == 10

    def test_contains(self):
        assert 5 in Domain.integers(0, 9)
        assert 50 not in Domain.integers(0, 9)

    def test_reiterable(self):
        domain = Domain.integers(0, 3)
        assert list(domain) == list(domain)

    def test_repr(self):
        assert "integers" in repr(Domain.integers(0, 3))


class TestCombinators:
    def test_map(self):
        assert list(Domain.integers(0, 2).map(str)) == ["0", "1", "2"]

    def test_filter(self):
        assert list(Domain.integers(0, 9).filter(lambda x: x % 2 == 0)) == \
            [0, 2, 4, 6, 8]

    def test_union(self):
        assert list(Domain.of(1).union(Domain.of(2))) == [1, 2]

    def test_records_cartesian(self):
        domain = Domain.records(a=Domain.of(1, 2), b=Domain.of("x"))
        assert list(domain) == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_records_size(self):
        domain = Domain.records(a=Domain.integers(0, 4), b=Domain.integers(0, 2))
        assert len(domain) == 15

    def test_sample_deterministic(self):
        big = Domain.integers(0, 999)
        assert list(big.sample(10, seed=3)) == list(big.sample(10, seed=3))

    def test_sample_larger_than_domain(self):
        domain = Domain.integers(0, 4)
        assert len(domain.sample(100)) == 5
