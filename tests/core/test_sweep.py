"""The batched, cached, parallel sweep engine (repro.core.sweep).

Four families of guarantees:

* **batch ≡ scalar** — ``Predicate.evaluate_batch`` (and the other
  closed-form domain queries) agree with per-object evaluation for
  every predicate constructor, over range-backed and list domains;
* **parallel ≡ serial** — ``sweep_models`` returns identical findings
  in identical order regardless of worker count or cache;
* **cache correctness** — memoized verdicts are never stale: rebinding
  a predicate invalidates its cached entries, unhashables pass through,
  and the LRU bound holds;
* **hot-path surgery** — probe memoization in ``probe_implementation``,
  the single-run ``minimal_foil_points`` fast path, bounded
  ``exploit_paths``, and lazy ``Domain`` backings keep their observable
  behaviour.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Domain,
    NO_CACHE,
    Predicate,
    PredicateCache,
    PrimitiveFSM,
    always,
    attr,
    build_state_space,
    cached_evaluate,
    contains,
    equals,
    greater_equal,
    hidden_witness_count,
    hidden_witness_scan,
    in_range,
    is_instance,
    length_le,
    less_equal,
    matches,
    minimal_foil_points,
    never,
    not_contains,
    predicate,
    probe_implementation,
    satisfies_all,
    satisfies_any,
    sweep_models,
)
from repro.models import (
    all_extended_exploit_inputs,
    all_extended_models,
    all_extended_pfsm_domains,
)

# ---------------------------------------------------------------------------
# batch ≡ scalar, for every constructor
# ---------------------------------------------------------------------------

bounds = st.integers(min_value=-50, max_value=50)
interval = st.tuples(bounds, bounds).map(lambda p: (min(p), max(p)))

#: Every closed-form (interval-carrying) constructor, parameterized.
closed_form = st.one_of(
    st.just(always),
    st.just(never),
    bounds.map(equals),
    interval.map(lambda iv: in_range(*iv)),
    bounds.map(less_equal),
    bounds.map(greater_equal),
)

#: Arbitrary stepped/descending integer ranges.
ranges = st.tuples(
    bounds, bounds, st.integers(min_value=-4, max_value=4).filter(bool)
).map(lambda t: range(t[0], t[1], t[2]))


def _scalar_batch(pred, objects):
    return [pred.evaluate(obj) for obj in objects]


class TestBatchEqualsScalar:
    @given(closed_form, ranges)
    @settings(max_examples=120)
    def test_closed_form_over_range_domain(self, pred, backing):
        domain = Domain(backing, description="r")
        assert pred.evaluate_batch(domain) == _scalar_batch(pred, domain)
        assert pred.evaluate_batch(backing) == _scalar_batch(pred, backing)

    @given(closed_form, st.lists(bounds, max_size=30))
    @settings(max_examples=80)
    def test_closed_form_over_list_domain(self, pred, items):
        assert pred.evaluate_batch(items) == _scalar_batch(pred, items)

    @given(closed_form, closed_form, ranges)
    @settings(max_examples=80)
    def test_combinators_compose_closed_forms(self, p, q, backing):
        for combined in (p & q, p | q, ~p, p.implies(q), p.renamed("x")):
            assert combined.evaluate_batch(backing) == \
                _scalar_batch(combined, backing)

    @given(closed_form, ranges)
    @settings(max_examples=80)
    def test_count_witnesses_holds_over_agree(self, pred, backing):
        domain = Domain(backing, description="r")
        verdicts = _scalar_batch(pred, domain)
        assert pred.count_over(domain) == sum(verdicts)
        assert pred.holds_over(domain) == all(verdicts)
        expected = [obj for obj, v in zip(domain, verdicts) if v]
        assert pred.witnesses(domain, limit=7) == expected[:7]

    def test_opaque_constructors_over_object_domains(self):
        strings = ["", "a", "ab", "../x", "%n%n", "abc", 7, None]
        records = [{"n": i} for i in range(-3, 4)]
        cases = [
            (length_le(2), strings),
            (contains("../"), strings),
            (not_contains("%n"), strings),
            (matches(r"%[ns]"), strings),
            (is_instance(str), strings),
            (equals("ab"), strings),
            (attr("n", in_range(0, 2)), records),
            (satisfies_all(is_instance(str), length_le(2)), strings),
            (satisfies_any(contains("a"), contains("%")), strings),
            (predicate("short")(lambda s: len(s) < 2), strings),
            (satisfies_all(), strings),   # vacuous -> always
            (satisfies_any(), strings),   # vacuous -> never
        ]
        for pred, objects in cases:
            assert pred.evaluate_batch(objects) == \
                _scalar_batch(pred, objects), pred.description


# ---------------------------------------------------------------------------
# hidden-path scans: closed form ≡ cached ≡ plain scalar
# ---------------------------------------------------------------------------

def _seed_scan(pfsm, domain, limit):
    found = []
    for candidate in domain:
        if pfsm.takes_hidden_path(candidate):
            found.append(candidate)
            if len(found) >= limit:
                break
    return found


class TestHiddenWitnessScan:
    @given(closed_form, st.one_of(st.none(), closed_form), ranges,
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=120)
    def test_all_strategies_match_seed_scan(self, spec, impl, backing, limit):
        pfsm = PrimitiveFSM("p", "a", "x", spec_accepts=spec,
                            impl_accepts=impl)
        domain = Domain(backing, description="r")
        expected = _seed_scan(pfsm, domain, limit)
        assert hidden_witness_scan(pfsm, domain, limit=limit) == expected
        assert hidden_witness_scan(pfsm, domain, limit=limit,
                                   cache=PredicateCache()) == expected
        assert hidden_witness_scan(pfsm, domain, limit=limit,
                                   cache=NO_CACHE) == expected

    @given(closed_form, st.one_of(st.none(), closed_form), ranges)
    @settings(max_examples=100)
    def test_count_matches_brute_force(self, spec, impl, backing):
        pfsm = PrimitiveFSM("p", "a", "x", spec_accepts=spec,
                            impl_accepts=impl)
        expected = sum(1 for obj in backing if pfsm.takes_hidden_path(obj))
        assert hidden_witness_count(pfsm, Domain(backing, description="r")) \
            == expected

    def test_identity_memo_judges_each_object_once(self):
        calls = {"n": 0}

        def spec_fn(record):
            calls["n"] += 1
            return record["n"] >= 0

        pfsm = PrimitiveFSM(
            "p", "a", "x",
            spec_accepts=Predicate(spec_fn, "n >= 0"),
            impl_accepts=None,
        )
        bad, good = {"n": -1}, {"n": 1}
        domain = Domain([bad, good] * 40, description="tiled")
        found = hidden_witness_scan(pfsm, domain, limit=10**9,
                                    cache=PredicateCache())
        # Each repeated occurrence of the witness is reported...
        assert found == [bad] * 40
        # ...but each distinct object was judged exactly once.
        assert calls["n"] == 2

    def test_cached_scan_matches_on_record_domains(self):
        label = "NULL HTTPD Heap Overflow"
        model = all_extended_models()[label]
        domains = all_extended_pfsm_domains()[label]
        for _operation, pfsm in model.all_pfsms():
            domain = domains[pfsm.name]
            assert hidden_witness_scan(pfsm, domain, limit=100,
                                       cache=PredicateCache()) \
                == _seed_scan(pfsm, domain, 100)


# ---------------------------------------------------------------------------
# parallel ≡ serial sweeps
# ---------------------------------------------------------------------------

def _flat(sweeps):
    return [
        (f.model_name, f.operation_name, f.pfsm_name, f.activity, f.witnesses)
        for sweep in sweeps for f in sweep.findings
    ]


class TestSweepDeterminism:
    def _corpus(self):
        models = all_extended_models()
        domains = all_extended_pfsm_domains()
        keep = ["Sendmail Signed Integer Overflow", "NULL HTTPD Heap Overflow"]
        return ({k: models[k] for k in keep}, {k: domains[k] for k in keep})

    def test_parallel_equals_serial_on_sendmail_and_nullhttpd(self):
        models, domains = self._corpus()
        serial = sweep_models(models, domains, cache=NO_CACHE)
        for workers in (2, 4):
            for cache in (None, NO_CACHE, PredicateCache()):
                parallel = sweep_models(models, domains, workers=workers,
                                        cache=cache)
                assert _flat(parallel) == _flat(serial)
                assert [s.model_name for s in parallel] == \
                    [s.model_name for s in serial]

    def test_sweep_covers_whole_corpus_in_model_order(self):
        models = all_extended_models()
        domains = all_extended_pfsm_domains()
        sweeps = sweep_models(models, domains, workers=4)
        assert [s.model_name for s in sweeps] == \
            [m.name for m in models.values()]
        assert any(s.vulnerable for s in sweeps)

    def test_finding_str_names_the_location(self):
        models, domains = self._corpus()
        finding = _flat(sweep_models(models, domains))[0]
        sweeps = sweep_models(models, domains)
        text = str(sweeps[0].findings[0])
        assert finding[2] in text and finding[0] in text


# ---------------------------------------------------------------------------
# cache correctness
# ---------------------------------------------------------------------------

class TestPredicateCache:
    def test_rebound_predicate_is_not_served_stale_verdicts(self):
        cache = PredicateCache()
        pred = Predicate(lambda x: x < 0, "negative")
        assert cache.evaluate(pred, 5) is False
        assert cache.evaluate(pred, 5) is False  # memoized
        pred.rebind(lambda x: x > 0, "positive")
        assert cache.evaluate(pred, 5) is True
        assert cached_evaluate(pred, 5, cache=cache) is True

    def test_hits_and_misses_are_counted(self):
        cache = PredicateCache()
        pred = in_range(0, 10)
        cache.evaluate(pred, 3)
        cache.evaluate(pred, 3)
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_unhashable_objects_pass_through_uncached(self):
        cache = PredicateCache()
        pred = attr("n", greater_equal(0))
        assert cache.evaluate(pred, {"n": 1}) is True
        assert len(cache) == 0

    def test_lru_bound_evicts_oldest(self):
        cache = PredicateCache(maxsize=2)
        pred = in_range(0, 10)
        for value in (1, 2, 3):
            cache.evaluate(pred, value)
        assert len(cache) == 2
        cache.evaluate(pred, 1)  # evicted above -> recomputed
        assert cache.misses == 4

    def test_distinct_predicates_do_not_collide(self):
        cache = PredicateCache()
        assert cache.evaluate(less_equal(0), 0) is True
        assert cache.evaluate(greater_equal(1), 0) is False

    def test_no_cache_sentinel_disables_memoization(self):
        calls = {"n": 0}

        def fn(x):
            calls["n"] += 1
            return True

        pred = Predicate(fn, "counting")
        cached_evaluate(pred, 1, cache=NO_CACHE)
        cached_evaluate(pred, 1, cache=NO_CACHE)
        assert calls["n"] == 2


class TestEvaluateDigestMany:
    """The bulk digest protocol behind chunked compiled scans."""

    @staticmethod
    def _odd(obj, memo=None):
        return obj % 2 == 1

    def test_verdicts_match_chunk_order(self):
        cache = PredicateCache()
        chunk = [1, 2, 3, 4, 5]
        verdicts, computed = cache.evaluate_digest_many(
            "d", chunk, self._odd)
        assert verdicts == [True, False, True, False, True]
        assert computed == 5

    def test_equal_objects_within_chunk_judged_once(self):
        cache = PredicateCache()
        calls = {"n": 0}

        def odd(obj, memo=None):
            calls["n"] += 1
            return obj % 2 == 1

        verdicts, computed = cache.evaluate_digest_many(
            "d", [7, 7, 7, 8], odd)
        assert verdicts == [True, True, True, False]
        assert (computed, calls["n"]) == (2, 2)

    def test_warm_across_calls_and_with_scalar_twin(self):
        cache = PredicateCache()
        cache.evaluate_digest_many("d", [1, 2], self._odd)
        _verdicts, computed = cache.evaluate_digest_many(
            "d", [1, 2, 3], self._odd)
        assert computed == 1  # only 3 is new
        assert cache.evaluate_digest("d", 2, self._odd) is False
        assert cache.hits == 3

    def test_unhashable_objects_bypass_and_still_judge(self):
        cache = PredicateCache()
        verdicts, computed = cache.evaluate_digest_many(
            "d", [[1], [1]], lambda obj, memo=None: bool(obj))
        assert verdicts == [True, True]
        assert computed == 2  # no key, so no dedup and no table entry
        assert len(cache) == 0

    def test_lru_bound_holds_under_bulk_store(self):
        cache = PredicateCache(maxsize=3)
        cache.evaluate_digest_many("d", list(range(10)), self._odd)
        assert len(cache) == 3
        assert cache.evictions == 7


# ---------------------------------------------------------------------------
# hot-path surgery keeps observable behaviour
# ---------------------------------------------------------------------------

class TestProbeMemoization:
    def test_probe_predicate_replays_recorded_verdicts(self):
        calls = {"n": 0}

        def accepts(n):
            calls["n"] += 1
            return n <= 100

        domain = Domain.of(-5, 50, 200)
        result = probe_implementation(accepts, domain)
        assert calls["n"] == 3
        assert result.predicate(50) is True
        assert result.predicate(200) is False
        assert calls["n"] == 3  # recorded verdicts, no re-probe
        assert result.predicate(999) is False  # unseen -> live probe
        assert calls["n"] == 4

    def test_unhashable_probes_memoize_by_identity(self):
        calls = {"n": 0}

        def accepts(record):
            calls["n"] += 1
            return record["n"] >= 0

        good, bad = {"n": 7}, {"n": -7}
        result = probe_implementation(accepts, Domain([good, bad]))
        assert calls["n"] == 2
        assert result.predicate(good) is True
        assert result.predicate(bad) is False
        assert calls["n"] == 2
        assert result.checks_anything


class TestMinimalFoilPointsFastPath:
    def test_fast_path_matches_exhaustive_on_every_bundled_model(self):
        models = all_extended_models()
        exploits = all_extended_exploit_inputs()
        for label, model in models.items():
            fast = minimal_foil_points(model, exploits[label])
            slow = minimal_foil_points(model, exploits[label],
                                       exhaustive=True)
            assert fast == slow, label
            assert fast, f"{label}: exploit should be foilable"


class TestBoundedStateSpaceQueries:
    def _space(self):
        label = "NULL HTTPD Heap Overflow"
        return build_state_space(all_extended_models()[label],
                                 all_extended_pfsm_domains()[label])

    def test_cutoff_bounds_path_length(self):
        space = self._space()
        unbounded = space.exploit_paths(limit=64)
        assert unbounded
        cutoff = max(len(p) for p in unbounded) - 1
        bounded = space.exploit_paths(limit=64, cutoff=cutoff)
        assert bounded == unbounded
        short = space.exploit_paths(limit=64, cutoff=2)
        assert all(len(path) <= 3 for path in short)

    def test_max_paths_caps_enumeration(self):
        space = self._space()
        capped = space.exploit_paths(limit=64, max_paths=1)
        assert len(capped) <= 1

    def test_cut_set_still_disconnects_the_exploit(self):
        space = self._space()
        cut = space.cut_set(cutoff=None, max_paths=None)
        assert cut
        survivor = space
        for edge in cut:
            operation, pfsm = space.edge_owner(edge)
            survivor = survivor.without_hidden_edge(operation, pfsm)
        assert not survivor.compromise_reachable()


class TestLazyDomains:
    def test_integer_domain_stays_range_backed(self):
        domain = Domain.integers(-10**6, 10**6)
        assert isinstance(domain.backing, range)
        assert len(domain) == 2 * 10**6 + 1
        assert 123456 in domain
        assert 10**6 + 1 not in domain
        assert "nope" not in domain

    def test_record_domain_has_len_without_materializing(self):
        domain = Domain.records(a=Domain.of(1, 2, 3), b=Domain.of(4, 5))
        assert len(domain) == 6
        assert {"a": 1, "b": 5} in domain
        assert {"a": 9, "b": 4} not in domain
        # Re-iterable: two passes see the same records.
        assert list(domain) == list(domain)

    def test_membership_on_list_domain(self):
        domain = Domain.of("x", "y")
        assert "x" in domain
        assert "z" not in domain


class TestScanWindow:
    """The bulk-evaluation window is a tunable, not a constant."""

    def test_cache_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            PredicateCache(scan_window=0)
        with pytest.raises(ValueError):
            PredicateCache(scan_window=-8)

    def test_default_window_is_512(self):
        assert PredicateCache().scan_window == 512

    def test_window_size_does_not_change_witnesses(self):
        from repro.core import columnar

        domain = Domain([f"{'%n' * (i % 9)}{i}" for i in range(700)])
        pfsm = PrimitiveFSM(
            "p", "scan", "x",
            spec_accepts=satisfies_all(not_contains("%n"), length_le(6)),
            impl_accepts=length_le(40))
        with columnar.disabled():
            reference = hidden_witness_scan(pfsm, domain, limit=50)
            for window in (1, 3, 64, 512, 10_000):
                cache = PredicateCache(scan_window=window)
                assert hidden_witness_scan(
                    pfsm, domain, limit=50, cache=cache) == reference
                # Explicit argument overrides the cache's own window.
                assert hidden_witness_scan(
                    pfsm, domain, limit=50, cache=cache,
                    scan_window=7) == reference
