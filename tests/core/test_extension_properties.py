"""Property-based tests over the extension layers: metrics bounds and
monotonicity, state-space structure on random chain models, and
serialization stability."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Domain,
    Operation,
    PrimitiveFSM,
    VulnerabilityModel,
    WeightedDomain,
    build_state_space,
    compromise_probability,
    in_range,
    model_fingerprint,
    model_to_dict,
)

intervals = st.tuples(
    st.integers(min_value=-10, max_value=10),
    st.integers(min_value=-10, max_value=10),
).map(lambda pair: (min(pair), max(pair)))

chains = st.lists(st.tuples(intervals, intervals), min_size=1, max_size=4)


def _chain_model(shapes):
    pfsms = [
        PrimitiveFSM(f"p{i}", f"activity {i}", "x",
                     spec_accepts=in_range(*spec),
                     impl_accepts=in_range(*impl))
        for i, (spec, impl) in enumerate(shapes)
    ]
    operation = Operation("op", "the object", pfsms)
    return VulnerabilityModel("random chain", [operation])


class TestMetricsProperties:
    @given(chains)
    @settings(max_examples=50)
    def test_probability_bounded(self, shapes):
        model = _chain_model(shapes)
        inputs = WeightedDomain.uniform(Domain.integers(-12, 12))
        probability = compromise_probability(model, inputs)
        assert 0.0 <= probability <= 1.0

    @given(chains)
    @settings(max_examples=50)
    def test_securing_never_increases_probability(self, shapes):
        model = _chain_model(shapes)
        inputs = WeightedDomain.uniform(Domain.integers(-12, 12))
        before = compromise_probability(model, inputs)
        for _operation, pfsm in model.all_pfsms():
            hardened = model.with_pfsm_secured("op", pfsm.name)
            after = compromise_probability(hardened, inputs)
            assert after <= before + 1e-12

    @given(chains)
    @settings(max_examples=50)
    def test_fully_secured_probability_zero(self, shapes):
        model = _chain_model(shapes).fully_secured()
        inputs = WeightedDomain.uniform(Domain.integers(-12, 12))
        assert compromise_probability(model, inputs) == 0.0

    @given(chains, st.integers(min_value=-12, max_value=12))
    @settings(max_examples=50)
    def test_probability_is_measure_of_compromising_inputs(self, shapes, x):
        model = _chain_model(shapes)
        singleton = WeightedDomain([(x, 1.0)])
        probability = compromise_probability(model, singleton)
        assert probability == (1.0 if model.is_compromised_by(x) else 0.0)


class TestStateSpaceProperties:
    @given(chains)
    @settings(max_examples=40)
    def test_node_count_formula(self, shapes):
        model = _chain_model(shapes)
        space = build_state_space(model,
                                  {f"p{i}": Domain.integers(-12, 12)
                                   for i in range(len(shapes))})
        # 3 nodes per pFSM + ENTRY + COMPROMISED + FOILED.
        assert space.node_count == 3 * len(shapes) + 3

    @given(chains)
    @settings(max_examples=40)
    def test_exploit_paths_formula(self, shapes):
        model = _chain_model(shapes)
        domains = {f"p{i}": Domain.integers(-12, 12)
                   for i in range(len(shapes))}
        space = build_state_space(model, domains)
        hidden = len(space.hidden_edges())
        paths = space.exploit_paths(limit=256)
        assert len(paths) == 2**hidden - 1 if hidden else len(paths) == 0

    @given(chains)
    @settings(max_examples=40)
    def test_reachability_agrees_with_hidden_edges(self, shapes):
        model = _chain_model(shapes)
        domains = {f"p{i}": Domain.integers(-12, 12)
                   for i in range(len(shapes))}
        space = build_state_space(model, domains)
        assert space.compromise_reachable() == bool(space.hidden_edges())

    @given(chains)
    @settings(max_examples=40)
    def test_benign_path_always_exists_for_chains(self, shapes):
        model = _chain_model(shapes)
        space = build_state_space(model)
        assert space.benign_path_exists()


class TestSerializationProperties:
    @given(chains)
    @settings(max_examples=40)
    def test_fingerprint_deterministic(self, shapes):
        assert model_fingerprint(_chain_model(shapes)) == \
            model_fingerprint(_chain_model(shapes))

    @given(chains)
    @settings(max_examples=40)
    def test_dict_reflects_structure(self, shapes):
        model = _chain_model(shapes)
        data = model_to_dict(model)
        assert len(data["operations"][0]["pfsms"]) == len(shapes)

    @given(chains)
    @settings(max_examples=40)
    def test_securing_changes_fingerprint_iff_divergent(self, shapes):
        model = _chain_model(shapes)
        secured = model.fully_secured()
        # If every pFSM already had impl == spec semantically AND
        # textually, fingerprints match; a textual difference in any
        # impl description changes it.
        same_text = all(
            pfsm.impl_accepts is not None
            and pfsm.impl_accepts.description
            == pfsm.spec_accepts.description
            for _op, pfsm in model.all_pfsms()
        )
        if same_text:
            assert model_fingerprint(model) == model_fingerprint(secured)
        else:
            assert model_fingerprint(model) != model_fingerprint(secured)
