"""PredicateSpec properties: every constructor and combinator must
survive ``to_spec -> from_spec`` and ``pickle`` with its decision
function intact, over randomized int/str domains (satellite of the
distributed-sweep work — the spec layer is what makes sweep tasks
picklable across process boundaries)."""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Predicate,
    PredicateCache,
    UnknownPredicateError,
    always,
    attr,
    contains,
    equals,
    from_spec,
    greater_equal,
    in_range,
    is_instance,
    length_le,
    less_equal,
    matches,
    named_predicate,
    never,
    not_contains,
    satisfies_all,
    satisfies_any,
    spec_digest,
    to_spec,
    truthy,
)

#: A named predicate at module scope: workers re-register it when they
#: import this module to resolve the ``["named", ...]`` spec.
is_even = named_predicate("is_even", lambda n: n % 2 == 0,
                          "the value is even")


class Box:
    def __init__(self, value):
        self.value = value


ints = st.integers(min_value=-50, max_value=50)
texts = st.text(min_size=0, max_size=8)


def _constructors():
    """(label, predicate, value strategy) for every spec-carrying shape."""
    return [
        ("always", always, ints),
        ("never", never, ints),
        ("truthy", truthy(), ints),
        ("equals", equals(7), ints),
        ("equals_str", equals("abc"), texts),
        ("in_range", in_range(-3, 9), ints),
        ("less_equal", less_equal(4), ints),
        ("greater_equal", greater_equal(-2), ints),
        ("length_le", length_le(3), texts),
        ("matches", matches(r"a+b"), texts),
        ("contains", contains("a"), texts),
        ("not_contains", not_contains("b"), texts),
        ("is_instance", is_instance(int), ints),
        ("named", is_even, ints),
        ("and", in_range(-3, 9) & is_even, ints),
        ("or", less_equal(-10) | greater_equal(10), ints),
        ("not", ~in_range(0, 5), ints),
        ("satisfies_all", satisfies_all(greater_equal(-20), less_equal(20),
                                        is_even), ints),
        ("satisfies_any", satisfies_any(equals(1), equals(2), is_even), ints),
        ("attr", attr("value", in_range(0, 10)), ints),
        ("renamed", in_range(0, 5).renamed("small"), ints),
    ]


def _sample(pred, label, value):
    return pred(Box(value)) if label == "attr" else pred(value)


class TestSpecRoundTrip:
    @pytest.mark.parametrize("label,pred,_strategy", _constructors(),
                             ids=[c[0] for c in _constructors()])
    def test_spec_round_trips(self, label, pred, _strategy):
        spec = to_spec(pred)
        rebuilt = from_spec(spec)
        assert to_spec(rebuilt) == spec
        assert rebuilt.spec_hash == pred.spec_hash

    @given(st.data())
    @settings(max_examples=60)
    def test_evaluate_agreement(self, data):
        for label, pred, strategy in _constructors():
            value = data.draw(strategy, label=label)
            rebuilt = from_spec(to_spec(pred))
            assert _sample(rebuilt, label, value) == \
                _sample(pred, label, value), label

    @given(st.data())
    @settings(max_examples=60)
    def test_pickle_agreement(self, data):
        for label, pred, strategy in _constructors():
            value = data.draw(strategy, label=label)
            clone = pickle.loads(pickle.dumps(pred))
            assert _sample(clone, label, value) == \
                _sample(pred, label, value), label

    def test_intervals_survive_round_trip(self):
        assert from_spec(["range", 0, 100]).intervals == ((0, 100),)
        assert from_spec(to_spec(in_range(-3, 9))).intervals == ((-3, 9),)

    def test_opaque_predicate_raises(self):
        opaque = Predicate(lambda x: x > 0, "positive")
        assert opaque.spec is None
        with pytest.raises(ValueError):
            to_spec(opaque)

    def test_unknown_named_predicate_raises(self):
        with pytest.raises(UnknownPredicateError):
            from_spec(["named", "tests.core.test_predspec", "no-such-name"])

    def test_rebind_drops_spec(self):
        pred = in_range(0, 5)
        assert pred.spec is not None
        assert pred.rebind(lambda x: True).spec is None

    def test_spec_digest_is_canonical(self):
        assert spec_digest(["range", 0, 5]) == spec_digest(["range", 0, 5])
        assert spec_digest(["range", 0, 5]) != spec_digest(["range", 0, 6])


def _remote_eval(payload):
    """Worker-side evaluation for the cross-process integration test."""
    pred, values = pickle.loads(payload)
    return [pred(v) for v in values]


class TestCrossProcess:
    def test_predicates_pickle_across_process_pool(self):
        values = list(range(-10, 11))
        preds = [in_range(-3, 9) & is_even, ~less_equal(0), is_even,
                 satisfies_any(equals(1), is_even)]
        payloads = [pickle.dumps((p, values)) for p in preds]
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_remote_eval, payloads))
        local = [[p(v) for v in values] for p in preds]
        assert remote == local


class TestPredicateCacheSpecHits:
    def test_structural_twins_share_cache_entries(self):
        cache = PredicateCache()
        first, twin = in_range(0, 5), in_range(0, 5)
        assert first is not twin and first.spec_hash == twin.spec_hash
        assert cache.evaluate(first, 3) is True
        assert cache.evaluate(twin, 3) is True
        stats = cache.stats()
        assert stats["spec_hits"] == 1
        assert stats["hits"] >= 1

    def test_opaque_predicates_never_spec_hit(self):
        cache = PredicateCache()
        opaque = Predicate(lambda x: x > 0, "positive")
        assert cache.evaluate(opaque, 1) is True
        assert cache.evaluate(opaque, 1) is True
        assert cache.stats()["spec_hits"] == 0
