"""The predicate compiler and cost-based planner (``repro.core.plan``).

The load-bearing property is *equivalence*: a compiled scan program
must agree with interpretive ``Predicate.evaluate`` for every predspec
constructor and combinator, over randomized mixed-type domains — the
same exception-shielding, the same coercion asymmetries (``in_range``
coerces via ``int()``, ``equals`` does not), the same short-circuiting
verdicts — including after pickling across a process boundary.  The
rest covers the optimizer units: constant folding, order-insensitive
digests, interval lowering, cross-task CSE promotion, the plan cache,
and cost-based strategy selection.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Domain,
    Predicate,
    PredicateCache,
    PrimitiveFSM,
    always,
    attr,
    contains,
    equals,
    greater_equal,
    in_range,
    is_instance,
    length_le,
    less_equal,
    matches,
    named_predicate,
    never,
    not_contains,
    satisfies_all,
    satisfies_any,
    to_spec,
    truthy,
)
from repro.core import plan
from repro.core.sweep import NO_CACHE, hidden_witness_scan

#: Module-scope named predicate: workers re-register it on import, so
#: ``["named", ...]`` nodes resolve inside pickled programs too.
plan_is_odd = named_predicate("plan_is_odd", lambda n: n % 2 == 1,
                              "the value is odd")


class Box:
    def __init__(self, value):
        self.value = value


ints = st.integers(min_value=-50, max_value=50)
texts = st.text(min_size=0, max_size=8)
#: Adversarial mixed-type values: every predicate sees every shape, so
#: shielding and coercion must line up between compiled and interp.
mixed = st.one_of(
    ints,
    texts,
    st.booleans(),
    st.floats(allow_nan=False, min_value=-50, max_value=50),
    st.none(),
    st.lists(ints, max_size=3),
)


@pytest.fixture(autouse=True)
def _fresh_planner():
    plan.reset()
    yield
    plan.reset()


def _constructors():
    """(label, predicate) for every spec-carrying shape."""
    return [
        ("always", always),
        ("never", never),
        ("truthy", truthy()),
        ("equals", equals(7)),
        ("equals_str", equals("abc")),
        ("in_range", in_range(-3, 9)),
        ("less_equal", less_equal(4)),
        ("greater_equal", greater_equal(-2)),
        ("length_le", length_le(3)),
        ("matches", matches(r"a+b")),
        ("contains", contains("a")),
        ("not_contains", not_contains("b")),
        ("is_instance", is_instance(int)),
        ("named", plan_is_odd),
        ("and", in_range(-3, 9) & plan_is_odd),
        ("or", less_equal(-10) | greater_equal(10)),
        ("not", ~in_range(0, 5)),
        ("satisfies_all", satisfies_all(greater_equal(-20), less_equal(20),
                                        plan_is_odd)),
        ("satisfies_any", satisfies_any(equals(1), equals(2), plan_is_odd)),
        ("attr", attr("value", in_range(0, 10))),
        ("renamed", in_range(0, 5).renamed("small")),
        ("deep", satisfies_all(is_instance(str), length_le(6),
                               not_contains("%n")) | equals("ok")),
    ]


def _wrap(label, value):
    return Box(value) if label == "attr" else value


class TestCompiledEquivalence:
    @given(st.data())
    @settings(max_examples=80)
    def test_every_constructor_agrees_on_mixed_domains(self, data):
        for label, pred in _constructors():
            program = plan.compile_spec(to_spec(pred))
            value = _wrap(label, data.draw(mixed, label=label))
            assert program.evaluate(value) == pred.evaluate(value), label

    @given(st.data())
    @settings(max_examples=40)
    def test_agreement_survives_pickle(self, data):
        for label, pred in _constructors():
            program = pickle.loads(pickle.dumps(
                plan.compile_spec(to_spec(pred))))
            value = _wrap(label, data.draw(mixed, label=label))
            assert program.evaluate(value) == pred.evaluate(value), label

    def test_coercion_asymmetry_is_preserved(self):
        # in_range coerces via int(); equals does not; bool is an int.
        rng = plan.compile_spec(to_spec(in_range(0, 9)))
        eq = plan.compile_spec(to_spec(equals(5)))
        for value in ("5", 5, 5.4, True, None, "x"):
            assert rng.evaluate(value) == in_range(0, 9).evaluate(value), \
                repr(value)
            assert eq.evaluate(value) == equals(5).evaluate(value), \
                repr(value)

    def test_exception_shielding_matches_interp(self):
        # length_le(3) over an int raises inside; both sides say False.
        pred = length_le(3) & contains("a")
        program = plan.compile_spec(to_spec(pred))
        assert program.evaluate(17) is False
        assert pred.evaluate(17) is False

    def test_hidden_scan_matches_naive_loop(self):
        domain = Domain(["ok", "%n" * 5, "aaab", 7, -3, "aab", None, 12,
                         "aaaaaaaab", True, 4.5] * 3)
        pfsm = PrimitiveFSM(
            "p", "scan", "x",
            spec_accepts=satisfies_all(is_instance(str), length_le(6),
                                       not_contains("%n")),
            impl_accepts=length_le(40))
        naive = []
        for obj in domain:
            if pfsm.takes_hidden_path(obj):
                naive.append(obj)
                if len(naive) >= 10:
                    break
        got = hidden_witness_scan(pfsm, domain, limit=10, cache=NO_CACHE)
        assert got == naive


def _remote_program_eval(payload):
    blob, values = payload
    program = pickle.loads(blob)
    return [program.evaluate(value) for value in values]


class TestCrossProcessPrograms:
    def test_pickled_programs_agree_across_a_pool(self):
        values = [-7, 0, 3, "abc", "aab", True, None, 49]
        cases = [(label, pred) for label, pred in _constructors()
                 if label != "attr"]  # Box is test-local: not picklable
        payloads = [(pickle.dumps(plan.compile_spec(to_spec(pred))), values)
                    for _label, pred in cases]
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_remote_program_eval, payloads))
        for (label, pred), verdicts in zip(cases, remote):
            assert verdicts == [pred.evaluate(v) for v in values], label

    def test_rebuilt_program_reimports_cse_marks(self):
        shared = satisfies_all(is_instance(str), length_le(6),
                               not_contains("%n"))
        a = plan.compile_spec(to_spec(shared & not_contains("%s")))
        b = plan.compile_spec(to_spec(shared & contains("/")))
        # Promotion happened at b's registration; refetch a with marks.
        a = plan.compile_spec(to_spec(shared & not_contains("%s")))
        assert b.cse_nodes >= 1 and a.cse_nodes >= 1
        clone = pickle.loads(pickle.dumps(b))
        assert clone.cse_nodes == b.cse_nodes
        for value in ("hello", "%n" * 4, "a/b", 9):
            assert clone.evaluate(value) == b.evaluate(value)


class TestFolding:
    def _digest(self, spec):
        return plan._build(spec).digest

    def test_and_unit_and_absorbing_elements(self):
        rng = to_spec(in_range(0, 5))
        assert self._digest(["and", ["true"], rng]) == self._digest(rng)
        assert self._digest(["and", ["false"], rng]) == \
            self._digest(["false"])
        assert self._digest(["or", ["false"], rng]) == self._digest(rng)
        assert self._digest(["or", ["true"], rng]) == self._digest(["true"])

    def test_double_negation_eliminated(self):
        rng = to_spec(in_range(0, 5))
        assert self._digest(["not", ["not", rng]]) == self._digest(rng)

    def test_duplicate_conjuncts_deduped(self):
        rng = to_spec(in_range(0, 5))
        assert self._digest(["and", rng, rng]) == self._digest(rng)

    def test_junction_digests_are_order_insensitive(self):
        a, b = to_spec(in_range(0, 5)), to_spec(contains("x"))
        assert self._digest(["and", a, b]) == self._digest(["and", b, a])
        assert self._digest(["or", a, b]) == self._digest(["or", b, a])

    def test_nested_junctions_flatten(self):
        a, b, c = (to_spec(in_range(0, 5)), to_spec(contains("x")),
                   to_spec(length_le(3)))
        assert self._digest(["and", a, ["and", b, c]]) == \
            self._digest(["and", a, b, c])


class TestIntervalLowering:
    def test_closed_comparison_subtree_is_lowered(self):
        program = plan.compile_spec(
            ["and", to_spec(in_range(0, 100)), to_spec(less_equal(50))])
        assert program.lowered >= 1

    def test_lowered_subtree_guards_exact_int_type(self):
        pred = in_range(0, 100) & less_equal(50)
        program = plan.compile_spec(to_spec(pred))
        # "30" coerces through int() on the general path; True is an
        # int but not `type is int`; both must match interp exactly.
        for value in (30, "30", True, 30.5, 200, None):
            assert program.evaluate(value) == pred.evaluate(value), \
                repr(value)

    def test_eq_subtree_not_lowered_with_coercing_siblings(self):
        # equals does not coerce; the fused interval path must not
        # pretend it does.
        pred = equals(5) & in_range(0, 9)
        program = plan.compile_spec(to_spec(pred))
        assert program.evaluate("5") == pred.evaluate("5") == False  # noqa: E712


class TestCsePromotion:
    def test_subtree_shared_across_roots_is_promoted(self):
        shared = satisfies_all(is_instance(str), length_le(6),
                               not_contains("%n"))
        plan.compile_spec(to_spec(shared & not_contains("%s")))
        plan.compile_spec(to_spec(shared & contains("/")))
        stats = plan.stats()
        assert stats["cse_promotions"] >= 1
        assert stats["shared_nodes"] >= 1

    def test_node_memo_shares_verdicts_between_programs(self):
        shared = satisfies_all(is_instance(str), length_le(6),
                               not_contains("%n"))
        plan.compile_spec(to_spec(shared & not_contains("%s")))
        b = plan.compile_spec(to_spec(shared & contains("/")))
        a = plan.compile_spec(to_spec(shared & not_contains("%s")))
        memo = plan.NodeMemo()
        for obj in ("hello", "%n%n", "a/b"):
            a.evaluate(obj, memo)
            b.evaluate(obj, memo)
        hits, misses = memo.drain()
        assert hits >= 1  # b reused a's sub-predicate verdicts
        assert memo.drain() == (0, 0)  # drain resets

    def test_cheap_leaves_are_not_promoted(self):
        cheap = truthy()
        plan.compile_spec(to_spec(cheap & in_range(0, 5)))
        plan.compile_spec(to_spec(cheap & contains("x")))
        program = plan.compile_spec(to_spec(cheap & in_range(0, 5)))
        assert program.cse_nodes == 0  # truthy costs less than the memo


class TestNodeMemo:
    def test_overflow_clears_instead_of_growing(self):
        memo = plan.NodeMemo(maxsize=4)
        shared = satisfies_all(is_instance(int), greater_equal(-10**6))
        plan.compile_spec(to_spec(shared & less_equal(10)))
        program = plan.compile_spec(to_spec(shared & plan_is_odd))
        program2 = plan.compile_spec(to_spec(shared & less_equal(10)))
        for value in range(40):
            program.evaluate(value, memo)
            program2.evaluate(value, memo)
        assert len(memo.data) <= 4

    def test_unhashable_objects_bypass_the_memo(self):
        shared = satisfies_all(length_le(5), truthy())
        plan.compile_spec(to_spec(shared & contains("x")))
        program = plan.compile_spec(to_spec(shared & length_le(9)))
        pred = shared & length_le(9)
        memo = plan.NodeMemo()
        value = [1, 2, 3]  # unhashable
        assert program.evaluate(value, memo) == pred.evaluate(value)


class TestPlanCache:
    def test_lru_eviction_and_stats(self):
        cache = plan.PlanCache(maxsize=2)
        for i in range(3):
            cache.put(f"d{i}", plan.compile_spec(to_spec(equals(i))))
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2 and stats["maxsize"] == 2
        assert cache.get("d0") is None  # evicted oldest
        assert cache.get("d2") is not None

    def test_compile_spec_reuses_the_module_cache(self):
        spec = to_spec(in_range(0, 5) & contains("x"))
        first = plan.compile_spec(spec)
        second = plan.compile_spec(spec)
        assert first is second
        assert plan.stats()["hits"] >= 1

    def test_malformed_spec_raises(self):
        with pytest.raises(Exception):
            plan.compile_spec(["no_such_op", 1, 2])


class TestStrategySelection:
    def _pfsm(self, spec=None, impl=None):
        return PrimitiveFSM("p", "scan", "x",
                            spec_accepts=spec or in_range(0, 5),
                            impl_accepts=impl if impl is not None
                            else less_equal(10))

    def test_interval_beats_compiled_on_range_domains(self):
        chosen = plan.plan_scan(self._pfsm(), Domain.integers(-5, 10**6))
        assert chosen.strategy == "interval"
        assert chosen.est_cost <= 10

    def test_compiled_on_list_domains(self):
        chosen = plan.plan_scan(self._pfsm(), Domain.of(*range(50)))
        assert chosen.strategy == "compiled"
        assert chosen.program is not None

    def test_opaque_degrades_to_cached_then_plain(self):
        opaque = self._pfsm(spec=Predicate(lambda x: x > 0, "opaque"))
        domain = Domain.of(*range(50))
        assert plan.plan_scan(opaque, domain).strategy == "cached"
        assert plan.plan_scan(opaque, domain,
                              cache_available=False).strategy == "plain"

    def test_disabled_planner_compiles_nothing(self):
        pfsm = self._pfsm()
        with plan.disabled():
            assert not plan.is_enabled()
            assert plan.program_for(pfsm) is None
            assert plan.task_cost(("m", "op", pfsm,
                                   Domain.of(1, 2, 3), 5)) is None
        assert plan.is_enabled()

    def test_describe_plan_shape(self):
        info = plan.describe_plan(self._pfsm(), Domain.of(*range(20)))
        assert info["strategy"] == "compiled"
        for key in ("est_cost", "objects", "reason", "digest",
                    "program_cost", "leaves", "cse_nodes"):
            assert key in info

    def test_rebind_invalidates_the_program_memo(self):
        spec = in_range(0, 5)
        pfsm = self._pfsm(spec=spec)
        assert plan.program_for(pfsm) is not None
        spec.rebind(lambda x: True)  # opaque now
        assert plan.program_for(pfsm) is None
