"""Operation tests: pFSM chaining, transforms, foiling, securing."""

import pytest

from repro.core import (
    Operation,
    Predicate,
    PrimitiveFSM,
    in_range,
    less_equal,
)
from repro.memory import atoi


def _convert_pfsm():
    return PrimitiveFSM(
        "pFSM1", "get and convert", "str_x",
        spec_accepts=Predicate(
            lambda s: abs(int(s)) < 2**31, "fits in int32"
        ),
        impl_accepts=None,
        transform=lambda s: atoi(s).value,
    )


def _index_pfsm():
    return PrimitiveFSM(
        "pFSM2", "index the array", "x",
        spec_accepts=in_range(0, 100),
        impl_accepts=less_equal(100),
    )


@pytest.fixture
def operation():
    return Operation("write tTvect[x]", "the input integer",
                     [_convert_pfsm(), _index_pfsm()])


class TestExecution:
    def test_benign_completes_cleanly(self, operation):
        result = operation.run("42")
        assert result.completed
        assert not result.used_hidden_path
        assert result.final_object == 42

    def test_transform_chains_between_pfsms(self, operation):
        # The string is converted before pFSM2 sees it.
        result = operation.run("100")
        assert result.completed
        assert result.final_object == 100

    def test_hidden_path_recorded(self, operation):
        result = operation.run("-5")
        assert result.completed
        assert result.used_hidden_path
        assert [o.pfsm_name for o in result.hidden_steps] == ["pFSM2"]

    def test_double_hidden_path(self, operation):
        # A wrapping string rides pFSM1's hidden path, lands negative,
        # then rides pFSM2's.
        result = operation.run(str(2**32 - 7))
        assert result.exploited
        assert len(result.hidden_steps) == 2

    def test_foiled_stops_chain(self, operation):
        result = operation.run("500")  # impl rejects at pFSM2
        assert not result.completed
        assert result.foiled_by == "pFSM2"
        assert len(result.outcomes) == 2

    def test_exploited_requires_hidden_path(self, operation):
        assert not operation.run("42").exploited
        assert operation.run("-5").exploited

    def test_outcomes_in_order(self, operation):
        result = operation.run("42")
        assert [o.pfsm_name for o in result.outcomes] == ["pFSM1", "pFSM2"]


class TestAnalysis:
    def test_is_secure_over_benign_domain(self, operation):
        assert operation.is_secure([str(v) for v in range(0, 101)])

    def test_insecure_over_adversarial_domain(self, operation):
        assert not operation.is_secure(["-1"])

    def test_exploit_witnesses(self, operation):
        witnesses = operation.exploit_witnesses(["5", "-3", "700", "-9"])
        assert witnesses == ["-3", "-9"]

    def test_pfsm_lookup(self, operation):
        assert operation.pfsm("pFSM1").name == "pFSM1"

    def test_pfsm_lookup_missing(self, operation):
        with pytest.raises(KeyError):
            operation.pfsm("pFSM9")


class TestSecuring:
    def test_with_pfsm_secured(self, operation):
        fixed = operation.with_pfsm_secured("pFSM2")
        assert not fixed.run("-5").completed

    def test_securing_one_leaves_other(self, operation):
        fixed = operation.with_pfsm_secured("pFSM2")
        # pFSM1 still has no check: a wrapping string is rejected only
        # at pFSM2 now (after wrapping negative).
        result = fixed.run(str(2**32 - 7))
        assert not result.completed
        assert result.foiled_by == "pFSM2"

    def test_fully_secured(self, operation):
        fixed = operation.fully_secured()
        assert not fixed.run("-5").completed
        assert not fixed.run(str(2**32 - 7)).completed
        assert fixed.run("50").completed

    def test_secure_missing_pfsm_raises(self, operation):
        with pytest.raises(KeyError):
            operation.with_pfsm_secured("pFSM9")

    def test_securing_already_secure_pfsm_is_noop_not_error(self):
        pred = in_range(0, 10)
        pfsm = PrimitiveFSM("p", "a", "o", spec_accepts=pred, impl_accepts=pred)
        op = Operation("op", "obj", [pfsm])
        fixed = op.with_pfsm_secured("p")
        assert fixed.run(5).completed


class TestValidation:
    def test_duplicate_pfsm_names_rejected(self):
        with pytest.raises(ValueError):
            Operation("op", "obj", [_index_pfsm(), _index_pfsm()])

    def test_describe(self, operation):
        text = operation.describe()
        assert "write tTvect[x]" in text
        assert "pFSM1" in text and "pFSM2" in text
