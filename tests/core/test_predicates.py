"""Predicate algebra tests."""

import pytest

from repro.core import (
    Predicate,
    always,
    attr,
    contains,
    equals,
    greater_equal,
    in_range,
    is_instance,
    length_le,
    less_equal,
    matches,
    never,
    not_contains,
    predicate,
    satisfies_all,
    satisfies_any,
)


class TestBasics:
    def test_evaluate(self):
        pred = Predicate(lambda x: x > 0, "positive")
        assert pred(5)
        assert not pred(-5)

    def test_description(self):
        assert Predicate(lambda x: True, "anything").description == "anything"

    def test_exception_counts_as_false(self):
        pred = Predicate(lambda x: x["missing"], "lookup")
        assert not pred({})

    def test_holds_raising_propagates(self):
        pred = Predicate(lambda x: x["missing"], "lookup")
        with pytest.raises(KeyError):
            pred.holds_raising({})

    def test_decorator_form(self):
        @predicate("0 <= x <= 100")
        def bounded(x):
            return 0 <= x <= 100

        assert bounded(50)
        assert bounded.description == "0 <= x <= 100"

    def test_always_never(self):
        assert always(object())
        assert not never(object())

    def test_renamed(self):
        pred = in_range(0, 10).renamed("tight bound")
        assert pred.description == "tight bound"
        assert pred(5)

    def test_repr(self):
        assert "positive" in repr(Predicate(lambda x: x > 0, "positive"))


class TestCombinators:
    def test_and(self):
        both = in_range(0, 100) & greater_equal(50)
        assert both(75)
        assert not both(25)
        assert not both(150)

    def test_or(self):
        either = less_equal(0) | greater_equal(100)
        assert either(-5)
        assert either(200)
        assert not either(50)

    def test_not(self):
        assert (~never)(1)
        assert not (~always)(1)

    def test_composed_description(self):
        both = in_range(0, 1) & in_range(0, 2)
        assert "and" in both.description

    def test_implies(self):
        # x > 10 implies x > 5.
        impl = Predicate(lambda x: x > 10, "x>10").implies(
            Predicate(lambda x: x > 5, "x>5")
        )
        assert impl(20) and impl(7) and impl(0)

    def test_satisfies_all(self):
        pred = satisfies_all(greater_equal(0), less_equal(10))
        assert pred(5) and not pred(11)

    def test_satisfies_all_empty_is_always(self):
        assert satisfies_all()(42)

    def test_satisfies_any_empty_is_never(self):
        assert not satisfies_any()(42)


class TestConstructors:
    def test_equals(self):
        assert equals(5)(5) and not equals(5)(6)

    def test_in_range_inclusive(self):
        pred = in_range(0, 100)
        assert pred(0) and pred(100)
        assert not pred(-1) and not pred(101)

    def test_sendmail_predicates(self):
        # The exact Observation 3 example: spec vs implementation.
        spec = in_range(0, 100)
        impl = less_equal(100)
        assert not spec(-563)
        assert impl(-563)  # the divergence that is the vulnerability

    def test_length_le(self):
        assert length_le(3)("abc") and not length_le(3)("abcd")
        assert length_le(3)(b"ab")

    def test_contains(self):
        assert contains("../")("a/../b")
        assert not_contains("../")("a/b")

    def test_contains_bytes(self):
        assert contains(b"%n")(b"AAAA%n")

    def test_matches_str(self):
        assert matches(r"%[dn]")("%n")
        assert not matches(r"%[dn]")("plain")

    def test_matches_bytes(self):
        assert matches(r"%[dn]")(b"give me %d")

    def test_is_instance(self):
        assert is_instance(int)(5)
        assert not is_instance(int)("5")
        assert is_instance(int, str)("5")

    def test_attr_on_mapping(self):
        pred = attr("x", in_range(0, 100))
        assert pred({"x": 50})
        assert not pred({"x": -1})

    def test_attr_on_object(self):
        class Obj:
            x = 7

        assert attr("x", equals(7))(Obj())

    def test_attr_missing_key_is_false(self):
        assert not attr("x", always)({})


class TestDomainQueries:
    def test_witnesses(self):
        pred = in_range(0, 2)
        assert pred.witnesses(range(-5, 5)) == [0, 1, 2]

    def test_witness_limit(self):
        assert len(always.witnesses(range(100), limit=3)) == 3

    def test_holds_over(self):
        assert in_range(0, 10).holds_over(range(0, 11))
        assert not in_range(0, 10).holds_over(range(0, 12))
