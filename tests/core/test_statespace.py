"""State-space (unrolled graph) tests."""

import pytest

from repro.core import build_state_space
from repro.core.statespace import COMPROMISED, ENTRY, FOILED
from repro.models import (
    all_paper_models,
    all_pfsm_domains,
    nullhttpd_model,
    sendmail_model,
)


@pytest.fixture
def sendmail_space():
    return build_state_space(sendmail_model.build_model(),
                             sendmail_model.pfsm_domains())


class TestConstruction:
    def test_node_count(self, sendmail_space):
        # 3 pFSMs x 3 states + ENTRY + COMPROMISED + FOILED.
        assert sendmail_space.node_count == 12

    def test_hidden_edges_match_divergent_pfsms(self, sendmail_space):
        owners = {sendmail_space.edge_owner(e)
                  for e in sendmail_space.hidden_edges()}
        assert {pfsm for _op, pfsm in owners} == {"pFSM1", "pFSM2", "pFSM3"}

    def test_markers_present(self, sendmail_space):
        nodes = set(sendmail_space.graph.nodes)
        assert {ENTRY, COMPROMISED, FOILED} <= nodes

    def test_secured_model_has_no_hidden_edges(self):
        space = build_state_space(
            sendmail_model.build_model().fully_secured(),
            sendmail_model.pfsm_domains(),
        )
        assert space.hidden_edges() == []

    def test_structural_fallback_without_domains(self):
        # Without domains, missing/divergent checks are conservatively
        # assumed divergent.
        space = build_state_space(sendmail_model.build_model())
        assert len(space.hidden_edges()) == 3


class TestReachability:
    def test_compromise_reachable_vulnerable(self, sendmail_space):
        assert sendmail_space.compromise_reachable()

    def test_compromise_unreachable_secured(self):
        space = build_state_space(
            sendmail_model.build_model().fully_secured(),
            sendmail_model.pfsm_domains(),
        )
        assert not space.compromise_reachable()

    def test_benign_path_always_exists(self, sendmail_space):
        assert sendmail_space.benign_path_exists()

    def test_exploit_paths_use_hidden_edges(self, sendmail_space):
        for path in sendmail_space.exploit_paths():
            assert path[0] == ENTRY and path[-1] == COMPROMISED
            assert sendmail_space._uses_hidden(path)

    def test_exploit_path_count_nullhttpd(self):
        space = build_state_space(
            nullhttpd_model.build_model(), nullhttpd_model.pfsm_domains()
        )
        # 4 divergent pFSMs: each can be passed via spec or hidden,
        # minus the all-spec path = 2^4 - 1 = 15 exploit paths.
        assert len(space.exploit_paths(limit=64)) == 15

    def test_all_paper_models_reachable(self):
        domains = all_pfsm_domains()
        for label, model in all_paper_models().items():
            space = build_state_space(model, domains[label])
            assert space.compromise_reachable(), label
            assert space.benign_path_exists(), label


class TestCuts:
    def test_cut_disconnects(self, sendmail_space):
        cut = sendmail_space.cut_set()
        working = sendmail_space.graph.copy()
        working.remove_edges_from(cut)
        from repro.core.statespace import StateSpace

        assert not StateSpace(sendmail_space.model,
                              working).compromise_reachable()

    def test_cut_is_hidden_edges_only(self, sendmail_space):
        hidden = set(sendmail_space.hidden_edges())
        assert set(sendmail_space.cut_set()) <= hidden

    def test_without_hidden_edge(self, sendmail_space):
        pruned = sendmail_space.without_hidden_edge(
            "Manipulate the GOT entry of setuid", "pFSM3"
        )
        assert len(pruned.hidden_edges()) == 2
        # The unrolled graph is an over-approximation: it ignores the
        # gate's data flow, so upstream hidden edges still reach the
        # terminal through pFSM3's (nondeterministic) SPEC_ACPT edge.
        # Exact foil reasoning lives in minimal_foil_points; the graph
        # answer is conservative.
        assert pruned.compromise_reachable()

    def test_removing_all_hidden_edges_disconnects(self, sendmail_space):
        working = sendmail_space.graph.copy()
        working.remove_edges_from(sendmail_space.hidden_edges())
        from repro.core.statespace import StateSpace

        pruned = StateSpace(sendmail_space.model, working)
        assert not pruned.compromise_reachable()
        assert pruned.benign_path_exists()

    def test_secured_cut_is_empty(self):
        space = build_state_space(
            sendmail_model.build_model().fully_secured(),
            sendmail_model.pfsm_domains(),
        )
        assert space.cut_set() == []


class TestExport:
    def test_dot_output(self, sendmail_space):
        dot = sendmail_space.to_dot()
        assert dot.startswith("digraph")
        assert "dashed" in dot
        assert COMPROMISED in dot
