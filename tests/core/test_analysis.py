"""Analysis tests: hidden-path reports, foil points, the Lemma."""

import pytest

from repro.core import (
    Domain,
    Operation,
    Predicate,
    PrimitiveFSM,
    PropagationGate,
    VulnerabilityModel,
    check_lemma_part1,
    check_lemma_part2,
    hidden_path_report,
    in_range,
    less_equal,
    minimal_foil_points,
    verify_lemma,
)


def _model():
    op1 = Operation(
        "op1", "index",
        [PrimitiveFSM("pFSM1", "get index", "x",
                      spec_accepts=in_range(0, 100),
                      impl_accepts=less_equal(100))],
    )
    op2 = Operation(
        "op2", "pointer",
        [PrimitiveFSM("pFSM2", "dispatch", "ptr",
                      spec_accepts=Predicate(
                          lambda s: s["unchanged"], "unchanged"),
                      impl_accepts=None)],
    )
    gate = PropagationGate(
        "corrupt", carry=lambda r: {"unchanged": r.final_object >= 0}
    )
    return VulnerabilityModel("m", [op1, op2], [gate])


def _domains():
    return {
        "pFSM1": Domain.integers(-5, 105),
        "pFSM2": Domain.of({"unchanged": True}, {"unchanged": False}),
    }


class TestHiddenPathReport:
    def test_finds_both_hidden_paths(self):
        findings = hidden_path_report(_model(), _domains())
        assert {f.pfsm_name for f in findings} == {"pFSM1", "pFSM2"}

    def test_witnesses_are_spec_rejected_impl_accepted(self):
        findings = hidden_path_report(_model(), _domains())
        pfsm1 = next(f for f in findings if f.pfsm_name == "pFSM1")
        assert all(w < 0 for w in pfsm1.witnesses)

    def test_witness_limit(self):
        findings = hidden_path_report(_model(), _domains(), limit=2)
        assert all(len(f.witnesses) <= 2 for f in findings)

    def test_skips_pfsms_without_domain(self):
        findings = hidden_path_report(_model(), {"pFSM1": Domain.integers(-5, 5)})
        assert {f.pfsm_name for f in findings} == {"pFSM1"}

    def test_secured_model_has_no_findings(self):
        assert hidden_path_report(_model().fully_secured(), _domains()) == []

    def test_finding_str(self):
        (finding,) = hidden_path_report(
            _model(), {"pFSM1": Domain.integers(-2, -1)}
        )
        assert "pFSM1" in str(finding)


class TestMinimalFoilPoints:
    def test_every_hidden_activity_is_a_foil_point(self):
        points = minimal_foil_points(_model(), -5)
        assert {p.pfsm_name for p in points} == {"pFSM1", "pFSM2"}

    def test_benign_input_has_no_foil_points(self):
        assert minimal_foil_points(_model(), 50) == []

    def test_foil_point_str(self):
        (point, *_rest) = minimal_foil_points(_model(), -5)
        assert "secure" in str(point)

    def test_non_participating_pfsm_not_a_foil_point(self):
        # Add a third pFSM whose hidden path the exploit does not use.
        model = _model()
        extra = PrimitiveFSM(
            "pFSM0", "unrelated", "x",
            spec_accepts=Predicate(lambda x: x != 42, "not 42"),
            impl_accepts=None,
        )
        op1 = model.operations[0]
        new_op1 = Operation(op1.name, op1.object_description,
                            [extra] + list(op1.pfsms))
        model2 = VulnerabilityModel("m2", [new_op1, model.operations[1]],
                                    model.gates)
        points = minimal_foil_points(model2, -5)
        assert "pFSM0" not in {p.pfsm_name for p in points}


class TestLemma:
    def test_part1_holds(self):
        model = _model()
        assert check_lemma_part1(model.operations[0], Domain.integers(-5, 105))

    def test_part2_holds(self):
        assert check_lemma_part2(_model(), -5)

    def test_part2_vacuous_for_benign(self):
        assert check_lemma_part2(_model(), 50)

    def test_verify_lemma_report(self):
        model = _model()
        report = verify_lemma(
            model,
            {"op1": Domain.integers(-5, 105),
             "op2": Domain.of({"unchanged": True}, {"unchanged": False})},
            exploit_input=-5,
        )
        assert report.holds
        assert report.part1_results == {"op1": True, "op2": True}
        assert report.part2_result is True
        assert len(report.foil_points) == 2

    def test_report_without_checks_does_not_hold(self):
        from repro.core.analysis import LemmaReport

        assert not LemmaReport(model_name="empty").holds

    def test_part2_fails_for_a_model_violating_it(self):
        # Construct a pathological "model" where securing op1 does not
        # foil because the gate ignores op1's outcome entirely and the
        # exploit's hidden path lives only in op2: part 2 still holds
        # (securing op2 foils), so instead check the detection path by
        # making every operation's secured copy still compromised —
        # impossible by construction, hence we assert the property holds
        # for all our constructible models.
        model = _model()
        assert check_lemma_part2(model, -5)


class TestMinimalWitness:
    def _pfsm(self):
        from repro.core import PrimitiveFSM, in_range, less_equal

        return PrimitiveFSM("p", "index", "x",
                            spec_accepts=in_range(0, 100),
                            impl_accepts=less_equal(100))

    def test_prefers_structurally_small(self):
        from repro.core import Domain
        from repro.core.analysis import minimal_witness

        witness = minimal_witness(self._pfsm(),
                                  Domain.of(-1000, -73, -5, 50, 200))
        assert witness == -5  # shortest repr among the hidden witnesses

    def test_custom_key(self):
        from repro.core import Domain
        from repro.core.analysis import minimal_witness

        witness = minimal_witness(self._pfsm(),
                                  Domain.of(-1000, -73, -5),
                                  key=lambda value: value)
        assert witness == -1000  # smallest by numeric order

    def test_none_when_secure(self):
        from repro.core import Domain
        from repro.core.analysis import minimal_witness

        assert minimal_witness(self._pfsm(), Domain.integers(0, 100)) is None
