"""Predicate catalog and automatic analyzer tests."""

import pytest

from repro.core import (
    ActivityAdapter,
    AutoAnalyzer,
    Domain,
    PREDICATE_CATALOG,
    PfsmType,
    Predicate,
    entries_for_activity,
)
from repro.core.classification import ActivityKind


class TestCatalog:
    def test_paper_patterns_present(self):
        for key in ("non-negative", "int-range", "fits-int32",
                    "length-bound", "no-substring", "no-format-directives",
                    "decoded-path-inside-root", "reference-unchanged"):
            assert key in PREDICATE_CATALOG

    def test_int_range_instantiation(self):
        pred = PREDICATE_CATALOG["int-range"].instantiate(low=0, high=100)
        assert pred(50) and not pred(-1) and not pred(101)

    def test_length_bound(self):
        pred = PREDICATE_CATALOG["length-bound"].instantiate(limit=4)
        assert pred(b"abcd") and not pred(b"abcde")

    def test_no_substring_default_is_traversal(self):
        pred = PREDICATE_CATALOG["no-substring"].instantiate()
        assert not pred("a/../b")
        assert pred("a/b")

    def test_no_format_directives(self):
        pred = PREDICATE_CATALOG["no-format-directives"].instantiate()
        assert pred(b"host") and not pred(b"%n")
        assert pred("plain string")  # str inputs handled too

    def test_fits_int32(self):
        pred = PREDICATE_CATALOG["fits-int32"].instantiate()
        assert pred("100") and not pred(str(2**31))

    def test_decoded_path_inside_root(self):
        from repro.apps import percent_decode

        pred = PREDICATE_CATALOG["decoded-path-inside-root"].instantiate(
            decoder=percent_decode
        )
        assert pred("a/b.exe")
        assert not pred("..%252fc.exe")

    def test_reference_unchanged(self):
        pred = PREDICATE_CATALOG["reference-unchanged"].instantiate()
        assert pred({"unchanged": True}) and not pred({"unchanged": False})
        assert pred(True) and not pred(False)

    def test_default_domains_nonempty(self):
        for entry in PREDICATE_CATALOG.values():
            assert len(entry.default_domain()) > 0

    def test_entries_for_activity(self):
        copy_entries = entries_for_activity(ActivityKind.COPY_TO_BUFFER)
        assert any(e.key == "length-bound" for e in copy_entries)

    def test_check_types_assigned(self):
        assert PREDICATE_CATALOG["fits-int32"].check_type is \
            PfsmType.OBJECT_TYPE
        assert PREDICATE_CATALOG["reference-unchanged"].check_type is \
            PfsmType.REFERENCE_CONSISTENCY


class TestAutoAnalyzer:
    def _adapter(self, name, probe, domain, specs):
        return ActivityAdapter.of(name, f"activity {name}", probe, domain,
                                  specs)

    def test_flags_divergent_activity(self):
        # Implementation accepts everything; spec wants a bound.
        adapter = self._adapter(
            "bound", lambda x: True, Domain.integers(-5, 5),
            [Predicate(lambda x: x >= 0, "x >= 0")],
        )
        report = AutoAnalyzer().analyze("op", [adapter])
        assert report.is_vulnerable
        (verdict,) = report.vulnerable_activities
        assert verdict.activity == "bound"
        assert all(w < 0 for w in verdict.hidden_witnesses)

    def test_secure_activity_passes(self):
        adapter = self._adapter(
            "bound", lambda x: x >= 0, Domain.integers(-5, 5),
            [Predicate(lambda x: x >= 0, "x >= 0")],
        )
        report = AutoAnalyzer().analyze("op", [adapter])
        assert not report.is_vulnerable
        assert "no predicate violations" in report.to_text()

    def test_catalog_entries_usable_as_specs(self):
        adapter = self._adapter(
            "len", lambda n: True, Domain.of(-3, 0, 3),
            [PREDICATE_CATALOG["non-negative"]],
        )
        report = AutoAnalyzer().analyze("op", [adapter])
        (verdict,) = report.vulnerable_activities
        assert verdict.check_type is PfsmType.CONTENT_ATTRIBUTE

    def test_first_violated_candidate_chosen(self):
        loose = Predicate(lambda x: True, "anything")
        tight = Predicate(lambda x: x >= 0, "x >= 0")
        adapter = self._adapter(
            "pick", lambda x: True, Domain.integers(-3, 3), [loose, tight]
        )
        report = AutoAnalyzer().analyze("op", [adapter])
        (verdict,) = report.vulnerable_activities
        assert verdict.spec is tight  # the loose one had no witnesses

    def test_generated_model_is_runnable(self):
        adapter = self._adapter(
            "bound", lambda x: True, Domain.integers(-5, 5),
            [Predicate(lambda x: x >= 0, "x >= 0")],
        )
        report = AutoAnalyzer().analyze("op", [adapter])
        assert report.model.is_compromised_by(-3)
        assert not report.model.is_compromised_by(3)
        assert not report.model.fully_secured().is_compromised_by(-3)

    def test_probe_exceptions_count_as_rejection(self):
        def probe(x):
            if x < 0:
                raise RuntimeError("abort")
            return True

        adapter = self._adapter(
            "robust", probe, Domain.integers(-3, 3),
            [Predicate(lambda x: x >= 0, "x >= 0")],
        )
        report = AutoAnalyzer().analyze("op", [adapter])
        assert not report.is_vulnerable  # rejection by crash is still rejection

    def test_recommendations(self):
        adapter = self._adapter(
            "bound", lambda x: True, Domain.integers(-5, 5),
            [Predicate(lambda x: x >= 0, "x >= 0")],
        )
        report = AutoAnalyzer().analyze("op", [adapter])
        (recommendation,) = report.recommendations()
        assert "x >= 0" in recommendation and "bound" in recommendation

    def test_no_candidates_raises(self):
        adapter = ActivityAdapter.of("none", "d", lambda x: True,
                                     Domain.of(1), [])
        with pytest.raises(ValueError):
            AutoAnalyzer().analyze("op", [adapter])

    def test_multi_activity_report_order(self):
        adapters = [
            self._adapter("a1", lambda x: x >= 0, Domain.integers(-2, 2),
                          [Predicate(lambda x: x >= 0, "x >= 0")]),
            self._adapter("a2", lambda x: True, Domain.integers(-2, 2),
                          [Predicate(lambda x: x >= 0, "x >= 0")]),
        ]
        report = AutoAnalyzer().analyze("op", adapters)
        assert [v.activity for v in report.verdicts] == ["a1", "a2"]
        assert [v.activity for v in report.vulnerable_activities] == ["a2"]
