"""Primitive FSM tests: Figure 2 semantics."""

import pytest

from repro.core import (
    PfsmType,
    Predicate,
    PrimitiveFSM,
    StateKind,
    TransitionKind,
    in_range,
    less_equal,
)


@pytest.fixture
def sendmail_pfsm2():
    """The paper's Observation 3 example: spec 0<=x<=100, impl x<=100."""
    return PrimitiveFSM(
        name="pFSM2",
        activity="write i to tTvect[x]",
        object_name="x",
        spec_accepts=in_range(0, 100),
        impl_accepts=less_equal(100),
        accept_action="tTvect[x]=i",
        check_type=PfsmType.CONTENT_ATTRIBUTE,
    )


@pytest.fixture
def unchecked_pfsm():
    """A pFSM whose implementation performs no check at all."""
    return PrimitiveFSM(
        name="pFSM1",
        activity="get input",
        object_name="input",
        spec_accepts=in_range(0, 100),
        impl_accepts=None,
    )


class TestStepSemantics:
    def test_spec_accept_path(self, sendmail_pfsm2):
        outcome = sendmail_pfsm2.step(50)
        assert outcome.accepted
        assert not outcome.via_hidden_path
        assert outcome.transitions == (TransitionKind.SPEC_ACPT,)
        assert outcome.states == (StateKind.SPEC_CHECK, StateKind.ACCEPT)

    def test_impl_reject_path(self, sendmail_pfsm2):
        outcome = sendmail_pfsm2.step(150)  # spec rejects, impl rejects too
        assert outcome.foiled
        assert outcome.transitions == (
            TransitionKind.SPEC_REJ,
            TransitionKind.IMPL_REJ,
        )
        assert outcome.states[-1] is StateKind.REJECT

    def test_hidden_path(self, sendmail_pfsm2):
        outcome = sendmail_pfsm2.step(-563)  # spec rejects, impl accepts
        assert outcome.accepted
        assert outcome.via_hidden_path
        assert outcome.transitions == (
            TransitionKind.SPEC_REJ,
            TransitionKind.IMPL_ACPT,
        )
        assert outcome.states[-1] is StateKind.ACCEPT

    def test_boundary_values(self, sendmail_pfsm2):
        assert not sendmail_pfsm2.step(0).via_hidden_path
        assert not sendmail_pfsm2.step(100).via_hidden_path
        assert sendmail_pfsm2.step(-1).via_hidden_path
        assert sendmail_pfsm2.step(101).foiled

    def test_no_check_accepts_everything(self, unchecked_pfsm):
        outcome = unchecked_pfsm.step(10**9)
        assert outcome.accepted and outcome.via_hidden_path

    def test_no_check_spec_path_still_clean(self, unchecked_pfsm):
        outcome = unchecked_pfsm.step(50)
        assert outcome.accepted and not outcome.via_hidden_path

    def test_transform_applied_on_accept(self):
        pfsm = PrimitiveFSM(
            "p", "convert", "s",
            spec_accepts=Predicate(lambda s: True, "any"),
            transform=int,
        )
        assert pfsm.step("42").transformed == 42

    def test_transform_not_applied_on_reject(self):
        pfsm = PrimitiveFSM(
            "p", "convert", "s",
            spec_accepts=Predicate(lambda s: False, "none"),
            impl_accepts=Predicate(lambda s: False, "none"),
            transform=int,
        )
        outcome = pfsm.step("42")
        assert outcome.foiled
        assert outcome.transformed is None or outcome.transformed == "42"


class TestHiddenPathAnalysis:
    def test_takes_hidden_path(self, sendmail_pfsm2):
        assert sendmail_pfsm2.takes_hidden_path(-5)
        assert not sendmail_pfsm2.takes_hidden_path(5)
        assert not sendmail_pfsm2.takes_hidden_path(500)

    def test_hidden_witnesses(self, sendmail_pfsm2):
        witnesses = sendmail_pfsm2.hidden_witnesses(range(-10, 10))
        assert witnesses == list(range(-10, 0))

    def test_witness_limit(self, sendmail_pfsm2):
        assert len(sendmail_pfsm2.hidden_witnesses(range(-100, 0), limit=3)) == 3

    def test_has_hidden_path(self, sendmail_pfsm2):
        assert sendmail_pfsm2.has_hidden_path(range(-5, 5))
        assert not sendmail_pfsm2.has_hidden_path(range(0, 101))

    def test_is_secure(self, sendmail_pfsm2):
        assert sendmail_pfsm2.is_secure(range(0, 200))  # over-rejection is secure
        assert not sendmail_pfsm2.is_secure(range(-1, 2))


class TestSecuring:
    def test_secured_removes_hidden_path(self, sendmail_pfsm2):
        fixed = sendmail_pfsm2.secured()
        assert fixed.is_secure(range(-1000, 1000))

    def test_secured_preserves_identity_fields(self, sendmail_pfsm2):
        fixed = sendmail_pfsm2.secured()
        assert fixed.name == "pFSM2"
        assert fixed.check_type is PfsmType.CONTENT_ATTRIBUTE

    def test_secured_still_accepts_valid(self, sendmail_pfsm2):
        assert sendmail_pfsm2.secured().step(50).accepted

    def test_with_impl(self, sendmail_pfsm2):
        loosened = sendmail_pfsm2.with_impl(None)
        assert not loosened.has_check
        assert loosened.step(5000).accepted

    def test_original_unmodified(self, sendmail_pfsm2):
        sendmail_pfsm2.secured()
        assert sendmail_pfsm2.takes_hidden_path(-1)  # frozen original


class TestStructure:
    def test_has_check(self, sendmail_pfsm2, unchecked_pfsm):
        assert sendmail_pfsm2.has_check
        assert not unchecked_pfsm.has_check

    def test_transitions_spec_count(self, sendmail_pfsm2):
        transitions = sendmail_pfsm2.transitions_spec()
        assert len(transitions) == 4
        kinds = [t.kind for t in transitions]
        assert kinds == [
            TransitionKind.SPEC_ACPT,
            TransitionKind.SPEC_REJ,
            TransitionKind.IMPL_REJ,
            TransitionKind.IMPL_ACPT,
        ]

    def test_missing_impl_rej_marked(self, unchecked_pfsm):
        transitions = {t.kind: t for t in unchecked_pfsm.transitions_spec()}
        assert not transitions[TransitionKind.IMPL_REJ].exists

    def test_impl_rej_present_when_checked(self, sendmail_pfsm2):
        transitions = {t.kind: t for t in sendmail_pfsm2.transitions_spec()}
        assert transitions[TransitionKind.IMPL_REJ].exists

    def test_describe_mentions_spec_and_impl(self, sendmail_pfsm2):
        text = sendmail_pfsm2.describe()
        assert "0 <= · <= 100" in text
        assert "· <= 100" in text

    def test_describe_no_check(self, unchecked_pfsm):
        assert "(no check)" in unchecked_pfsm.describe()
