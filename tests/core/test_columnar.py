"""The columnar domain engine (repro.core.columnar).

The engine's contract is *bit-for-bit equivalence*: whenever
``scan_program`` takes a task, its witnesses must match the compiled
scalar scan exactly — same objects, same domain iteration order, same
per-occurrence duplicates, same ``limit`` truncation.  The property
tests here drive that claim over generated integer, text, and record
domains, under both mask backends (numpy when installed, and the
pure-stdlib big-int kernels via ``force_fallback``), and across a
``ProcessPoolExecutor`` with shared-memory column transfer.

The unit tests pin the supporting machinery: encoding-cache sharing by
domain digest, kernel bail-outs (named predicates, nested ``attr``,
mixed-type columns), ``spec_fields`` pre-flight, the shared-memory
export/attach lifecycle, and the inline-payload degradation path.
"""

import gc
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import (
    Domain,
    PrimitiveFSM,
    always,
    attr,
    contains,
    equals,
    greater_equal,
    hidden_witness_scan,
    in_range,
    is_instance,
    length_le,
    less_equal,
    matches,
    never,
    not_contains,
    plan_scan,
    predicate,
    program_for,
    satisfies_all,
    satisfies_any,
    truthy,
)
from repro.core import columnar
from repro.core.predspec import named_predicate, spec_fields, to_spec


@pytest.fixture(scope="module", autouse=True)
def _tiny_threshold():
    """Drop the row floor so generated micro-domains take the columnar
    path, and leave the module state pristine afterwards."""
    previous = columnar.set_min_rows(1)
    yield
    columnar.set_min_rows(previous)
    columnar.encoding_cache().clear()
    columnar.release_attachments()


def _pfsm(spec, impl):
    return PrimitiveFSM("p", "scan", "x", spec_accepts=spec,
                        impl_accepts=impl)


def _scalar(pfsm, domain, limit):
    """The reference answer: the same scan with columnar bypassed."""
    with columnar.disabled():
        return hidden_witness_scan(pfsm, domain, limit=limit)


def _columnar_witnesses(pfsm, domain, limit):
    """Witnesses via the columnar kernel itself (not the sweep
    dispatcher), so tests fail loudly if the kernel declines."""
    found = columnar.scan_program(program_for(pfsm), domain, limit)
    assert found is not None, "columnar kernel unexpectedly declined"
    return found


# ---------------------------------------------------------------------------
# Property: columnar ≡ scalar, integer domains.
# ---------------------------------------------------------------------------

bounds = st.integers(min_value=-30, max_value=30)
interval = st.tuples(bounds, bounds).map(lambda p: (min(p), max(p)))

int_leaf = st.one_of(
    st.just(always),
    st.just(never),
    bounds.map(equals),
    interval.map(lambda iv: in_range(*iv)),
    bounds.map(less_equal),
    bounds.map(greater_equal),
    st.builds(truthy),
)
int_pred = st.one_of(
    int_leaf,
    st.builds(satisfies_all, int_leaf, int_leaf),
    st.builds(satisfies_any, int_leaf, int_leaf),
)

#: Lists drawn from a narrow pool so duplicates are common, not rare.
int_rows = st.lists(st.integers(min_value=-12, max_value=12),
                    min_size=1, max_size=48)
limits = st.integers(min_value=1, max_value=60)


@pytest.mark.parametrize("fallback", [False, True],
                         ids=["numpy-or-default", "stdlib"])
class TestEquivalence:
    """columnar ≡ scalar over generated domains, both backends."""

    def _check(self, spec, impl, rows, limit, fallback):
        domain = Domain(list(rows))
        pfsm = _pfsm(spec, impl)
        expected = _scalar(pfsm, domain, limit)
        if fallback:
            with columnar.force_fallback():
                got = _columnar_witnesses(pfsm, domain, limit)
        else:
            got = _columnar_witnesses(pfsm, domain, limit)
        assert got == expected

    @given(spec=int_pred, impl=int_pred, rows=int_rows, limit=limits)
    @settings(max_examples=60, deadline=None)
    def test_integers(self, fallback, spec, impl, rows, limit):
        self._check(spec, impl, rows, limit, fallback)

    @given(
        spec=st.one_of(
            st.integers(min_value=0, max_value=6).map(length_le),
            st.sampled_from(["a", "b", "%n", ""]).map(contains),
            st.sampled_from(["a", "b", "%n"]).map(not_contains),
            st.sampled_from(["^a", "b$", "%n"]).map(matches),
            st.sampled_from(["a", "ab", ""]).map(equals),
            st.builds(truthy),
        ),
        impl=st.one_of(
            st.integers(min_value=0, max_value=8).map(length_le),
            st.just(always),
        ),
        rows=st.lists(
            st.text(alphabet="ab%n", min_size=0, max_size=6),
            min_size=1, max_size=40),
        limit=limits,
    )
    @settings(max_examples=60, deadline=None)
    def test_text(self, fallback, spec, impl, rows, limit):
        self._check(spec, impl, rows, limit, fallback)

    @given(
        low=bounds, high=bounds,
        cap=st.integers(min_value=0, max_value=5),
        rows=st.lists(
            st.tuples(st.integers(min_value=-12, max_value=12),
                      st.text(alphabet="xyz", min_size=0, max_size=5)),
            min_size=1, max_size=40),
        limit=limits,
    )
    @settings(max_examples=60, deadline=None)
    def test_records(self, fallback, low, high, cap, rows, limit):
        lo, hi = min(low, high), max(low, high)
        spec = satisfies_all(attr("size", in_range(lo, hi)),
                             attr("name", length_le(cap)))
        impl = satisfies_any(attr("size", less_equal(hi + 3)),
                             attr("name", truthy()))
        records = [{"size": s, "name": n} for s, n in rows]
        self._check(spec, impl, records, limit, fallback)

    def test_duplicates_reported_per_occurrence(self, fallback):
        domain = Domain([5, 5, 1, 5, 2, 5])
        pfsm = _pfsm(less_equal(2), always)  # hidden: every 5
        expected = [5, 5, 5, 5]
        assert _scalar(pfsm, domain, 10) == expected
        if fallback:
            with columnar.force_fallback():
                assert _columnar_witnesses(pfsm, domain, 10) == expected
                assert _columnar_witnesses(pfsm, domain, 3) == [5, 5, 5]
        else:
            assert _columnar_witnesses(pfsm, domain, 10) == expected
            assert _columnar_witnesses(pfsm, domain, 3) == [5, 5, 5]


def test_range_domain_equivalence():
    domain = Domain.integers(-40, 120)
    pfsm = _pfsm(satisfies_all(in_range(0, 50), truthy()),
                 less_equal(80))
    for limit in (1, 7, 200):
        assert _columnar_witnesses(pfsm, domain, limit) == \
            _scalar(pfsm, domain, limit)


def test_product_domain_equivalence():
    domain = Domain.records(size=Domain.integers(-5, 25),
                            name=Domain.of("", "ok", "%n%n", "abc"))
    spec = satisfies_all(attr("size", in_range(0, 10)),
                         attr("name", length_le(2)))
    impl = attr("size", less_equal(20))
    pfsm = _pfsm(spec, impl)
    for limit in (1, 5, 1000):
        assert _columnar_witnesses(pfsm, domain, limit) == \
            _scalar(pfsm, domain, limit)


# ---------------------------------------------------------------------------
# Kernel bail-outs: decline, never guess.
# ---------------------------------------------------------------------------

_IS_EVEN = named_predicate("columnar_test_is_even", lambda obj: obj % 2 == 0)


class TestBailouts:
    def test_named_predicate_declines(self):
        domain = Domain(list(range(20)))
        pfsm = _pfsm(_IS_EVEN, always)
        program = program_for(pfsm)
        assert program is not None
        assert columnar.scan_program(program, domain, 10) is None
        assert not columnar.kernel_available(program, domain)
        # The sweep still answers, via the scalar path.
        assert hidden_witness_scan(pfsm, domain, limit=4) == [1, 3, 5, 7]

    def test_opaque_callable_has_no_program(self):
        domain = Domain(list(range(10)))
        pfsm = _pfsm(predicate("opaque")(lambda obj: obj < 5), always)
        assert program_for(pfsm) is None
        assert columnar.scan_program(None, domain, 10) is None

    def test_mixed_type_column_declines(self):
        rows = [{"size": 1, "name": "a"}, {"size": "two", "name": "b"}] * 8
        domain = Domain(rows)
        needs_mixed = _pfsm(attr("size", less_equal(3)), always)
        program = program_for(needs_mixed)
        assert program is not None
        assert not columnar.kernel_available(program, domain)
        # A spec touching only the clean column still vectorizes.
        clean = _pfsm(attr("name", equals("a")), always)
        assert columnar.kernel_available(program_for(clean), domain)
        assert _columnar_witnesses(clean, domain, 50) == \
            _scalar(clean, domain, 50)

    def test_nested_attr_declines(self):
        rows = [{"outer": {"inner": i}} for i in range(12)]
        domain = Domain(rows)
        pfsm = _pfsm(attr("outer", attr("inner", less_equal(5))), always)
        program = program_for(pfsm)
        if program is None:
            pytest.skip("planner does not compile nested attr")
        assert columnar.scan_program(program, domain, 10) is None

    def test_isinstance_spec_vectorizes(self):
        domain = Domain(["a", "bb", "ccc"] * 6)
        pfsm = _pfsm(satisfies_all(is_instance(str), length_le(1)), always)
        assert _columnar_witnesses(pfsm, domain, 50) == \
            _scalar(pfsm, domain, 50)

    def test_bool_rows_do_not_take_int_kernels(self):
        # bool is an int subclass with different str()/repr() semantics;
        # the encoder must classify such columns "obj" and decline.
        domain = Domain([True, False] * 10)
        pfsm = _pfsm(less_equal(0), always)
        program = program_for(pfsm)
        assert columnar.scan_program(program, domain, 10) is None
        assert hidden_witness_scan(pfsm, domain, limit=4) == \
            _scalar(pfsm, domain, 4)


# ---------------------------------------------------------------------------
# spec_fields: the pre-flight column census.
# ---------------------------------------------------------------------------

class TestSpecFields:
    def test_collects_in_first_reference_order(self):
        spec = to_spec(satisfies_all(attr("size", in_range(0, 9)),
                                     attr("name", length_le(4)),
                                     attr("size", truthy())))
        assert spec_fields(spec) == ("size", "name")

    def test_walks_or_and_not(self):
        spec = to_spec(satisfies_any(
            attr("a", truthy()),
            satisfies_all(attr("b", truthy()), attr("a", truthy()))))
        assert spec_fields(spec) == ("a", "b")

    def test_leaf_and_malformed_specs(self):
        assert spec_fields(to_spec(less_equal(3))) == ()
        assert spec_fields(None) == ()
        assert spec_fields(["attr"]) == ()
        assert spec_fields(42) == ()


# ---------------------------------------------------------------------------
# Encoding cache: shared by content digest, invalidated by config.
# ---------------------------------------------------------------------------

class TestEncodingCache:
    def test_equal_content_domains_share_encoding(self):
        columnar.encoding_cache().clear()
        d1 = Domain(list(range(64)))
        d2 = Domain(list(range(64)))
        e1 = columnar.encoding_for(d1)
        e2 = columnar.encoding_for(d2)
        assert e1 is not None and e1 is e2

    def test_per_domain_memo_avoids_cache_traffic(self):
        domain = Domain(list(range(32)))
        e1 = columnar.encoding_for(domain)
        before = columnar.encoding_cache().stats()
        assert columnar.encoding_for(domain) is e1
        assert columnar.encoding_cache().stats() == before

    def test_backend_switch_invalidates(self):
        domain = Domain(list(range(48)))
        e1 = columnar.encoding_for(domain)
        assert e1 is not None
        if not columnar.using_numpy():
            pytest.skip("no numpy: both stamps identical")
        with columnar.force_fallback():
            e2 = columnar.encoding_for(domain)
            assert e2 is not None and e2 is not e1

    def test_min_rows_threshold_gates(self):
        previous = columnar.set_min_rows(100)
        try:
            assert columnar.encoding_for(Domain(list(range(10)))) is None
            assert columnar.encoding_for(Domain(list(range(200)))) \
                is not None
        finally:
            columnar.set_min_rows(previous)

    def test_lru_bound_holds(self):
        cache = columnar.EncodingCache(maxsize=4)
        for i in range(10):
            cache.put(f"digest-{i}", None)
        assert len(cache) == 4
        hit, _ = cache.get("digest-9")
        assert hit
        hit, _ = cache.get("digest-0")
        assert not hit


def test_planner_reports_columnar_strategy():
    domain = Domain(list(range(600)))
    pfsm = _pfsm(satisfies_all(in_range(0, 99), truthy()), less_equal(400))
    plan = plan_scan(pfsm, domain)
    assert plan.strategy == "columnar"
    with columnar.disabled():
        assert plan_scan(pfsm, domain).strategy != "columnar"


def test_sweep_counters_tag_columnar_scans():
    domain = Domain(list(range(300)))
    pfsm = _pfsm(satisfies_all(in_range(0, 9), truthy()), always)
    sink = obs.MemorySink()
    registry = obs.get_registry()
    registry.reset()
    registry.enable(sink)
    try:
        hidden_witness_scan(pfsm, domain, limit=5)
        counters = registry.counters()
    finally:
        registry.disable()
        registry.clear_sinks()
        registry.reset()
    assert counters.get("sweep.scans.columnar") == 1
    assert counters.get("plan.strategy.columnar") == 1
    assert "sweep.scans.compiled" not in counters


# ---------------------------------------------------------------------------
# Shared memory: export, attach, scan in a worker, degrade inline.
# ---------------------------------------------------------------------------

def _shared_pfsm():
    return _pfsm(
        satisfies_all(attr("size", in_range(0, 40)),
                      attr("name", length_le(3))),
        attr("size", less_equal(90)),
    )


def _worker_scan(blob, limit):
    """Pool worker: unpickle the shared ref, attach, scan."""
    from repro.core import columnar as col
    from repro.core import hidden_witness_scan as scan

    ref = pickle.loads(blob)
    try:
        return scan(_shared_pfsm(), ref, limit=limit)
    finally:
        col.release_attachments()


def _record_rows(sizes):
    return [{"size": s, "name": "x" * (abs(s) % 5)} for s in sizes]


class TestSharedMemory:
    def test_export_roundtrip_same_process(self):
        rows = _record_rows(range(200))
        domain = Domain(rows)
        export = columnar.export_shared(domain)
        assert export is not None
        try:
            ref = pickle.loads(pickle.dumps(export.ref))
            assert isinstance(ref, columnar.SharedColumnarDomain)
            assert len(ref) == len(rows)
            assert list(ref) == rows
            pfsm = _shared_pfsm()
            assert hidden_witness_scan(pfsm, ref, limit=25) == \
                _scalar(pfsm, domain, 25)
            # Drop the attached column views before unlinking, or the
            # still-mapped buffer makes the handle's close() unraisable.
            # (encoding ↔ kernel memo is a cycle: collect explicitly.)
            del ref
        finally:
            gc.collect()
            export.close()
            columnar.release_attachments()

    def test_ref_pickles_much_smaller_than_domain(self):
        rows = _record_rows(range(5000))
        domain = Domain(rows)
        export = columnar.export_shared(domain)
        assert export is not None
        try:
            if export.ref.segment is None:
                pytest.skip("shared memory unavailable on this platform")
            ref_bytes = len(pickle.dumps(export.ref))
            domain_bytes = len(pickle.dumps(rows))
            assert ref_bytes * 10 <= domain_bytes
        finally:
            export.close()

    def test_inline_payload_fallback_scans(self):
        rows = _record_rows(range(150))
        domain = Domain(rows)
        export = columnar.export_shared(domain)
        assert export is not None
        try:
            # Rebuild the ref with the segment stripped — the shape a
            # platform without shared memory produces.
            state = export.ref.__getstate__()
            encoding = columnar.encoding_for(domain)
            parts = columnar._column_payloads(encoding)
            state["segment"] = None
            state["payload"] = b"".join(data for _n, _k, data in parts)
            inline = columnar.SharedColumnarDomain.__new__(
                columnar.SharedColumnarDomain)
            inline.__setstate__(state)
            pfsm = _shared_pfsm()
            assert hidden_witness_scan(pfsm, inline, limit=30) == \
                _scalar(pfsm, domain, 30)
        finally:
            export.close()
            columnar.release_attachments()

    def test_lazy_domains_are_not_exported(self):
        assert columnar.export_shared(Domain.integers(0, 5000)) is None

    @given(sizes=st.lists(st.integers(min_value=-50, max_value=99),
                          min_size=1, max_size=300),
           limit=st.integers(min_value=1, max_value=40))
    @settings(max_examples=8, deadline=None)
    def test_pool_scan_over_shared_columns(self, sizes, limit):
        rows = _record_rows(sizes)
        domain = Domain(rows)
        expected = _scalar(_shared_pfsm(), domain, limit)
        export = columnar.export_shared(domain)
        assert export is not None
        try:
            blob = pickle.dumps(export.ref)
            with ProcessPoolExecutor(max_workers=1) as pool:
                got = pool.submit(_worker_scan, blob, limit).result(
                    timeout=60)
            assert got == expected
        finally:
            export.close()
            columnar.release_attachments()
