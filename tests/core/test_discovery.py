"""Discovery engine tests: probing implementations, flagging new hidden
paths."""

import pytest

from repro.core import (
    DiscoveryEngine,
    Domain,
    Operation,
    Predicate,
    PrimitiveFSM,
    in_range,
    probe_implementation,
)


class TestProbeImplementation:
    def test_probe_partitions_domain(self):
        probe = probe_implementation(
            lambda x: x <= 100, Domain.integers(-3, 103)
        )
        assert -3 in probe.accepted
        assert 103 in probe.rejected

    def test_probe_predicate_usable(self):
        probe = probe_implementation(lambda x: x <= 100, Domain.integers(0, 5))
        assert probe.predicate(50)
        assert not probe.predicate(500)

    def test_exception_counts_as_rejection(self):
        def accepts(x):
            if x < 0:
                raise ValueError("negative")
            return True

        probe = probe_implementation(accepts, Domain.integers(-2, 2))
        assert -2 in probe.rejected
        assert 2 in probe.accepted

    def test_checks_anything(self):
        everything = probe_implementation(lambda _x: True, Domain.integers(0, 5))
        assert not everything.checks_anything
        some = probe_implementation(lambda x: x > 2, Domain.integers(0, 5))
        assert some.checks_anything


class TestSweepOperation:
    def _operation(self):
        return Operation(
            "read", "the request",
            [
                PrimitiveFSM("pFSM1", "check length", "n",
                             spec_accepts=in_range(0, 100),
                             impl_accepts=in_range(0, 100)),  # fixed
                PrimitiveFSM("pFSM2", "copy", "n",
                             spec_accepts=in_range(0, 100),
                             impl_accepts=None),  # the undiscovered bug
            ],
        )

    def test_finds_only_divergent_activity(self):
        engine = DiscoveryEngine()
        findings = engine.sweep_operation(
            self._operation(),
            {"pFSM1": Domain.integers(-5, 105),
             "pFSM2": Domain.integers(-5, 105)},
        )
        assert [f.pfsm_name for f in findings] == ["pFSM2"]

    def test_known_flagging(self):
        engine = DiscoveryEngine(known_vulnerable=["pFSM2"])
        findings = engine.sweep_operation(
            self._operation(), {"pFSM2": Domain.integers(-5, 105)}
        )
        assert findings[0].known
        assert not findings[0].is_new

    def test_new_findings_filter(self):
        engine = DiscoveryEngine(known_vulnerable=["pFSM1"])
        findings = engine.sweep_operation(
            self._operation(),
            {"pFSM1": Domain.integers(-5, 105),
             "pFSM2": Domain.integers(-5, 105)},
        )
        new = DiscoveryEngine.new_findings(findings)
        assert [f.pfsm_name for f in new] == ["pFSM2"]

    def test_missing_domain_skipped(self):
        engine = DiscoveryEngine()
        assert engine.sweep_operation(self._operation(), {}) == []

    def test_finding_str(self):
        engine = DiscoveryEngine()
        (finding,) = engine.sweep_operation(
            self._operation(), {"pFSM2": Domain.integers(-2, -1)}
        )
        assert "NEW" in str(finding)


class TestSweepProbed:
    def test_probed_sweep_discovers_logic_bug(self):
        # An implementation whose accept set exceeds the spec's: the ||
        # vs && shape, abstracted.
        def buggy_accepts(n):
            return n == 1024 or n < 100  # should be `and`-ish narrowing

        spec = Predicate(lambda n: 0 <= n < 100, "0 <= n < 100")
        engine = DiscoveryEngine()
        findings = engine.sweep_probed(
            "read loop",
            [("pFSM2", "terminate the copy", spec, buggy_accepts)],
            {"pFSM2": Domain.of(-5, 0, 50, 99, 100, 512, 1024)},
        )
        assert len(findings) == 1
        assert 1024 in findings[0].witnesses or -5 in findings[0].witnesses

    def test_probed_sweep_clean_implementation(self):
        spec = Predicate(lambda n: 0 <= n < 100, "0 <= n < 100")
        engine = DiscoveryEngine()
        findings = engine.sweep_probed(
            "read loop",
            [("pFSM1", "check", spec, lambda n: 0 <= n < 100)],
            {"pFSM1": Domain.integers(-10, 110)},
        )
        assert findings == []
