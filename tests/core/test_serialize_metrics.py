"""Serialization and quantitative-metrics tests."""

import json

import pytest

from repro.core import (
    Domain,
    WeightedDomain,
    compromise_probability,
    evaluate_model,
    exposure_ratio,
    mean_effort_to_foil,
    model_fingerprint,
    model_to_dict,
    model_to_json,
    pfsm_rates,
    pfsm_to_dict,
    result_to_dict,
    trace_to_dict,
)
from repro.models import sendmail_model


@pytest.fixture
def model():
    return sendmail_model.build_model()


class TestSerialization:
    def test_model_dict_structure(self, model):
        data = model_to_dict(model)
        assert data["bugtraq_ids"] == [3163]
        assert len(data["operations"]) == 2
        assert len(data["gates"]) == 1
        assert data["operations"][0]["pfsms"][1]["name"] == "pFSM2"

    def test_pfsm_dict_transitions(self, model):
        pfsm = model.operations[0].pfsms[1]
        data = pfsm_to_dict(pfsm)
        kinds = {t["kind"]: t for t in data["transitions"]}
        assert kinds["IMPL_ACPT"]["hidden"]
        assert kinds["IMPL_REJ"]["exists"]  # pFSM2 does check something

    def test_missing_check_serialized_as_null(self, model):
        pfsm = model.operations[1].pfsms[0]  # pFSM3: no check
        data = pfsm_to_dict(pfsm)
        assert data["impl"] is None
        assert not data["has_check"]

    def test_json_round_trips_as_json(self, model):
        parsed = json.loads(model_to_json(model))
        assert parsed["name"].startswith("Sendmail")

    def test_trace_dict(self, model):
        result = model.run(sendmail_model.exploit_input())
        data = trace_to_dict(result.trace)
        assert data["succeeded"]
        assert data["hidden_path_count"] == 2
        hidden_events = [e for e in data["events"]
                         if e["outcome"] and e["outcome"]["hidden"]]
        assert [e["subject"] for e in hidden_events] == ["pFSM2", "pFSM3"]

    def test_result_dict(self, model):
        result = model.run(sendmail_model.exploit_input())
        data = result_to_dict(result)
        assert data["compromised"]
        assert [op["name"] for op in data["operations"]] == [
            sendmail_model.OPERATION_1, sendmail_model.OPERATION_2,
        ]
        json.dumps(data)  # fully JSON-serializable

    def test_fingerprint_stable(self, model):
        assert model_fingerprint(model) == \
            model_fingerprint(sendmail_model.build_model())

    def test_fingerprint_changes_on_fix(self, model):
        patched = sendmail_model.build_model(patched=True)
        assert model_fingerprint(model) != model_fingerprint(patched)

    def test_fingerprint_changes_on_securing(self, model):
        assert model_fingerprint(model) != \
            model_fingerprint(model.fully_secured())


def _record(x):
    return {"str_x": x, "str_i": "1"}


@pytest.fixture
def inputs():
    return WeightedDomain.uniform(
        Domain([_record("-5"), _record("5"), _record("50"),
                _record("200"), _record(str(2**32 - 7))])
    )


class TestWeightedDomain:
    def test_uniform_probability(self):
        domain = WeightedDomain.uniform(Domain.integers(1, 4))
        assert domain.probability(lambda x: x <= 2) == pytest.approx(0.5)

    def test_weights_respected(self):
        domain = WeightedDomain([(1, 3.0), (2, 1.0)])
        assert domain.probability(lambda x: x == 1) == pytest.approx(0.75)

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            WeightedDomain([(1, 0.0)])

    def test_len_and_iter(self):
        domain = WeightedDomain([(1, 1.0), (2, 2.0)])
        assert len(domain) == 2
        assert list(domain) == [(1, 1.0), (2, 2.0)]


class TestMetrics:
    def test_compromise_probability(self, model, inputs):
        # Of the 5 inputs: -5 and the wrapping one compromise.
        assert compromise_probability(model, inputs) == pytest.approx(0.4)

    def test_secured_probability_zero(self, model, inputs):
        assert compromise_probability(model.fully_secured(), inputs) == 0.0

    def test_pfsm_rates_partition(self, model):
        pfsm = model.operations[0].pfsms[1]  # pFSM2
        rates = pfsm_rates(pfsm, WeightedDomain.uniform(
            Domain([{"x": v, "i": 1} for v in (-5, 5, 50, 200)])
        ))
        assert rates.total == pytest.approx(1.0)
        assert rates.hidden_accept == pytest.approx(0.25)  # only -5
        assert rates.impl_reject == pytest.approx(0.25)  # only 200

    def test_exposure_ratio_missing_check_is_one(self, model):
        pfsm = model.operations[1].pfsms[0]  # pFSM3: no check
        domain = WeightedDomain.uniform(Domain.of(
            {"addr_setuid_unchanged": True},
            {"addr_setuid_unchanged": False},
        ))
        assert exposure_ratio(pfsm, domain) == pytest.approx(1.0)

    def test_exposure_ratio_complete_check_is_zero(self, model):
        pfsm = model.operations[0].pfsms[1].secured()
        domain = WeightedDomain.uniform(
            Domain([{"x": v, "i": 1} for v in (-5, 5, 200)])
        )
        assert exposure_ratio(pfsm, domain) == 0.0

    def test_mean_effort_to_foil(self, model, inputs):
        # Cascade order: pFSM1 (doesn't stop "-5"), pFSM2 (stops both).
        assert mean_effort_to_foil(model, inputs) == 2

    def test_effort_zero_when_safe(self, model):
        benign = WeightedDomain.uniform(Domain([_record("5")]))
        assert mean_effort_to_foil(model, benign) == 0

    def test_effort_with_custom_order(self, model, inputs):
        order = [(sendmail_model.OPERATION_2, "pFSM3")]
        assert mean_effort_to_foil(model, inputs, fix_order=order) == 1

    def test_effort_exhausted_order_raises(self, model, inputs):
        with pytest.raises(ValueError):
            mean_effort_to_foil(model, inputs,
                                fix_order=[(sendmail_model.OPERATION_1,
                                            "pFSM1")])

    def test_evaluate_model(self, model, inputs):
        pfsm_inputs = {
            name: WeightedDomain.uniform(domain)
            for name, domain in sendmail_model.pfsm_domains().items()
        }
        metrics = evaluate_model(model, inputs, pfsm_inputs)
        assert metrics.compromise_probability == pytest.approx(0.4)
        assert metrics.effort_to_foil == 2
        assert set(metrics.per_pfsm) == {"pFSM1", "pFSM2", "pFSM3"}
        assert "P(compromise)" in metrics.to_text()

    def test_evaluate_secured_model(self, model, inputs):
        metrics = evaluate_model(model.fully_secured(), inputs, {})
        assert metrics.compromise_probability == 0.0
        assert metrics.effort_to_foil == 0
