"""Taxonomy tests: Bugtraq categories, pFSM types, activity anchoring."""

from repro.core import (
    ActivityKind,
    BugtraqCategory,
    CATEGORY_DEFINITIONS,
    PfsmType,
    categorize_by_activity,
)


class TestBugtraqCategories:
    def test_twelve_categories(self):
        assert len(BugtraqCategory) == 12

    def test_all_have_definitions(self):
        assert set(CATEGORY_DEFINITIONS) == set(BugtraqCategory)

    def test_paper_definitions_present(self):
        assert "buffer overflow" in CATEGORY_DEFINITIONS[
            BugtraqCategory.BOUNDARY_CONDITION
        ]
        assert "syntactically incorrect" in CATEGORY_DEFINITIONS[
            BugtraqCategory.INPUT_VALIDATION
        ]
        assert "timing window" in CATEGORY_DEFINITIONS[
            BugtraqCategory.RACE_CONDITION
        ]

    def test_undefined_categories_marked(self):
        assert CATEGORY_DEFINITIONS[BugtraqCategory.DESIGN] == "not defined"
        assert CATEGORY_DEFINITIONS[BugtraqCategory.ORIGIN_VALIDATION] == \
            "not defined"


class TestPfsmTypes:
    def test_exactly_three(self):
        assert len(PfsmType) == 3

    def test_names_match_figure8(self):
        assert PfsmType.OBJECT_TYPE.value == "Object Type Check"
        assert PfsmType.CONTENT_ATTRIBUTE.value == "Content and Attribute Check"
        assert PfsmType.REFERENCE_CONSISTENCY.value == \
            "Reference Consistency Check"


class TestActivityAnchoring:
    def test_table1_mechanism(self):
        # The three Table 1 anchors map to the three assigned categories.
        assert categorize_by_activity(ActivityKind.GET_INPUT) is \
            BugtraqCategory.INPUT_VALIDATION
        assert categorize_by_activity(ActivityKind.USE_AS_INDEX) is \
            BugtraqCategory.BOUNDARY_CONDITION
        assert categorize_by_activity(ActivityKind.TRANSFER_CONTROL) is \
            BugtraqCategory.ACCESS_VALIDATION

    def test_buffer_overflow_chain(self):
        # #6157 / #5960 / #4479: the same chain, three categories.
        assert categorize_by_activity(ActivityKind.GET_INPUT) is \
            BugtraqCategory.INPUT_VALIDATION
        assert categorize_by_activity(ActivityKind.COPY_TO_BUFFER) is \
            BugtraqCategory.BOUNDARY_CONDITION
        assert categorize_by_activity(ActivityKind.HANDLE_ADJACENT_DATA) is \
            BugtraqCategory.EXCEPTIONAL_CONDITIONS

    def test_race_anchor(self):
        assert categorize_by_activity(ActivityKind.CHECK_THEN_USE) is \
            BugtraqCategory.RACE_CONDITION

    def test_every_activity_maps(self):
        for activity in ActivityKind:
            assert isinstance(categorize_by_activity(activity), BugtraqCategory)

    def test_same_type_three_categories(self):
        # The core Table 1 observation: one vulnerability type, three
        # distinct categories, purely from the anchoring activity.
        anchors = [ActivityKind.GET_INPUT, ActivityKind.USE_AS_INDEX,
                   ActivityKind.TRANSFER_CONTROL]
        categories = {categorize_by_activity(a) for a in anchors}
        assert len(categories) == 3
