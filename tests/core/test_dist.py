"""The distributed sweep scheduler: chunking, the warm pool, the
fingerprint memo, crash retry, the queue front-end, and JSONL resume."""

import json
import os

import pytest

from repro import obs
from repro.core import (
    Domain,
    InProcessQueue,
    PrimitiveFSM,
    ResultStore,
    domain_digest,
    in_range,
    less_equal,
    named_predicate,
    sweep_models,
    task_key,
)
from repro.core import dist
from repro.models import sendmail_model

#: Recorded at import so a forked worker (different pid) can tell it is
#: not the test process — the crash predicate fires only off-parent.
_PARENT_PID = os.getpid()


def _crash_off_parent(value):
    if os.getpid() != _PARENT_PID:
        os._exit(1)
    return 0 <= value <= 5


crashy = named_predicate("crash_off_parent", _crash_off_parent,
                         "crashes any process but the test parent")


@pytest.fixture(autouse=True)
def _fresh_scheduler():
    dist.reset()
    yield
    dist.reset()


def _pfsm(spec=None, impl=None):
    return PrimitiveFSM("p", "scan", "x",
                        spec_accepts=spec or in_range(0, 5),
                        impl_accepts=impl if impl is not None
                        else less_equal(10))


def _task(domain, pfsm=None, limit=5):
    return ("model", "op", pfsm or _pfsm(), domain, limit)


def _witnesses(results):
    return [tuple(r.witnesses) if r is not None else None for r in results]


class TestChunking:
    def test_partition_is_exact_and_ordered(self):
        tasks = [_task(Domain.integers(0, n)) for n in (3, 50, 7, 120, 1, 9)]
        chunks = dist.chunk_tasks(tasks, list(range(len(tasks))), 3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(len(tasks)))
        for chunk in chunks:
            assert chunk == sorted(chunk)

    def test_lpt_balances_by_estimated_scan_cost(self):
        from repro.core import Predicate

        # Opaque specs defeat the planner, so estimated cost degrades to
        # per-object evaluation — proportional to domain cardinality.
        sizes = [1000, 10, 10, 10, 10, 10]
        tasks = [_task(Domain.integers(0, n - 1),
                       pfsm=_pfsm(spec=Predicate(lambda x: 0 <= x <= 5,
                                                 "opaque")))
                 for n in sizes]
        chunks = dist.chunk_tasks(tasks, list(range(len(tasks))), 2)
        costs = [sum(sizes[i] for i in chunk) for chunk in chunks]
        # The huge task must not drag the small ones into its chunk.
        assert min(costs) == sum(sizes) - 1000

    def test_interval_tasks_are_cheap_regardless_of_cardinality(self):
        from repro.core import Predicate

        # A closed-form (interval-answerable) scan over a huge range
        # costs O(limit); an opaque scan over a tiny range costs O(n).
        huge = _task(Domain.integers(0, 10**6 - 1))
        small_opaque = _task(
            Domain.integers(0, 99),
            pfsm=_pfsm(spec=Predicate(lambda x: x > 0, "opaque")))
        assert dist._task_cost(huge) < dist._task_cost(small_opaque)

    def test_never_more_chunks_than_tasks(self):
        tasks = [_task(Domain.integers(0, 3))] * 2
        assert len(dist.chunk_tasks(tasks, [0, 1], 8)) <= 2


class TestRunTasks:
    def test_process_backend_matches_inline(self):
        tasks = [_task(Domain.integers(-5, 20)),
                 _task(Domain.integers(0, 40), limit=3)]
        from repro.core.sweep import _scan_task
        expected = [_scan_task(t) for t in tasks]
        got = dist.run_tasks(tasks, 2, backend="process")
        assert _witnesses(got) == _witnesses(expected)

    def test_queue_backend_drains_through_claim(self):
        queue = InProcessQueue()
        tasks = [_task(Domain.integers(-5, 20))]
        got = dist.run_tasks(tasks, 2, backend="queue", queue=queue)
        assert _witnesses(got)[0]  # hidden witnesses found
        assert queue.claim() is None  # fully drained

    def test_memo_serves_repeat_keys_without_rescanning(self):
        tasks = [_task(Domain.integers(-5, 20))]
        keys = ["stable-key"]
        first = dist.run_tasks(tasks, 2, backend="process", keys=keys)
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            second = dist.run_tasks(tasks, 2, backend="process", keys=keys)
            counters = registry.counters()
        finally:
            registry.disable()
            registry.reset()
        assert _witnesses(second) == _witnesses(first)
        assert counters.get("dist.memo.hits") == 1
        assert "dist.chunks" not in counters

    def test_unpicklable_task_runs_inline(self):
        from repro.core import Predicate
        opaque = _pfsm(spec=Predicate(lambda x: 0 <= x <= 5, "opaque"))
        tasks = [_task(Domain.integers(-5, 20), pfsm=opaque)]
        from repro.core.sweep import _scan_task
        expected = [_scan_task(t) for t in tasks]
        got = dist.run_tasks(tasks, 2, backend="process")
        assert _witnesses(got) == _witnesses(expected)

    def test_worker_crash_falls_back_inline(self):
        tasks = [_task(Domain.integers(-5, 20), pfsm=_pfsm(spec=crashy))]
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            got = dist.run_tasks(tasks, 2, backend="process")
            counters = registry.counters()
        finally:
            registry.disable()
            registry.reset()
        # Hidden path: spec rejects (outside 0..5), impl accepts (<=10).
        assert got[0] is not None
        assert counters.get("dist.chunk.retries", 0) >= 1
        assert counters.get("dist.chunk.inline_fallback", 0) >= 1


class TestInProcessQueue:
    """The four-method lease contract shared with the cluster fabric:
    claim records the claimant, requeue returns work to the front,
    complete discharges the claim."""

    def test_claim_records_the_claimant(self):
        queue = InProcessQueue()
        queue.put("a")
        queue.put("b")
        assert queue.claim("w1") == "a"
        assert queue.claim("w2") == "b"
        assert queue.claimed() == [("a", "w1"), ("b", "w2")]
        assert queue.claim("w3") is None

    def test_claimant_defaults_to_none_for_legacy_callers(self):
        queue = InProcessQueue()
        queue.put("a")
        assert queue.claim() == "a"
        assert queue.claimed() == [("a", None)]

    def test_requeue_returns_the_item_to_the_front(self):
        queue = InProcessQueue()
        queue.put("a")
        queue.put("b")
        assert queue.claim("dying") == "a"
        assert queue.requeue("a") is True  # claim existed
        assert queue.claimed() == []
        # Reclaimed work is re-issued before fresh work.
        assert queue.claim("other") == "a"
        assert queue.claim("other") == "b"

    def test_requeue_without_claim_still_enqueues(self):
        queue = InProcessQueue()
        assert queue.requeue("orphan") is False
        assert queue.claim("w") == "orphan"

    def test_complete_discharges_the_claim(self):
        queue = InProcessQueue()
        queue.put("a")
        queue.claim("w")
        assert queue.complete("a") is True
        assert queue.complete("a") is False  # already discharged
        assert queue.claimed() == []

    def test_unhashable_items_match_by_identity_or_equality(self):
        queue = InProcessQueue()
        chunk = [3, 1, 4]  # chunk index lists are unhashable
        queue.put(chunk)
        assert queue.claim("w") is chunk
        assert queue.complete([3, 1, 4]) is True  # equality match


class TestResultStore:
    def test_round_trip_and_last_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        tasks = [_task(Domain.integers(-5, 20))]
        finding = dist.run_tasks(tasks, 1, backend="process")[0]
        store.record("k", None)
        store.record("k", finding)
        loaded = store.load()
        assert tuple(loaded["k"].witnesses) == tuple(finding.witnesses)

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.record("good", None)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        assert set(store.load()) == {"good"}


class TestDomainDigest:
    def test_range_domains_digest_in_constant_time(self):
        assert domain_digest(Domain.integers(0, 10**9)) is not None

    def test_digest_is_content_based_not_identity_based(self):
        a = Domain([{"x": 1}, {"x": 2}])
        item = {"x": 1}
        b = Domain([item, {"x": 2}])
        assert domain_digest(a) == domain_digest(b)
        tiled_distinct = Domain([{"x": 1}, {"x": 1}])
        tiled_shared = Domain([item, item])
        assert domain_digest(tiled_distinct) == domain_digest(tiled_shared)

    def test_different_contents_differ(self):
        assert domain_digest(Domain.of(1, 2)) != domain_digest(Domain.of(1, 3))

    def test_undigestable_contents_yield_none(self):
        assert domain_digest(Domain([object()])) is None


class TestResume:
    def test_resume_skips_known_tasks_and_matches(self, tmp_path):
        store_path = str(tmp_path / "resume.jsonl")
        models = {"sendmail": sendmail_model.build_model()}
        domains = {"sendmail": sendmail_model.pfsm_domains()}
        baseline = sweep_models(models, domains, limit=4)

        first = sweep_models(models, domains, limit=4,
                             resume_from=store_path)
        recorded = sum(1 for line in open(store_path) if line.strip())
        assert recorded > 0

        dist.reset()  # reuse must come from the store, not the memo
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            second = sweep_models(models, domains, limit=4,
                                  resume_from=store_path)
            counters = registry.counters()
        finally:
            registry.disable()
            registry.reset()
        assert counters.get("dist.resume.skips") == recorded

        def flat(sweeps):
            return [(f.pfsm_name, tuple(f.witnesses))
                    for s in sweeps for f in s.findings]

        assert flat(first) == flat(baseline)
        assert flat(second) == flat(baseline)
        # No duplicate records were appended by the resumed run.
        assert sum(1 for line in open(store_path) if line.strip()) == recorded

    def test_task_key_is_stable_across_rebuilds(self):
        model_a = sendmail_model.build_model()
        model_b = sendmail_model.build_model()
        domains = sendmail_model.pfsm_domains()
        op = model_a.operations[0]
        pfsm = op.pfsms[0]
        task = (model_a.name, op.name, pfsm, domains[pfsm.name], 5)
        key_a = task_key(model_a, task)
        op_b = model_b.operations[0]
        task_b = (model_b.name, op_b.name, op_b.pfsms[0],
                  sendmail_model.pfsm_domains()[pfsm.name], 5)
        key_b = task_key(model_b, task_b)
        assert key_a is not None and key_a == key_b

    def test_limit_changes_the_key(self):
        model = sendmail_model.build_model()
        domains = sendmail_model.pfsm_domains()
        op = model.operations[0]
        pfsm = op.pfsms[0]
        base = (model.name, op.name, pfsm, domains[pfsm.name], 5)
        other = (model.name, op.name, pfsm, domains[pfsm.name], 6)
        assert task_key(model, base) != task_key(model, other)


class TestTruncatedStore:
    """A crash mid-append leaves a partial trailing line; the store must
    skip it on load and heal it on the next append (satellite: truncated
    stores must not poison resume)."""

    def _truncate_tail(self, path, fragment='{"key": "partial", "findi'):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(fragment)  # no trailing newline: torn write

    def test_truncated_tail_is_skipped_on_load(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.record("good", None)
        self._truncate_tail(path)
        assert set(store.load()) == {"good"}

    def test_truncation_counted_distinct_from_malformed(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.record("good", None)
        self._truncate_tail(path)
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            store.load()
            counters = registry.counters()
        finally:
            registry.disable()
            registry.reset()
        assert counters.get("dist.store.truncated") == 1
        assert "dist.store.malformed" not in counters

    def test_append_after_truncation_heals_the_file(self, tmp_path):
        # Without healing, the next append glues onto the partial line
        # and a *valid* record is silently swallowed.
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.record("good", None)
        self._truncate_tail(path)
        store.record("next", None)
        loaded = store.load()
        assert set(loaded) == {"good", "next"}

    def test_record_many_heals_too(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        self._truncate_tail(path, '{"key": "torn"')
        assert store.record_many([("a", None), ("b", None)]) == 2
        assert set(store.load()) == {"a", "b"}

    def test_heal_emits_repair_event(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.record("good", None)
        self._truncate_tail(path)
        sink = obs.MemorySink()
        registry = obs.get_registry()
        registry.reset()
        registry.enable(sink)
        try:
            store.record("next", None)
        finally:
            registry.disable()
            registry.reset()
        repaired = [e for e in sink.events
                    if e["name"] == "dist.store.truncated"]
        assert repaired and repaired[0]["attrs"]["action"] == "repaired"

    def test_clean_appends_add_no_blank_lines(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.record("a", None)
        store.record("b", None)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2 and all(lines)

    def test_empty_and_missing_files_are_not_truncated(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        assert store.load() == {}  # missing file
        open(path, "w").close()
        assert store.load() == {}  # empty file
        store.record("a", None)
        assert set(store.load()) == {"a"}


class TestMemoHooks:
    """The public warm-tier hooks the serve cache layers on."""

    def test_lookup_miss_then_store_then_hit(self):
        assert dist.memo_lookup("k") == (False, None)
        dist.memo_store("k", None)
        assert dist.memo_lookup("k") == (True, None)

    def test_none_finding_distinguished_from_miss(self):
        dist.memo_store("clean", None)
        hit, finding = dist.memo_lookup("clean")
        assert hit is True and finding is None

    def test_scheduler_reuses_externally_stored_results(self):
        tasks = [_task(Domain.integers(-5, 20))]
        expected = dist.run_tasks(tasks, 1, backend="process",
                                  keys=["hook-key"])
        dist.clear_memo()
        dist.memo_store("hook-key", expected[0])
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            got = dist.run_tasks(tasks, 1, backend="process",
                                 keys=["hook-key"])
            counters = registry.counters()
        finally:
            registry.disable()
            registry.reset()
        assert _witnesses(got) == _witnesses(expected)
        assert counters.get("dist.memo.hits") == 1

    def test_prewarm_creates_the_pool_once(self):
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            dist.prewarm(2)
            dist.prewarm(2)  # same width: reused, not recreated
            counters = registry.counters()
        finally:
            registry.disable()
            registry.reset()
        assert counters.get("dist.pool.created") == 1
        assert counters.get("dist.pool.reused") == 1


class TestConcurrentSweeps:
    """Thread-safety of the shared warm tiers (satellite: concurrent
    sweeps over one process's pool and memo)."""

    def test_concurrent_pool_acquisition_builds_one_pool(self):
        import threading

        pools = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            pools.append(dist._get_pool(2))

        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            threads = [threading.Thread(target=grab) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            counters = registry.counters()
        finally:
            registry.disable()
            registry.reset()
        assert len(set(id(p) for p in pools)) == 1
        assert counters.get("dist.pool.created") == 1

    def test_concurrent_sweep_models_share_pool_and_agree(self):
        import threading

        from repro.models import sendmail_model

        models = {"sendmail": sendmail_model.build_model()}
        domains = {"sendmail": sendmail_model.pfsm_domains()}
        baseline = sweep_models(models, domains, limit=3, mode="process",
                                workers=2)

        def flat(sweeps):
            return [(f.pfsm_name, tuple(f.witnesses))
                    for s in sweeps for f in s.findings]

        expected = flat(baseline)
        results = {}
        barrier = threading.Barrier(4)

        def run(slot):
            barrier.wait()
            results[slot] = flat(sweep_models(
                models, domains, limit=3, mode="process", workers=2))

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        for slot in results:
            assert results[slot] == expected

    def test_memo_race_hammering_stays_consistent(self):
        import threading

        finding = dist.run_tasks(
            [_task(Domain.integers(-5, 20))], 1, backend="process")[0]
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                dist.memo_store(f"key-{i % 50}", finding if i % 2 else None)
                i += 1

        def reader():
            while not stop.is_set():
                for i in range(50):
                    hit, got = dist.memo_lookup(f"key-{i}")
                    if hit and got is not None:
                        try:
                            assert tuple(got.witnesses) == \
                                tuple(finding.witnesses)
                        except AssertionError as exc:  # pragma: no cover
                            errors.append(exc)

        def clearer():
            while not stop.is_set():
                dist.clear_memo()

        threads = ([threading.Thread(target=writer) for _ in range(2)]
                   + [threading.Thread(target=reader) for _ in range(2)]
                   + [threading.Thread(target=clearer)])
        for t in threads:
            t.start()
        import time
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors


class TestSharedDomainShipping:
    """Zero-copy column transfer: one export per domain, counters, and
    bit-equal results with sharing on or off."""

    @staticmethod
    def _big_domain(n=4000):
        return Domain([{"size": i % 97, "name": "x" * (i % 7)}
                       for i in range(n)])

    @staticmethod
    def _record_pfsm():
        from repro.core import attr, length_le, satisfies_all, truthy

        return PrimitiveFSM(
            "p", "scan", "x",
            spec_accepts=satisfies_all(attr("size", in_range(0, 40)),
                                       attr("name", length_le(3))),
            impl_accepts=attr("size", less_equal(90)))

    def test_process_backend_ships_columns_and_matches_inline(self):
        from repro.core import columnar

        if not columnar.shm_supported():
            pytest.skip("no shared memory on this platform")
        domain = self._big_domain()
        tasks = [_task(domain, pfsm=self._record_pfsm(), limit=7),
                 _task(domain, pfsm=self._record_pfsm(), limit=3)]
        previous = dist.set_shm_enabled(False)
        try:
            baseline = _witnesses(dist.run_tasks(tasks, 2,
                                                 backend="process"))
        finally:
            dist.set_shm_enabled(previous)
        sink = obs.MemorySink()
        registry = obs.get_registry()
        registry.reset()
        registry.enable(sink)
        try:
            shared = _witnesses(dist.run_tasks(tasks, 2,
                                               backend="process"))
            counters = registry.counters()
        finally:
            registry.disable()
            registry.clear_sinks()
            registry.reset()
        assert shared == baseline
        assert counters.get("dist.shm.segments") == 1
        assert counters.get("dist.shm.tasks") == 2
        assert counters.get("dist.shm.bytes_saved", 0) > 0
        # ≥10x: each shipped task payload shrinks by an order of
        # magnitude against the pickled original.
        original = len(dist._serialize_task(tasks[0]))
        saved_per_task = counters["dist.shm.bytes_saved"] // 2
        substituted = original - saved_per_task
        assert original >= 10 * substituted

    def test_shm_disabled_leaves_counters_silent(self):
        domain = self._big_domain(1000)
        tasks = [_task(domain, pfsm=self._record_pfsm(), limit=5)]
        previous = dist.set_shm_enabled(False)
        sink = obs.MemorySink()
        registry = obs.get_registry()
        registry.reset()
        registry.enable(sink)
        try:
            results = dist.run_tasks(tasks, 2, backend="process")
            counters = registry.counters()
        finally:
            registry.disable()
            registry.clear_sinks()
            registry.reset()
            dist.set_shm_enabled(previous)
        assert results[0] is not None
        assert not any(k.startswith("dist.shm.") for k in counters)

    def test_small_domains_are_not_exported(self):
        domain = Domain([{"size": 50 + i, "name": "y"} for i in range(10)])
        tasks = [_task(domain, pfsm=self._record_pfsm(), limit=5)]
        sink = obs.MemorySink()
        registry = obs.get_registry()
        registry.reset()
        registry.enable(sink)
        try:
            results = dist.run_tasks(tasks, 2, backend="process")
            counters = registry.counters()
        finally:
            registry.disable()
            registry.clear_sinks()
            registry.reset()
        assert results[0] is not None
        assert "dist.shm.segments" not in counters
