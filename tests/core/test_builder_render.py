"""Builder and renderer tests."""

import pytest

from repro.core import (
    DIAMOND,
    Label,
    ModelBuilder,
    PfsmType,
    StateKind,
    Transition,
    TransitionKind,
    in_range,
    less_equal,
    render_model,
    render_operation,
    render_pfsm,
    to_dot,
)
from repro.core import Predicate


def _build():
    return (
        ModelBuilder("demo", bugtraq_ids=[1], final_consequence="boom")
        .operation("op1", obj="index")
        .pfsm("pFSM1", activity="check", object_name="x",
              spec=in_range(0, 100), impl=less_equal(100),
              action="tTvect[x]=i", check_type=PfsmType.CONTENT_ATTRIBUTE)
        .gate("corrupted", carry=lambda r: {"ok": r.final_object >= 0})
        .operation("op2", obj="pointer")
        .pfsm("pFSM2", activity="dispatch", object_name="ptr",
              spec=Predicate(lambda s: s["ok"], "intact"), impl=None,
              check_type=PfsmType.REFERENCE_CONSISTENCY)
        .build()
    )


class TestBuilder:
    def test_builds_working_model(self):
        model = _build()
        assert model.pfsm_count == 2
        assert model.is_compromised_by(-5)
        assert not model.is_compromised_by(50)

    def test_metadata_carried(self):
        model = _build()
        assert model.bugtraq_ids == (1,)
        assert model.final_consequence == "boom"

    def test_pfsm_before_operation_rejected(self):
        with pytest.raises(ValueError):
            ModelBuilder("m").pfsm("p", "a", "o", spec=in_range(0, 1))

    def test_empty_operation_rejected(self):
        with pytest.raises(ValueError):
            ModelBuilder("m").operation("op").build()

    def test_gate_before_operation_rejected(self):
        builder = ModelBuilder("m")
        with pytest.raises(ValueError):
            builder.gate("g")

    def test_default_gate_carry(self):
        model = (
            ModelBuilder("m")
            .operation("op1").pfsm("p1", "a", "o", spec=in_range(0, 100),
                                   impl=less_equal(100))
            .gate("pass")
            .operation("op2").pfsm("p2", "a", "o", spec=in_range(0, 100),
                                   impl=less_equal(100))
            .build()
        )
        assert model.run(-1).hidden_path_count == 2  # object passed through


class TestTransitions:
    def test_label_render(self):
        assert Label("x > 100", "reject").render() == f"x > 100 {DIAMOND} reject"

    def test_empty_sides_render_dash(self):
        assert Label().render() == f"- {DIAMOND} -"

    def test_kind_geometry(self):
        assert TransitionKind.SPEC_ACPT.source is StateKind.SPEC_CHECK
        assert TransitionKind.SPEC_ACPT.target is StateKind.ACCEPT
        assert TransitionKind.IMPL_ACPT.source is StateKind.REJECT
        assert TransitionKind.IMPL_ACPT.target is StateKind.ACCEPT
        assert TransitionKind.IMPL_REJ.target is StateKind.REJECT

    def test_hidden_flag(self):
        assert TransitionKind.IMPL_ACPT.is_hidden
        assert not TransitionKind.IMPL_REJ.is_hidden

    def test_transition_render_markers(self):
        missing = Transition(TransitionKind.IMPL_REJ, Label(), exists=False)
        assert "?" in missing.render()
        hidden = Transition(TransitionKind.IMPL_ACPT, Label())
        assert "hidden" in hidden.render()


class TestAsciiRender:
    def test_pfsm_render(self):
        model = _build()
        text = render_pfsm(model.operations[0].pfsms[0])
        assert "pFSM1" in text
        assert "SPEC_ACPT" in text
        assert "Content and Attribute Check" in text

    def test_missing_check_marked(self):
        model = _build()
        text = render_pfsm(model.operations[1].pfsms[0])
        assert "missing" in text

    def test_operation_render(self):
        model = _build()
        text = render_operation(model.operations[0])
        assert "op1" in text and "pFSM1" in text

    def test_model_render(self):
        text = render_model(_build())
        assert "#1" in text
        assert "propagation gate: corrupted" in text
        assert "boom" in text


class TestDotRender:
    def test_valid_digraph(self):
        dot = to_dot(_build())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_hidden_edges_dashed_red(self):
        dot = to_dot(_build())
        assert "style=dashed, color=red" in dot

    def test_missing_impl_rej_grey(self):
        dot = to_dot(_build())
        assert "? (missing)" in dot

    def test_gate_triangle(self):
        dot = to_dot(_build())
        assert "shape=triangle" in dot

    def test_terminal_box(self):
        dot = to_dot(_build())
        assert "boom" in dot


class TestDescribeMethods:
    def test_model_describe_lists_gates_and_consequence(self):
        model = _build()
        text = model.describe()
        assert "gate: corrupted" in text
        assert "consequence: boom" in text

    def test_operation_describe(self):
        model = _build()
        text = model.operations[0].describe()
        assert "op1" in text and "pFSM1" in text

    def test_trace_markers_cover_all_event_kinds(self):
        from repro.core import EventKind

        model = _build()
        texts = [
            model.run(-5).trace.to_text(),    # success path markers
            model.run(500).trace.to_text(),   # foiled path markers
        ]
        combined = "\n".join(texts)
        for kind in (EventKind.OPERATION_START, EventKind.PFSM_STEP,
                     EventKind.OPERATION_COMPLETE, EventKind.GATE_CROSSED,
                     EventKind.EXPLOIT_SUCCEEDED, EventKind.OPERATION_FOILED,
                     EventKind.EXPLOIT_FOILED):
            assert kind.value in combined
