"""Property-based tests over the pFSM core (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Domain,
    Operation,
    Predicate,
    PrimitiveFSM,
    check_lemma_part1,
    in_range,
)

# Strategy: interval predicates over small integers.
intervals = st.tuples(
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=-20, max_value=20),
).map(lambda pair: (min(pair), max(pair)))

values = st.integers(min_value=-30, max_value=30)


def _pfsm(spec_interval, impl_interval):
    spec = in_range(*spec_interval)
    impl = in_range(*impl_interval) if impl_interval is not None else None
    return PrimitiveFSM("p", "activity", "x", spec_accepts=spec,
                        impl_accepts=impl)


class TestPfsmProperties:
    @given(intervals, intervals, values)
    def test_hidden_iff_spec_rejects_and_impl_accepts(self, spec, impl, x):
        pfsm = _pfsm(spec, impl)
        expected = (not (spec[0] <= x <= spec[1])) and (impl[0] <= x <= impl[1])
        assert pfsm.takes_hidden_path(x) == expected

    @given(intervals, intervals, values)
    def test_step_accept_matches_predicates(self, spec, impl, x):
        pfsm = _pfsm(spec, impl)
        outcome = pfsm.step(x)
        spec_ok = spec[0] <= x <= spec[1]
        impl_ok = impl[0] <= x <= impl[1]
        assert outcome.accepted == (spec_ok or impl_ok)

    @given(intervals, intervals)
    def test_secured_pfsm_never_hidden(self, spec, impl):
        pfsm = _pfsm(spec, impl).secured()
        assert pfsm.is_secure(range(-30, 31))

    @given(intervals, values)
    def test_no_check_hidden_iff_spec_rejects(self, spec, x):
        pfsm = _pfsm(spec, None)
        assert pfsm.takes_hidden_path(x) == (not (spec[0] <= x <= spec[1]))

    @given(intervals, intervals, values)
    def test_impl_subset_of_spec_means_secure(self, spec, impl, x):
        # If the implementation accepts only a subset of the spec, no
        # hidden path exists (over-rejection is fail-secure).
        lo = max(spec[0], impl[0])
        hi = min(spec[1], impl[1])
        if lo > hi:
            narrowed = None  # empty implementation: rejects everything
            pfsm = PrimitiveFSM(
                "p", "a", "x", spec_accepts=in_range(*spec),
                impl_accepts=Predicate(lambda _x: False, "never"),
            )
        else:
            pfsm = _pfsm(spec, (lo, hi))
        assert not pfsm.takes_hidden_path(x)

    @given(intervals, intervals, values)
    def test_exactly_one_terminal_state(self, spec, impl, x):
        outcome = _pfsm(spec, impl).step(x)
        assert outcome.accepted != outcome.foiled


class TestOperationProperties:
    @given(st.lists(st.tuples(intervals, intervals), min_size=1, max_size=4),
           values)
    @settings(max_examples=60)
    def test_foiled_at_first_rejecting_pfsm(self, shapes, x):
        pfsms = [
            PrimitiveFSM(f"p{i}", "a", "x",
                         spec_accepts=in_range(*spec),
                         impl_accepts=in_range(*impl))
            for i, (spec, impl) in enumerate(shapes)
        ]
        operation = Operation("op", "obj", pfsms)
        result = operation.run(x)
        if result.completed:
            assert all(o.accepted for o in result.outcomes)
            assert len(result.outcomes) == len(pfsms)
        else:
            assert result.outcomes[-1].foiled
            assert all(o.accepted for o in result.outcomes[:-1])

    @given(st.lists(st.tuples(intervals, intervals), min_size=1, max_size=3))
    @settings(max_examples=40)
    def test_lemma_part1_universal(self, shapes):
        pfsms = [
            PrimitiveFSM(f"p{i}", "a", "x",
                         spec_accepts=in_range(*spec),
                         impl_accepts=in_range(*impl))
            for i, (spec, impl) in enumerate(shapes)
        ]
        operation = Operation("op", "obj", pfsms)
        assert check_lemma_part1(operation, Domain.integers(-25, 25))

    @given(st.lists(st.tuples(intervals, intervals), min_size=1, max_size=3),
           values)
    @settings(max_examples=40)
    def test_fully_secured_never_exploited(self, shapes, x):
        pfsms = [
            PrimitiveFSM(f"p{i}", "a", "x",
                         spec_accepts=in_range(*spec),
                         impl_accepts=in_range(*impl))
            for i, (spec, impl) in enumerate(shapes)
        ]
        operation = Operation("op", "obj", pfsms).fully_secured()
        assert not operation.run(x).exploited


class TestPredicateProperties:
    @given(intervals, intervals, values)
    def test_de_morgan(self, a, b, x):
        p = in_range(*a)
        q = in_range(*b)
        assert (~(p & q))(x) == ((~p) | (~q))(x)
        assert (~(p | q))(x) == ((~p) & (~q))(x)

    @given(intervals, values)
    def test_double_negation(self, a, x):
        p = in_range(*a)
        assert (~~p)(x) == p(x)

    @given(intervals, intervals, values)
    def test_conjunction_commutative(self, a, b, x):
        p, q = in_range(*a), in_range(*b)
        assert (p & q)(x) == (q & p)(x)
