"""Tests for the three additional named vulnerabilities: FreeBSD #5493,
rsync #3958 (completing Table 1 with executables), wu-ftpd #1387."""

import pytest

from repro.apps import (
    FreebsdKernel,
    FreebsdVariant,
    MAX_REQUEST,
    RsyncDaemon,
    RsyncVariant,
    TABLE_SIZE,
    WuFtpd,
    WuFtpdVariant,
    craft_cred_overwrite,
    craft_negative_opcode,
    craft_site_exec_exploit,
)


class TestFreebsdBenign:
    @pytest.mark.parametrize("variant", list(FreebsdVariant))
    def test_valid_request_staged(self, variant):
        kernel = FreebsdKernel(variant)
        result = kernel.copy_request(b"hello", 5)
        assert result.accepted
        assert kernel.space.read(kernel.buffer.start, 5) == b"hello"
        assert kernel.cred_intact()

    @pytest.mark.parametrize("variant", list(FreebsdVariant))
    def test_oversized_rejected(self, variant):
        kernel = FreebsdKernel(variant)
        assert not kernel.copy_request(b"x" * 100, MAX_REQUEST + 1).accepted

    def test_boundary_length_accepted(self):
        kernel = FreebsdKernel()
        assert kernel.copy_request(b"x" * MAX_REQUEST, MAX_REQUEST).accepted
        assert kernel.cred_intact()


class TestFreebsdExploit:
    def test_negative_length_passes_signed_check(self):
        kernel = FreebsdKernel(FreebsdVariant.VULNERABLE)
        result = kernel.copy_request(craft_cred_overwrite(kernel), -1)
        assert result.accepted
        assert result.bytes_copied > MAX_REQUEST

    def test_privilege_escalation(self):
        kernel = FreebsdKernel(FreebsdVariant.VULNERABLE)
        kernel.copy_request(craft_cred_overwrite(kernel), -1)
        assert kernel.escalated
        assert kernel.getuid() == 0
        assert not kernel.cred_intact()

    def test_patched_rejects_negative(self):
        kernel = FreebsdKernel(FreebsdVariant.PATCHED)
        assert not kernel.copy_request(craft_cred_overwrite(kernel),
                                       -1).accepted
        assert kernel.cred_intact()

    def test_very_negative_length(self):
        kernel = FreebsdKernel(FreebsdVariant.VULNERABLE)
        result = kernel.copy_request(craft_cred_overwrite(kernel), -(2**31))
        assert result.accepted  # signed check passes; unsigned wraps huge
        assert kernel.escalated


class TestRsyncBenign:
    @pytest.mark.parametrize("variant", list(RsyncVariant))
    def test_valid_opcode_dispatches(self, variant):
        daemon = RsyncDaemon(variant)
        result = daemon.dispatch(3)
        assert result.accepted and not result.hijacked
        assert result.handler == daemon.legitimate_handler(3)

    @pytest.mark.parametrize("variant", list(RsyncVariant))
    def test_out_of_range_rejected(self, variant):
        daemon = RsyncDaemon(variant)
        assert not daemon.dispatch(TABLE_SIZE).accepted
        assert not daemon.dispatch(1000).accepted


class TestRsyncExploit:
    def _armed(self, variant):
        daemon = RsyncDaemon(variant)
        mcode = daemon.process.plant_mcode()
        daemon.receive_request(mcode.to_bytes(4, "little") + b"padding")
        return daemon

    def test_negative_opcode_hijacks(self):
        daemon = self._armed(RsyncVariant.VULNERABLE)
        result = daemon.dispatch(craft_negative_opcode(daemon))
        assert result.accepted and result.hijacked
        assert daemon.process.is_mcode(result.handler)

    def test_patched_rejects_negative(self):
        daemon = self._armed(RsyncVariant.PATCHED)
        assert not daemon.dispatch(craft_negative_opcode(daemon)).accepted

    def test_guarded_refuses_unregistered_pointer(self):
        daemon = self._armed(RsyncVariant.GUARDED)
        result = daemon.dispatch(craft_negative_opcode(daemon))
        assert not result.accepted
        assert "consistency" in result.reason

    def test_request_buffer_below_table(self):
        daemon = RsyncDaemon()
        assert daemon.request_buffer < daemon.table
        assert craft_negative_opcode(daemon) < 0

    def test_unplanted_buffer_dispatch_is_not_mcode(self):
        daemon = RsyncDaemon(RsyncVariant.VULNERABLE)
        daemon.receive_request(b"\x00" * 8)
        result = daemon.dispatch(craft_negative_opcode(daemon))
        assert result.accepted and result.hijacked
        assert not daemon.process.is_mcode(result.handler)  # a crash, not Mcode


class TestWuFtpdCommands:
    def test_basic_commands(self):
        ftpd = WuFtpd()
        assert ftpd.handle_command(b"USER anonymous").ok
        assert ftpd.handle_command(b"NOOP").ok
        assert not ftpd.handle_command(b"XYZZY").ok
        assert not ftpd.handle_command(b"SITE CHMOD 777 f").ok

    def test_site_exec_echoes(self):
        ftpd = WuFtpd()
        reply = ftpd.handle_command(b"SITE EXEC hello")
        assert reply.ok and b"hello" in reply.text
        assert reply.returned_to == WuFtpd.RETURN_SITE

    def test_case_insensitive_verbs(self):
        ftpd = WuFtpd()
        assert ftpd.handle_command(b"site exec hi").ok


class TestWuFtpdExploit:
    def test_vulnerable_hijacked(self):
        ftpd = WuFtpd(WuFtpdVariant.VULNERABLE)
        reply = ftpd.handle_command(craft_site_exec_exploit(ftpd))
        assert reply.hijacked
        assert ftpd.process.is_mcode(reply.returned_to)

    def test_leak_without_write(self):
        ftpd = WuFtpd(WuFtpdVariant.VULNERABLE)
        reply = ftpd.handle_command(b"SITE EXEC %x.%x")
        assert reply.ok and not reply.hijacked
        assert b"." in reply.text

    def test_patched_inert(self):
        ftpd = WuFtpd(WuFtpdVariant.PATCHED)
        reply = ftpd.handle_command(craft_site_exec_exploit(ftpd))
        assert not reply.hijacked
        assert reply.returned_to == WuFtpd.RETURN_SITE

    def test_stack_balanced_across_requests(self):
        ftpd = WuFtpd(WuFtpdVariant.PATCHED)
        for _ in range(4):
            ftpd.handle_command(b"SITE EXEC ls")
        assert ftpd.process.stack.frames == []
