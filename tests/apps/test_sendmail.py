"""Sendmail #3163 application-model tests."""

import pytest

from repro.apps import Sendmail, SendmailVariant, craft_got_exploit
from repro.apps.sendmail import TTVECT_SIZE
from repro.memory import ControlFlowHijack


class TestTTflag:
    def test_valid_flag_writes_vector(self):
        app = Sendmail()
        result = app.tTflag("7.42")
        assert result.accepted
        assert app.read_ttvect(7) == 42

    def test_default_level(self):
        app = Sendmail()
        app.tTflag("3")
        assert app.read_ttvect(3) == 1

    def test_wrapping_input_parsed_negative(self):
        app = Sendmail()
        result = app.tTflag(f"{2**32 - 5}.9")
        assert result.x == -5

    def test_vulnerable_accepts_negative_index(self):
        app = Sendmail(SendmailVariant.VULNERABLE)
        assert app.tTflag("-5.9").accepted

    def test_vulnerable_rejects_above_bound(self):
        app = Sendmail(SendmailVariant.VULNERABLE)
        assert not app.tTflag(f"{TTVECT_SIZE + 1}.9").accepted

    def test_patched_rejects_negative(self):
        app = Sendmail(SendmailVariant.PATCHED)
        assert not app.tTflag("-5.9").accepted

    def test_patched_accepts_valid_range(self):
        app = Sendmail(SendmailVariant.PATCHED)
        assert app.tTflag("0.1").accepted
        assert app.tTflag(f"{TTVECT_SIZE}.1").accepted

    def test_level_byte_masked(self):
        app = Sendmail()
        app.tTflag("2.300")
        assert app.read_ttvect(2) == 300 & 0xFF

    def test_read_ttvect_bounds(self):
        app = Sendmail()
        with pytest.raises(IndexError):
            app.read_ttvect(-1)
        with pytest.raises(IndexError):
            app.read_ttvect(TTVECT_SIZE)


class TestExploit:
    def test_exploit_corrupts_got(self):
        app = Sendmail(SendmailVariant.VULNERABLE)
        for flag in craft_got_exploit(app):
            assert app.tTflag(flag).accepted
        assert not app.got_setuid_consistent()

    def test_exploit_hijacks_setuid(self):
        app = Sendmail(SendmailVariant.VULNERABLE)
        for flag in craft_got_exploit(app):
            app.tTflag(flag)
        with pytest.raises(ControlFlowHijack) as exc:
            app.call_setuid()
        assert app.process.is_mcode(exc.value.target)

    def test_wrapped_inputs_equivalent(self):
        app = Sendmail(SendmailVariant.VULNERABLE)
        for flag in craft_got_exploit(app, wrap_inputs=True):
            assert app.tTflag(flag).accepted
        assert not app.got_setuid_consistent()

    def test_patched_forecloses(self):
        app = Sendmail(SendmailVariant.PATCHED)
        for flag in craft_got_exploit(app):
            assert not app.tTflag(flag).accepted
        assert app.got_setuid_consistent()
        assert app.call_setuid() == app.process.function_entry("setuid")

    def test_guarded_variant_refuses_corrupted_call(self):
        app = Sendmail(SendmailVariant.GUARDED)
        for flag in craft_got_exploit(app):
            app.tTflag(flag)  # corruption succeeds (check still wrong)
        assert not app.got_setuid_consistent()
        with pytest.raises(ValueError):
            app.call_setuid()  # but the dispatch check foils it

    def test_clean_setuid_call(self):
        app = Sendmail()
        assert app.call_setuid() == app.process.function_entry("setuid")

    def test_exploit_flags_use_negative_indexes(self):
        app = Sendmail()
        flags = craft_got_exploit(app)
        assert len(flags) == 4
        assert all(flag.startswith("-") for flag in flags)
