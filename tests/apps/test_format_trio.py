"""Tests for the format-string trio executables (icecast #2264, splitvt
#2210; wu-ftpd #1387 is covered in test_freebsd_rsync_wuftpd) and the
Observation 1 claim that the same mechanism lands in three categories
via three distinct consequences."""

import pytest

from repro.apps import (
    Icecast,
    IcecastVariant,
    Splitvt,
    SplitvtVariant,
    WuFtpd,
    WuFtpdVariant,
    craft_expansion_smash,
    craft_handler_overwrite,
    craft_site_exec_exploit,
)


class TestIcecast:
    def test_benign_client_logged(self):
        app = Icecast()
        result = app.print_client(b"client-007 mp3 stream")
        assert not result.hijacked
        assert result.returned_to == Icecast.RETURN_SITE

    def test_expansion_inflates_output(self):
        app = Icecast(IcecastVariant.VULNERABLE)
        result = app.print_client(b"%500x")
        assert result.formatted_length >= 500

    def test_expansion_smash_hijacks(self):
        app = Icecast(IcecastVariant.VULNERABLE)
        result = app.print_client(craft_expansion_smash(app))
        assert result.hijacked
        assert app.process.is_mcode(result.returned_to)

    def test_payload_is_tiny_but_expansion_is_not(self):
        # The distinguishing trait: a few input bytes smash the stack
        # through expansion, not through input length.
        app = Icecast(IcecastVariant.VULNERABLE)
        payload = craft_expansion_smash(app)
        assert len(payload) < 32
        result = app.print_client(payload)
        assert result.formatted_length > 200

    def test_patched_no_expansion(self):
        app = Icecast(IcecastVariant.PATCHED)
        result = app.print_client(craft_expansion_smash(app))
        assert not result.hijacked
        assert result.returned_to == Icecast.RETURN_SITE

    def test_patched_bounds_copy(self):
        app = Icecast(IcecastVariant.PATCHED)
        result = app.print_client(b"A" * 1000)
        assert not result.hijacked


class TestSplitvt:
    def test_benign_title(self):
        app = Splitvt()
        result = app.set_title(b"my session")
        assert not result.wrote_memory
        assert app.handler_consistent(0)

    def test_handler_overwrite(self):
        app = Splitvt(SplitvtVariant.VULNERABLE)
        result = app.set_title(craft_handler_overwrite(app))
        assert result.wrote_memory
        assert not app.handler_consistent(0)

    def test_hijack_fires_on_refresh_not_return(self):
        # The access-validation trait: control is taken at the next
        # dispatch, not at function return.
        app = Splitvt(SplitvtVariant.VULNERABLE)
        title = app.set_title(craft_handler_overwrite(app))
        assert title.wrote_memory  # set_title itself returned normally
        refresh = app.refresh(0)
        assert refresh.hijacked
        assert app.process.is_mcode(refresh.handler)

    def test_other_slots_unaffected(self):
        app = Splitvt(SplitvtVariant.VULNERABLE)
        app.set_title(craft_handler_overwrite(app, slot=0))
        result = app.refresh(1)
        assert result.dispatched and not result.hijacked

    def test_patched_inert(self):
        app = Splitvt(SplitvtVariant.PATCHED)
        app.set_title(craft_handler_overwrite(app))
        assert app.handler_consistent(0)
        assert not app.refresh(0).hijacked

    def test_guarded_refuses_corrupted_dispatch(self):
        app = Splitvt(SplitvtVariant.GUARDED)
        app.set_title(craft_handler_overwrite(app))
        result = app.refresh(0)
        assert not result.dispatched
        assert "verification" in result.reason


class TestTrioConsequences:
    """One mechanism (user input as format), three distinct observable
    consequences — matching the trio's three Bugtraq categories."""

    def test_wuftpd_input_validation_consequence(self):
        # #1387 (Input Validation anchor): the malicious *input* rewrites
        # the return address through %n.
        app = WuFtpd(WuFtpdVariant.VULNERABLE)
        reply = app.handle_command(craft_site_exec_exploit(app))
        assert reply.hijacked

    def test_icecast_boundary_consequence(self):
        # #2264 (Boundary Condition anchor): directive *expansion*
        # overflows a fixed buffer.
        app = Icecast(IcecastVariant.VULNERABLE)
        result = app.print_client(craft_expansion_smash(app))
        assert result.hijacked
        assert result.formatted_length > 256  # the boundary violation

    def test_splitvt_access_validation_consequence(self):
        # #2210 (Access Validation anchor): a write lands on an object
        # (the handler pointer) outside the user's access domain.
        app = Splitvt(SplitvtVariant.VULNERABLE)
        app.set_title(craft_handler_overwrite(app))
        assert not app.handler_consistent(0)

    def test_three_distinct_fix_sites(self):
        # Each consequence has its own natural fix location.
        ftpd = WuFtpd(WuFtpdVariant.PATCHED)
        assert not ftpd.handle_command(
            craft_site_exec_exploit(ftpd)).hijacked
        ice = Icecast(IcecastVariant.PATCHED)
        assert not ice.print_client(craft_expansion_smash(ice)).hijacked
        svt = Splitvt(SplitvtVariant.GUARDED)
        svt.set_title(craft_handler_overwrite(svt))
        assert not svt.refresh(0).dispatched
