"""NULL HTTPD application-model tests: #5774, #6255, and the fixes."""

import pytest

from repro.apps import (
    NullHttpd,
    NullHttpdVariant,
    RECV_CHUNK,
    craft_unlink_body,
)
from repro.memory import ControlFlowHijack, HeapCorruptionDetected
from repro.osmodel import SimulatedSocket


class TestBenignRequests:
    @pytest.mark.parametrize("variant", list(NullHttpdVariant))
    def test_wellformed_post_accepted(self, variant):
        app = NullHttpd(variant)
        outcome = app.handle_post(300, b"f" * 300)
        assert outcome.accepted
        assert not outcome.overflowed
        assert outcome.bytes_copied == 300

    @pytest.mark.parametrize("variant", list(NullHttpdVariant))
    def test_body_lands_in_buffer(self, variant):
        app = NullHttpd(variant)
        outcome = app.handle_post(10, b"payload=ok")
        data = app.process.space.read(outcome.post_data_address, 10)
        assert data == b"payload=ok"

    def test_multi_chunk_read(self):
        app = NullHttpd(NullHttpdVariant.FIXED)
        body = b"x" * (RECV_CHUNK * 2 + 100)
        outcome = app.handle_post(len(body), body)
        assert outcome.bytes_copied == len(body)
        assert not outcome.overflowed

    def test_recv_error_aborts(self):
        app = NullHttpd(NullHttpdVariant.V0_5)
        socket = SimulatedSocket(b"x" * 100, error_after=0)
        outcome = app.read_post_data(socket, 100)
        assert not outcome.accepted
        assert outcome.reason == "recv error"


class TestKnown5774:
    def test_negative_contentlen_shrinks_buffer(self):
        app = NullHttpd(NullHttpdVariant.V0_5)
        outcome = app.handle_post(-800, b"y" * 100)
        assert outcome.buffer_size == 224

    def test_v05_overflow(self):
        app = NullHttpd(NullHttpdVariant.V0_5)
        outcome = app.handle_post(-800, b"y" * 1024)
        assert outcome.overflowed

    def test_v051_blocks_negative_contentlen(self):
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        outcome = app.handle_post(-800, b"y" * 1024)
        assert not outcome.accepted
        assert outcome.reason == "bad Content-Length"

    def test_fixed_blocks_negative_contentlen(self):
        app = NullHttpd(NullHttpdVariant.FIXED)
        assert not app.handle_post(-800, b"y" * 1024).accepted

    def test_unlink_exploit_corrupts_got(self):
        app = NullHttpd(NullHttpdVariant.V0_5)
        body = craft_unlink_body(app, content_len=-800)
        outcome = app.handle_post(-800, body)
        assert outcome.overflowed
        assert not app.heap_links_consistent()
        app.free_post_data()
        assert not app.got_free_consistent()
        assert app.process.got.current_target("free") == app.process.mcode_address

    def test_unlink_exploit_hijacks_free(self):
        app = NullHttpd(NullHttpdVariant.V0_5)
        app.handle_post(-800, craft_unlink_body(app, content_len=-800))
        app.free_post_data()
        with pytest.raises(ControlFlowHijack) as exc:
            app.call_free()
        assert app.process.is_mcode(exc.value.target)


class TestDiscovered6255:
    def test_v051_overflows_with_correct_contentlen(self):
        # The paper's discovery: 0.5.1 still copies past the buffer.
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        body = craft_unlink_body(app, content_len=100)
        outcome = app.handle_post(100, body)
        assert outcome.accepted
        assert outcome.overflowed
        assert outcome.bytes_copied > outcome.buffer_size

    def test_or_loop_reads_past_contentlen(self):
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        body = b"z" * (RECV_CHUNK * 3)
        outcome = app.handle_post(10, body)
        assert outcome.bytes_copied == len(body)  # the || keeps reading

    def test_and_loop_stops_at_chunk_boundary(self):
        app = NullHttpd(NullHttpdVariant.FIXED)
        body = b"z" * (RECV_CHUNK * 3)
        outcome = app.handle_post(10, body)
        assert outcome.bytes_copied == RECV_CHUNK  # first chunk satisfies x >= len
        assert not outcome.overflowed

    def test_6255_full_chain(self):
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        app.handle_post(100, craft_unlink_body(app, content_len=100))
        app.free_post_data()
        with pytest.raises(ControlFlowHijack):
            app.call_free()

    def test_fixed_forecloses_6255(self):
        app = NullHttpd(NullHttpdVariant.FIXED)
        outcome = app.handle_post(100, craft_unlink_body(app, content_len=100))
        assert not outcome.overflowed
        assert app.heap_links_consistent()
        app.free_post_data()
        assert app.got_free_consistent()


class TestDefenses:
    def test_safe_unlink_detects_5774(self):
        app = NullHttpd(NullHttpdVariant.V0_5, check_unlink=True)
        app.handle_post(-800, craft_unlink_body(app, content_len=-800))
        with pytest.raises(HeapCorruptionDetected):
            app.free_post_data()

    def test_safe_unlink_detects_6255(self):
        app = NullHttpd(NullHttpdVariant.V0_5_1, check_unlink=True)
        app.handle_post(100, craft_unlink_body(app, content_len=100))
        with pytest.raises(HeapCorruptionDetected):
            app.free_post_data()

    def test_got_consistency_check_refuses_call(self):
        app = NullHttpd(NullHttpdVariant.V0_5)
        app.handle_post(-800, craft_unlink_body(app, content_len=-800))
        app.free_post_data()
        with pytest.raises(ValueError, match="refused"):
            app.call_free(check_consistency=True)

    def test_safe_unlink_transparent_for_benign(self):
        app = NullHttpd(NullHttpdVariant.FIXED, check_unlink=True)
        app.handle_post(300, b"f" * 300)
        app.free_post_data()  # must not raise


class TestApiEdges:
    def test_free_without_allocation(self):
        app = NullHttpd()
        with pytest.raises(RuntimeError):
            app.free_post_data()

    def test_clean_free_call(self):
        app = NullHttpd()
        assert app.call_free() == app.process.function_entry("free")

    def test_oversized_contentlen_rejected_by_051(self):
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        assert not app.handle_post(NullHttpd.MAX_CONTENT_LEN + 1, b"").accepted
