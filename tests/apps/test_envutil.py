"""Environment-error case study tests: PATH hijack against a setuid
utility, plus the osmodel environment substrate."""

import pytest

from repro.apps import (
    EnvUtilVariant,
    SetuidUtility,
    make_env_world,
    plant_trojan,
)
from repro.core import check_lemma_part1, check_lemma_part2, minimal_foil_points
from repro.models import envutil_model
from repro.osmodel import Environment, ROOT, TRUSTED_PATH, User, resolve_command


@pytest.fixture
def world():
    return make_env_world()


@pytest.fixture
def hostile_env(world):
    plant_trojan(world)
    env = Environment.default()
    env.set("PATH", "/tmp/evil:/bin:/usr/bin")
    return env


class TestEnvironment:
    def test_default_path(self):
        env = Environment.default()
        assert env.path_entries() == ["/bin", "/usr/bin"]
        assert env.path_is_trusted()

    def test_hostile_path_not_trusted(self, hostile_env):
        assert not hostile_env.path_is_trusted()

    def test_sanitized_copy(self, hostile_env):
        clean = hostile_env.with_sanitized_path()
        assert clean.path_is_trusted()
        assert not hostile_env.path_is_trusted()  # original untouched

    def test_get_with_fallback(self):
        assert Environment().get("NOPE", "fallback") == "fallback"


class TestResolution:
    def test_resolves_system_binary(self, world):
        env = Environment.default()
        assert resolve_command(world.fs, env, "date", ROOT) == "/bin/date"

    def test_path_order_decides(self, world, hostile_env):
        assert resolve_command(world.fs, hostile_env, "date", ROOT) == \
            "/tmp/evil/date"

    def test_absolute_name_bypasses_path(self, world, hostile_env):
        assert resolve_command(world.fs, hostile_env, "/bin/date", ROOT) == \
            "/bin/date"

    def test_missing_command(self, world):
        assert resolve_command(world.fs, Environment.default(), "nosuch",
                               ROOT) is None

    def test_non_executable_skipped(self, world):
        world.fs.create_file("/bin/plainfile", ROOT, 0o644)
        assert resolve_command(world.fs, Environment.default(),
                               "plainfile", ROOT) is None

    def test_directory_not_resolved(self, world):
        world.fs.mkdirs("/bin/datefolder", ROOT)
        assert resolve_command(world.fs, Environment.default(),
                               "datefolder", ROOT) is None


class TestSetuidUtility:
    def test_vulnerable_runs_trojan_as_root(self, world, hostile_env):
        record = SetuidUtility(world, EnvUtilVariant.VULNERABLE).run_report(
            hostile_env
        )
        assert record.executed
        assert record.binary == "/tmp/evil/date"
        assert record.ran_untrusted_as_root

    def test_patched_sanitizes(self, world, hostile_env):
        record = SetuidUtility(world, EnvUtilVariant.PATCHED).run_report(
            hostile_env
        )
        assert record.binary == "/bin/date"
        assert not record.ran_untrusted_as_root

    def test_guarded_refuses(self, world, hostile_env):
        record = SetuidUtility(world, EnvUtilVariant.GUARDED).run_report(
            hostile_env
        )
        assert not record.executed
        assert "trusted" in record.reason

    @pytest.mark.parametrize("variant", list(EnvUtilVariant))
    def test_benign_env_works_everywhere(self, world, variant):
        record = SetuidUtility(world, variant).run_report(
            Environment.default()
        )
        assert record.executed
        assert record.binary == "/bin/date"


class TestEnvutilModel:
    def test_exploit(self):
        model = envutil_model.build_model()
        result = model.run(envutil_model.exploit_input())
        assert result.compromised
        assert result.hidden_path_count == 2

    def test_benign(self):
        model = envutil_model.build_model()
        assert not model.is_compromised_by(envutil_model.benign_input())

    def test_either_fix_forecloses(self):
        exploit = envutil_model.exploit_input()
        assert not envutil_model.build_model(
            sanitize_path=True).is_compromised_by(exploit)
        assert not envutil_model.build_model(
            verify_binary=True).is_compromised_by(exploit)

    def test_foil_points(self):
        model = envutil_model.build_model()
        points = minimal_foil_points(model, envutil_model.exploit_input())
        assert {p.pfsm_name for p in points} == {"pFSM1", "pFSM2"}

    def test_lemma(self):
        model = envutil_model.build_model()
        assert check_lemma_part2(model, envutil_model.exploit_input())
        domains = envutil_model.operation_domains()
        for operation in model.operations:
            assert check_lemma_part1(operation, domains[operation.name])

    def test_model_agrees_with_execution(self):
        world = make_env_world()
        plant_trojan(world)
        env = Environment.default()
        env.set("PATH", "/tmp/evil:/bin:/usr/bin")
        for variant, kwargs, expected in [
            (EnvUtilVariant.VULNERABLE, {}, True),
            (EnvUtilVariant.PATCHED, {"sanitize_path": True}, False),
            (EnvUtilVariant.GUARDED, {"verify_binary": True}, False),
        ]:
            record = SetuidUtility(world, variant).run_report(env)
            executed = record.ran_untrusted_as_root
            modeled = envutil_model.build_model(**kwargs).is_compromised_by(
                envutil_model.exploit_input()
            )
            assert executed == modeled == expected
