"""xterm race, rwall corruption, and IIS decoding application tests."""

import pytest

from repro.apps import (
    IisServer,
    IisVariant,
    RwallDaemon,
    RwallVariant,
    XtermVariant,
    add_utmp_entry,
    build_race_scheduler,
    make_rwall_world,
    passwd_corrupted,
    percent_decode,
)
from repro.apps.xterm import LOG_MESSAGE, make_world, security_violated
from repro.osmodel import ROOT, User


class TestXtermRace:
    def test_vulnerable_has_exactly_the_window_interleaving(self):
        analysis = build_race_scheduler(XtermVariant.VULNERABLE).explore()
        assert analysis.total == 10  # C(5,3) merges of 3+2 steps
        assert len(analysis.violations) == 1

    def test_violation_is_the_toctou_window(self):
        analysis = build_race_scheduler(XtermVariant.VULNERABLE).explore()
        violation = analysis.violations[0]
        assert violation.happened_between("tom:symlink", "xterm:check",
                                          "xterm:open")

    def test_sequential_is_safe(self):
        scheduler = build_race_scheduler(XtermVariant.VULNERABLE)
        assert not scheduler.run_sequential().violated

    def test_nofollow_forecloses(self):
        analysis = build_race_scheduler(XtermVariant.PATCHED_NOFOLLOW).explore()
        assert not analysis.has_race

    def test_recheck_forecloses(self):
        analysis = build_race_scheduler(XtermVariant.PATCHED_RECHECK).explore()
        assert not analysis.has_race

    def test_patched_still_logs_normally(self):
        scheduler = build_race_scheduler(XtermVariant.PATCHED_NOFOLLOW)
        result = scheduler.run_sequential()
        # Victim completed before the attacker ran: the log got written.
        log_inode = result.world.fs.lookup("/usr/tom/x",
                                           follow_symlinks=False)
        # After the attacker's swap the original inode is unlinked, but
        # the write happened first in sequential order.
        assert not result.violated

    def test_violation_writes_message_to_passwd(self):
        analysis = build_race_scheduler(XtermVariant.VULNERABLE).explore()
        world = analysis.violations[0].world
        assert LOG_MESSAGE in bytes(world.fs.lookup("/etc/passwd").data)

    def test_world_initial_state(self):
        world = make_world()
        assert world.fs.exists("/usr/tom/x")
        assert not security_violated(world)


class TestRwall:
    @pytest.fixture
    def mallory(self):
        return User.regular("mallory", 1001)

    def test_vulnerable_full_chain(self, mallory):
        world = make_rwall_world(RwallVariant.VULNERABLE)
        assert add_utmp_entry(world, mallory, "../etc/passwd")
        report = RwallDaemon(world).broadcast(b"attacker::0:0::/:/bin/sh\n")
        assert report.wrote_non_terminal
        assert passwd_corrupted(world, b"attacker::0:0::/:/bin/sh\n")

    def test_broadcast_reaches_terminals(self, mallory):
        world = make_rwall_world(RwallVariant.VULNERABLE)
        report = RwallDaemon(world).broadcast(b"hello\n")
        assert "/dev/pts/25" in report.delivered_to
        assert "/dev/pts/26" in report.delivered_to
        terminal = world.fs.lookup("/dev/pts/25")
        assert terminal.terminal_output == [b"hello\n"]

    def test_perms_fix_blocks_entry(self, mallory):
        world = make_rwall_world(RwallVariant.PATCHED_PERMS)
        assert not add_utmp_entry(world, mallory, "../etc/passwd")
        report = RwallDaemon(world).broadcast(b"msg\n")
        assert not report.wrote_non_terminal

    def test_perms_fix_allows_root_maintenance(self):
        world = make_rwall_world(RwallVariant.PATCHED_PERMS)
        assert add_utmp_entry(world, ROOT, "pts/26")

    def test_typecheck_fix_rejects_non_terminal(self, mallory):
        world = make_rwall_world(RwallVariant.PATCHED_TYPECHECK)
        add_utmp_entry(world, mallory, "../etc/passwd")
        report = RwallDaemon(world).broadcast(b"msg\n")
        assert "../etc/passwd" in report.rejected
        assert not passwd_corrupted(world, b"msg\n")

    def test_typecheck_still_delivers_to_terminals(self, mallory):
        world = make_rwall_world(RwallVariant.PATCHED_TYPECHECK)
        add_utmp_entry(world, mallory, "../etc/passwd")
        report = RwallDaemon(world).broadcast(b"msg\n")
        assert set(report.delivered_to) == {"/dev/pts/25", "/dev/pts/26"}

    def test_utmp_entries_parsed(self):
        world = make_rwall_world()
        assert RwallDaemon(world).utmp_entries() == ["pts/25", "pts/26"]

    def test_missing_entry_rejected_not_fatal(self, mallory):
        world = make_rwall_world(RwallVariant.VULNERABLE)
        add_utmp_entry(world, mallory, "pts/99")  # nonexistent terminal
        report = RwallDaemon(world).broadcast(b"msg\n")
        assert "pts/99" in report.rejected


class TestPercentDecode:
    def test_single_escape(self):
        assert percent_decode("%2f") == "/"

    def test_double_encoding_one_pass(self):
        assert percent_decode("..%252f") == "..%2f"

    def test_double_encoding_two_passes(self):
        assert percent_decode(percent_decode("..%252f")) == "../"

    def test_malformed_passthrough(self):
        assert percent_decode("%zz") == "%zz"
        assert percent_decode("100%") == "100%"

    def test_plain_unchanged(self):
        assert percent_decode("tools/query.exe") == "tools/query.exe"

    def test_uppercase_hex(self):
        assert percent_decode("%2F") == "/"


class TestIis:
    def test_clean_request_served(self):
        outcome = IisServer().handle_cgi_request("tools/query.exe")
        assert outcome.accepted
        assert outcome.executed_path == "/wwwroot/scripts/tools/query.exe"
        assert not outcome.escaped_root

    def test_direct_traversal_rejected(self):
        outcome = IisServer().handle_cgi_request("../winnt/cmd.exe")
        assert not outcome.accepted

    def test_single_encoding_rejected(self):
        # "..%2f" decodes to "../" in the FIRST pass: the check sees it.
        outcome = IisServer().handle_cgi_request("..%2fwinnt/cmd.exe")
        assert not outcome.accepted

    def test_double_encoding_escapes(self):
        outcome = IisServer().handle_cgi_request("..%252fwinnt/system32/cmd.exe")
        assert outcome.accepted
        assert outcome.escaped_root
        assert outcome.executed_path == "/wwwroot/winnt/system32/cmd.exe"

    def test_absolute_path_rejected(self):
        assert not IisServer().handle_cgi_request("/winnt/cmd.exe").accepted

    def test_patched_rejects_double_encoding(self):
        outcome = IisServer(IisVariant.PATCHED).handle_cgi_request(
            "..%252fwinnt/cmd.exe"
        )
        assert not outcome.accepted

    def test_patched_rejects_triple_encoding(self):
        outcome = IisServer(IisVariant.PATCHED).handle_cgi_request(
            "..%25252fwinnt/cmd.exe"
        )
        assert not outcome.accepted

    def test_patched_serves_clean(self):
        assert IisServer(IisVariant.PATCHED).handle_cgi_request(
            "tools/query.exe"
        ).accepted

    def test_spec_vs_impl_divergence(self):
        nimda = "..%252fwinnt/cmd.exe"
        assert IisServer.impl_accepts(nimda)
        assert not IisServer.spec_safe(nimda)

    def test_spec_and_impl_agree_on_clean(self):
        clean = "tools/query.exe"
        assert IisServer.impl_accepts(clean) and IisServer.spec_safe(clean)
