"""Application registry tests."""

import importlib

import pytest

from repro.apps import APP_REGISTRY, by_bugtraq_id
from repro.core import BugtraqCategory


class TestRegistry:
    def test_all_case_studies_present(self):
        assert set(APP_REGISTRY) == {
            "sendmail", "nullhttpd", "xterm", "rwall", "iis",
            "ghttpd", "rpc_statd", "freebsd", "rsync", "wuftpd",
            "icecast", "splitvt",
        }

    def test_modules_importable(self):
        for record in APP_REGISTRY.values():
            importlib.import_module(record.module)

    def test_bugtraq_lookup(self):
        assert by_bugtraq_id(3163).key == "sendmail"
        assert by_bugtraq_id(5774).key == "nullhttpd"
        assert by_bugtraq_id(6255).key == "nullhttpd"
        assert by_bugtraq_id(5960).key == "ghttpd"
        assert by_bugtraq_id(1480).key == "rpc_statd"
        assert by_bugtraq_id(2708).key == "iis"
        assert by_bugtraq_id(5493).key == "freebsd"
        assert by_bugtraq_id(3958).key == "rsync"
        assert by_bugtraq_id(1387).key == "wuftpd"
        assert by_bugtraq_id(2264).key == "icecast"
        assert by_bugtraq_id(2210).key == "splitvt"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            by_bugtraq_id(99999)

    def test_categories_valid(self):
        for record in APP_REGISTRY.values():
            assert isinstance(record.assigned_category, BugtraqCategory)

    def test_paper_references_present(self):
        for record in APP_REGISTRY.values():
            assert record.paper_reference
