"""GHTTPD (#5960) and rpc.statd (#1480) application-model tests."""

import pytest

from repro.apps import (
    Ghttpd,
    GhttpdVariant,
    RpcStatd,
    StatdVariant,
    craft_format_exploit,
    craft_stack_smash,
)
from repro.apps.ghttpd import LOG_BUFFER_SIZE


class TestGhttpdBenign:
    @pytest.mark.parametrize("variant", list(GhttpdVariant))
    def test_short_request_returns_normally(self, variant):
        app = Ghttpd(variant)
        result = app.serve(b"GET / HTTP/1.0")
        assert result.accepted
        assert not result.hijacked
        assert result.returned_to == Ghttpd.RETURN_SITE

    def test_stack_balanced_after_requests(self):
        app = Ghttpd()
        for _ in range(5):
            app.serve(b"GET /x HTTP/1.0")
        assert app.process.stack.frames == []


class TestGhttpdExploit:
    def test_vulnerable_hijacked(self):
        app = Ghttpd(GhttpdVariant.VULNERABLE)
        result = app.serve(craft_stack_smash(app))
        assert result.hijacked
        assert app.process.is_mcode(result.returned_to)

    def test_boundary_exact_size_no_hijack(self):
        app = Ghttpd(GhttpdVariant.VULNERABLE)
        # A request exactly at buffer size overflows by only the NUL.
        result = app.serve(b"A" * (LOG_BUFFER_SIZE - 1))
        assert not result.hijacked

    def test_patched_rejects_long_request(self):
        app = Ghttpd(GhttpdVariant.PATCHED)
        result = app.serve(craft_stack_smash(app))
        assert not result.accepted
        assert "too long" in result.reason

    def test_patched_accepts_at_boundary(self):
        app = Ghttpd(GhttpdVariant.PATCHED)
        assert app.serve(b"A" * (LOG_BUFFER_SIZE - 1)).accepted
        assert not app.serve(b"A" * LOG_BUFFER_SIZE).accepted

    def test_stackguard_aborts(self):
        app = Ghttpd(GhttpdVariant.STACKGUARD)
        result = app.serve(craft_stack_smash(app))
        assert not result.accepted
        assert "canary" in result.reason

    def test_stackguard_transparent_for_benign(self):
        app = Ghttpd(GhttpdVariant.STACKGUARD)
        assert app.serve(b"GET / HTTP/1.0").returned_to == Ghttpd.RETURN_SITE

    def test_splitstack_recovers(self):
        app = Ghttpd(GhttpdVariant.SPLITSTACK)
        result = app.serve(craft_stack_smash(app))
        assert result.accepted
        assert not result.hijacked
        assert result.returned_to == Ghttpd.RETURN_SITE
        assert "shadow" in result.reason


class TestStatdBenign:
    @pytest.mark.parametrize("variant", list(StatdVariant))
    def test_plain_filename_logged(self, variant):
        app = RpcStatd(variant)
        result = app.notify(b"/var/statmon/sm/host1")
        assert result.accepted
        assert not result.hijacked
        assert b"/var/statmon/sm/host1" in result.output

    def test_literal_percent_is_safe(self):
        app = RpcStatd(StatdVariant.VULNERABLE)
        result = app.notify(b"100%% done")
        assert not result.wrote_memory


class TestStatdExploit:
    def test_vulnerable_hijacked(self):
        app = RpcStatd(StatdVariant.VULNERABLE)
        result = app.notify(craft_format_exploit(app))
        assert result.wrote_memory
        assert result.hijacked
        assert app.process.is_mcode(result.returned_to)

    def test_directives_leak_stack_words(self):
        app = RpcStatd(StatdVariant.VULNERABLE)
        result = app.notify(b"%x.%x.%x")
        assert result.accepted and not result.hijacked
        assert b"." in result.output  # hex words leaked

    def test_patched_prints_input_as_data(self):
        app = RpcStatd(StatdVariant.PATCHED)
        payload = craft_format_exploit(app)
        result = app.notify(payload)
        assert not result.wrote_memory
        assert not result.hijacked
        assert payload in result.output  # the %n printed literally

    def test_sanitized_rejects(self):
        app = RpcStatd(StatdVariant.SANITIZED)
        result = app.notify(craft_format_exploit(app))
        assert not result.accepted
        assert "directives" in result.reason

    def test_sanitized_accepts_clean(self):
        app = RpcStatd(StatdVariant.SANITIZED)
        assert app.notify(b"hostname.example.com").accepted

    def test_return_address_slot_stable(self):
        app = RpcStatd()
        assert app.return_address_slot() == app.return_address_slot()
