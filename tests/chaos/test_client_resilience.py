"""ServeClient resilience against scripted fake servers: connect
retries inside a total budget, idempotent-request retries across
dropped and garbled exchanges, hedged reads, and the CLI's exit-2
contract when the service stays unreachable."""

import json
import socket
import threading
import time
from collections import deque

import pytest

from repro import cli, faults
from repro.serve.client import ServeClient


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    previous = faults.install(None)
    yield
    faults.install(previous)


class ScriptedServer:
    """A listener that hands each accepted connection, in order, to the
    next scripted handler.  Handlers run on their own threads so a slow
    primary never blocks the hedge connection."""

    def __init__(self, *handlers):
        self._handlers = list(handlers)
        self.received = []
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.host, self.port = self.sock.getsockname()
        threading.Thread(target=self._accept, daemon=True,
                         name="scripted-accept").start()

    def _accept(self):
        for handler in self._handlers:
            try:
                conn, _addr = self.sock.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn, handler),
                             daemon=True, name="scripted-conn").start()

    def _serve(self, conn, handler):
        try:
            with conn:
                handler(self, conn)
        except Exception:
            pass

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()


def _read_request(server, conn):
    line = conn.makefile("rb").readline()
    if not line:
        return None
    request = json.loads(line.decode("utf-8"))
    server.received.append(request)
    return request


def drop_after_read(server, conn):
    """Accept the request, then close without responding — the shape a
    crashing or restarting server presents mid-exchange."""
    _read_request(server, conn)


def respond(extra=None, delay=0.0):
    def handler(server, conn):
        request = _read_request(server, conn)
        if request is None:
            return
        if delay:
            time.sleep(delay)
        body = {"id": request.get("id"), "status": "ok"}
        if extra:
            body.update(extra)
        conn.sendall((json.dumps(body) + "\n").encode("utf-8"))
    return handler


def garbled(server, conn):
    _read_request(server, conn)
    conn.sendall(b"\x00not json at all\n")


class TestConnectBudget:
    def test_retries_until_the_server_starts_listening(self):
        # Bound but not yet listening → ECONNREFUSED until listen().
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        host, port = sock.getsockname()

        def listen_late():
            time.sleep(0.4)
            sock.listen(1)

        threading.Thread(target=listen_late, daemon=True).start()
        try:
            client = ServeClient(host, port, timeout=5.0,
                                 connect_timeout=10.0)
            try:
                assert client.connect_attempts >= 2
                assert client.resilience_stats()[
                    "connect_attempts"] == client.connect_attempts
            finally:
                client.close()
        finally:
            sock.close()

    def test_exhausted_budget_raises_connection_error(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))  # never listens
        host, port = sock.getsockname()
        try:
            started = time.monotonic()
            with pytest.raises(ConnectionError, match="within 0.3s"):
                ServeClient(host, port, timeout=5.0, connect_timeout=0.3)
            assert time.monotonic() - started < 5.0
        finally:
            sock.close()

    def test_zero_budget_degrades_to_single_attempt(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        host, port = sock.getsockname()
        try:
            with pytest.raises(ConnectionError):
                ServeClient(host, port, timeout=5.0, connect_timeout=0.0)
        finally:
            sock.close()


class TestRequestRetries:
    def test_dropped_exchange_is_resent_with_the_same_id(self):
        with ScriptedServer(drop_after_read, respond()) as server:
            with ServeClient(server.host, server.port, timeout=5.0,
                             retries=2) as client:
                response = client.request({"op": "ping"})
            assert response["status"] == "ok"
            assert client.request_retries == 1
            # Both attempts carried the identical request id: the server
            # sees a resend, never a second distinct request.
            assert len(server.received) == 2
            assert server.received[0]["id"] == server.received[1]["id"]

    def test_garbled_response_reconnects_and_recovers(self):
        with ScriptedServer(garbled, respond()) as server:
            with ServeClient(server.host, server.port, timeout=5.0,
                             retries=2) as client:
                response = client.request({"op": "ping"})
            assert response["status"] == "ok"
            assert client.request_retries == 1

    def test_non_idempotent_requests_never_retry(self):
        with ScriptedServer(drop_after_read, respond()) as server:
            with ServeClient(server.host, server.port,
                             timeout=5.0, retries=2) as client:
                with pytest.raises(ConnectionError):
                    client.request({"op": "ping"}, idempotent=False)
                assert client.request_retries == 0
            assert len(server.received) == 1

    def test_retries_zero_fails_fast(self):
        with ScriptedServer(drop_after_read, respond()) as server:
            with ServeClient(server.host, server.port,
                             timeout=5.0, retries=0) as client:
                with pytest.raises(ConnectionError):
                    client.request({"op": "ping"})


class TestHedging:
    def test_hedge_wins_over_a_slow_primary(self):
        server = ScriptedServer(
            respond(extra={"origin": "primary"}, delay=1.0),
            respond(extra={"origin": "hedge"}))
        with server:
            with ServeClient(server.host, server.port, timeout=5.0,
                             hedge_after=0.05) as client:
                response = client.query("toy")
                assert response["origin"] == "hedge"
                stats = client.resilience_stats()
            assert stats["hedges"] == 1
            assert stats["hedge_wins"] == 1
            # Primary and hedge sent the same request id.
            deadline = time.monotonic() + 2.0
            while len(server.received) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.received[0]["id"] == server.received[1]["id"]

    def test_fast_primary_never_hedges(self):
        with ScriptedServer(respond(extra={"origin": "primary"}),
                            respond(extra={"origin": "hedge"})) as server:
            with ServeClient(server.host, server.port, timeout=5.0,
                             hedge_after=2.0) as client:
                response = client.query("toy")
                assert response["origin"] == "primary"
                assert client.hedges == 0

    def test_p95_delay_uses_floor_then_observed_latencies(self):
        client = object.__new__(ServeClient)
        client.hedge_after = "p95"
        client._latencies = deque(maxlen=64)
        assert client._hedge_delay() == pytest.approx(0.05)
        for sample in (0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.5):
            client._latencies.append(sample)
        # 95th percentile of 7 samples → the tail value.
        assert client._hedge_delay() == pytest.approx(0.5)
        client.hedge_after = 0.25
        assert client._hedge_delay() == pytest.approx(0.25)


class TestCliExitCodes:
    def test_query_exits_2_when_unreachable_within_budget(self, capsys):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))  # never listens
        _host, port = sock.getsockname()
        try:
            code = cli.main(["query", "--host", "127.0.0.1",
                             "--port", str(port),
                             "--connect-timeout", "0.3", "toy"])
        finally:
            sock.close()
        assert code == 2
        assert "within 0.3s" in capsys.readouterr().err

    def test_query_exits_1_without_a_budget_flag(self, capsys):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        _host, port = sock.getsockname()
        try:
            code = cli.main(["query", "--host", "127.0.0.1",
                             "--port", str(port),
                             "--timeout", "0.3", "toy"])
        finally:
            sock.close()
        assert code == 1
