"""The serve circuit breaker: the state machine under a fake clock, and
the degraded-mode serving path end-to-end (injected dispatch crashes →
inline fallback → open breaker → /healthz degraded + metrics)."""

import json
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.core import (
    Domain,
    Operation,
    PrimitiveFSM,
    VulnerabilityModel,
    dist,
    in_range,
    less_equal,
)
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.corpus import AnalysisCorpus

TOY_NAME = "Toy overflow"


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _breaker(**kwargs):
    clock = FakeClock()
    defaults = dict(window=8, threshold=0.5, min_calls=4, cooldown=5.0,
                    clock=clock)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults), clock


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = _breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_min_calls_guards_early_failures(self):
        breaker, _ = _breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED  # 3 < min_calls

    def test_failure_rate_over_window_trips_open(self):
        breaker, _ = _breaker()
        for ok in (True, True, False, False, False, False):
            breaker.record_success() if ok else breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.snapshot()["opened_total"] == 1

    def test_cooldown_flips_open_to_half_open(self):
        breaker, clock = _breaker()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.now += 4.9
        assert breaker.state == OPEN
        clock.now += 0.2
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_bounded_probes(self):
        breaker, clock = _breaker(half_open_probes=1)
        for _ in range(4):
            breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # concurrent dispatch short-circuits
        assert breaker.snapshot()["short_circuited"] >= 1

    def test_probe_success_closes_and_resets_window(self):
        breaker, clock = _breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.snapshot()["window"] == 0  # stale failures gone

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = _breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.snapshot()["opened_total"] == 2
        clock.now += 5.1
        assert breaker.state == HALF_OPEN

    def test_transition_hook_fires(self):
        seen = []
        clock = FakeClock()
        breaker = CircuitBreaker(min_calls=2, threshold=0.5, cooldown=1.0,
                                 clock=clock,
                                 on_transition=lambda a, b: seen.append(
                                     (a, b)))
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 1.5
        assert breaker.allow()
        breaker.record_success()
        assert seen == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                        (HALF_OPEN, CLOSED)]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=1.5)


# -- degraded serving end-to-end -------------------------------------------

def _toy_corpus():
    pfsm1 = PrimitiveFSM("pFSM1", "accept input x", "x",
                         spec_accepts=in_range(0, 5),
                         impl_accepts=less_equal(10))
    op = Operation("write x", "the input integer", [pfsm1])
    model = VulnerabilityModel(TOY_NAME, [op])
    return AnalysisCorpus(models={TOY_NAME: model},
                          domains={TOY_NAME: {
                              "pFSM1": Domain(range(-5, 20))}},
                          keys={"toy": TOY_NAME})


def _get(handle, path):
    url = f"http://{handle.host}:{handle.port}{path}"
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


@pytest.fixture(autouse=True)
def _fresh_state():
    previous = faults.install(None)
    dist.reset()
    yield
    faults.install(previous)
    dist.reset()


class TestDegradedServing:
    def test_injected_dispatch_crashes_degrade_then_open(self):
        handle = ServerThread(
            ServeConfig(port=0, backend="process", workers=1,
                        batch_window=0.002, breaker_cooldown=60.0),
            corpus=_toy_corpus(),
        ).start()
        try:
            assert handle.server.breaker is not None
            plan = faults.parse_spec("serve.dispatch.crash:1")
            with faults.injecting(plan):
                with ServeClient(handle.host, handle.port,
                                 timeout=30.0) as client:
                    # Distinct limits → distinct fingerprints → one
                    # dispatch each; every one crashes and falls back.
                    for limit in range(1, 7):
                        response = client.query("toy", limit=limit)
                        assert response["status"] == "ok"
                        assert response["vulnerable"] is True
                    snapshot = client.metrics()
            assert plan.snapshot()["injected"][
                "serve.dispatch.crash"] >= 4
            breaker = snapshot["breaker"]
            assert breaker["state"] == "open"
            assert snapshot["degraded"] is True
            assert snapshot["counters"]["breaker.fallbacks"] >= 4
            assert snapshot["counters"]["breaker.open"] == 1
            assert snapshot["faults"]["total_injected"] >= 4

            code, body = _get(handle, "/healthz")
            assert code == 200
            payload = json.loads(body)
            assert payload["ready"] is True
            assert payload["degraded"] is True

            _code, text = _get(handle, "/metrics")
            assert "repro_serve_breaker_fallbacks_total" in text
            assert 'repro_serve_breaker_state{state="open"} 1' in text
            assert "repro_serve_degraded 1" in text
        finally:
            handle.shutdown()

    def test_open_breaker_short_circuits_but_still_answers(self):
        handle = ServerThread(
            ServeConfig(port=0, backend="process", workers=1,
                        batch_window=0.002, breaker_cooldown=60.0),
            corpus=_toy_corpus(),
        ).start()
        try:
            # Trip the breaker directly; no faults installed afterwards,
            # so dispatches would succeed — the open breaker skips them.
            for _ in range(4):
                handle.server.breaker.record_failure()
            assert handle.server.breaker.state == "open"
            with ServeClient(handle.host, handle.port,
                             timeout=30.0) as client:
                response = client.query("toy", limit=9)
                assert response["status"] == "ok"
                snapshot = client.metrics()
            assert snapshot["counters"]["breaker.short_circuited"] >= 1
            assert snapshot["breaker"]["short_circuited"] >= 1
        finally:
            handle.shutdown()

    def test_thread_backend_has_no_breaker(self):
        handle = ServerThread(
            ServeConfig(port=0, backend="thread", batch_window=0.002),
            corpus=_toy_corpus(),
        ).start()
        try:
            assert handle.server.breaker is None
            code, body = _get(handle, "/healthz")
            assert json.loads(body)["degraded"] is False
            snapshot = handle.server.metrics()
            assert "breaker" not in snapshot
        finally:
            handle.shutdown()
