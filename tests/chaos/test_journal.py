"""The crash-safe sweep journal: record/load round-trips, digest
scoping, truncation healing, the torn-write / ENOSPC fault taps, and
coordinator resume (only in-flight chunks re-execute)."""

import pickle

import pytest

from repro import faults, obs
from repro.cluster import ClusterCoordinator, SweepJournal, job_digest
from repro.core import Domain, PrimitiveFSM, dist, in_range, less_equal


def _task(i, size=20):
    pfsm = PrimitiveFSM("p", "scan", "x",
                        spec_accepts=in_range(0, 5),
                        impl_accepts=less_equal(10))
    return ("model", f"op{i}", pfsm, Domain.integers(0, size), 5)


def _chunks(n=3, rows=2, size=20):
    chunks, index = [], 0
    for _cid in range(n):
        chunk = []
        for _r in range(rows):
            chunk.append((index, dist._serialize_task(_task(index, size))))
            index += 1
        chunks.append(chunk)
    return chunks


def _outcome(cid):
    """An opaque journaled outcome in the ledger's pair format."""
    return [(cid * 2, ("finding", cid)), (cid * 2 + 1, None)]


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    previous = faults.install(None)
    yield
    faults.install(previous)


class TestJobDigest:
    def test_digest_is_stable_and_content_sensitive(self):
        chunks = _chunks()
        # Stable over the same serialized workload (what a restarted
        # coordinator recomputes from identical inputs) ...
        assert job_digest(chunks) == job_digest([list(c) for c in chunks])
        assert len(job_digest(chunks)) == 16
        # ... and sensitive to any content or ordering change.
        other = [list(c) for c in chunks]
        other[0][0] = (0, b"different bytes")
        assert job_digest(chunks) != job_digest(other)
        assert job_digest(chunks) != job_digest(list(reversed(chunks)))


class TestRecordLoad:
    def test_round_trip(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        digest = job_digest(_chunks())
        for cid in range(3):
            assert journal.record(digest, cid, _outcome(cid))
        loaded = journal.load(digest)
        assert loaded == {cid: _outcome(cid) for cid in range(3)}

    def test_load_missing_file_is_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl").load("x" * 16) == {}

    def test_other_jobs_records_are_ignored(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record("a" * 16, 0, _outcome(0))
        journal.record("b" * 16, 1, _outcome(1))
        assert set(journal.load("a" * 16)) == {0}
        assert set(journal.load("b" * 16)) == {1}

    def test_truncated_tail_is_skipped_and_healed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        digest = "c" * 16
        journal.record(digest, 0, _outcome(0))
        # A crash mid-append: half a record, no newline.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"job": "' + digest + '", "chu')
        assert set(journal.load(digest)) == {0}
        # The next append heals the file; everything is then readable.
        assert journal.record(digest, 1, _outcome(1))
        assert set(journal.load(digest)) == {0, 1}

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        digest = "d" * 16
        journal.record(digest, 0, _outcome(0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"job": "' + digest + '", "chunk": "NaN", '
                         '"data": "xx"}\n')
        assert set(journal.load(digest)) == {0}


class TestFaultTaps:
    def test_torn_write_degrades_and_stays_loadable(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        digest = "e" * 16
        with faults.injecting(
                faults.parse_spec("journal.append.torn:1@max=1")):
            assert journal.record(digest, 0, _outcome(0)) is False
        assert journal.write_errors == 1
        assert journal.load(digest) == {}  # the torn record is skipped
        # Healing: the next append lands cleanly after the torn tail.
        assert journal.record(digest, 1, _outcome(1))
        assert set(journal.load(digest)) == {1}

    def test_enospc_counts_a_write_error(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        registry = obs.get_registry()
        owned = not registry.enabled
        if owned:
            registry.enable()
        try:
            with faults.injecting(
                    faults.parse_spec("journal.append.enospc:1@max=1")):
                assert journal.record("f" * 16, 0, _outcome(0)) is False
            assert journal.write_errors == 1
            assert registry.counters().get(
                "cluster.journal.write_errors", 0) >= 1
        finally:
            if owned:
                registry.disable()
                registry.reset()


class TestCoordinatorResume:
    def _run(self, journal_path, chunks):
        with ClusterCoordinator(journal=journal_path) as coordinator:
            results, failed = coordinator.run_chunks(
                [list(c) for c in chunks])
            counters = coordinator.snapshot()["counters"]
        return results, failed, counters

    def test_full_journal_resumes_every_chunk(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        chunks = _chunks(n=3)
        first, failed, counters = self._run(path, chunks)
        assert not failed
        assert counters.get("journal.appends", 0) == 3
        # Same chunks, same journal: nothing re-executes.
        second, failed2, counters2 = self._run(path, chunks)
        assert second == first
        assert not failed2
        assert counters2.get("journal.resumed", 0) == 3
        assert counters2.get("chunks.inline", 0) == 0

    def test_partial_journal_re_executes_only_missing_chunks(
            self, tmp_path):
        chunks = _chunks(n=4)
        digest = job_digest(chunks)
        baseline, failed, _ = self._run(
            str(tmp_path / "clean.jsonl"), chunks)
        assert not failed
        # Journal as if the dying coordinator finished chunks 0 and 2.
        path = str(tmp_path / "j.jsonl")
        journal = SweepJournal(path)
        for cid in (0, 2):
            pairs = dist._chunk_worker([tuple(row) for row in chunks[cid]])
            assert journal.record(digest, cid, pairs)
        resumed, failed2, counters = self._run(path, chunks)
        assert not failed2
        assert resumed == baseline
        assert counters.get("journal.resumed", 0) == 2
        # Only the two unjournaled chunks executed (inline, no workers).
        assert counters.get("chunks.inline", 0) == 2

    def test_journal_of_different_job_is_ignored(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        self._run(path, _chunks(n=2))
        results, failed, counters = self._run(path, _chunks(n=2, size=25))
        assert not failed
        assert counters.get("journal.resumed", 0) == 0
        assert counters.get("chunks.inline", 0) == 2
