"""The fault-injection fabric itself: spec grammar, the determinism
contract (same seed ⇒ same per-site decision sequence), @after/@max
budgets, and the ambient install/fire plumbing."""

import pytest

from repro import faults
from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    parse_spec,
)


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    previous = faults.install(None)
    yield
    faults.install(previous)


class TestSpecGrammar:
    def test_full_spec_round_trips(self):
        plan = parse_spec(
            "seed=42;cluster.send.drop:0.01;"
            "worker.chunk.hang:1@after=3@max=1@ms=500")
        assert plan.seed == 42
        assert len(plan.rules) == 2
        drop, hang = plan.rules
        assert (drop.pattern, drop.rate) == ("cluster.send.drop", 0.01)
        assert (hang.after_n, hang.max_n, hang.ms) == (3, 1, 500.0)

    def test_empty_clauses_and_whitespace_are_tolerated(self):
        plan = parse_spec(" seed=1 ; ; store.append.torn:1 ;")
        assert plan.seed == 1
        assert len(plan.rules) == 1

    def test_default_seed_is_zero(self):
        assert parse_spec("a.b:0.5").seed == 0

    @pytest.mark.parametrize("spec", [
        "not-a-clause",
        "site:",
        "site:two",
        "site:1.5",          # rate out of [0, 1]
        "site:0.1@after",    # option without value
        "site:0.1@after=x",
        "site:0.1@bogus=1",
        "seed=abc",
        "site:0.1@max=-1",
        "site:0.1@ms=-5",
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_spec(spec)


class TestDeterminism:
    def test_same_seed_same_decision_sequence(self):
        spec = "seed=9;a.site:0.3;other.*:0.2"
        runs = []
        for _ in range(2):
            plan = parse_spec(spec)
            runs.append([plan.check("a.site") is not None
                         for _ in range(200)])
        assert runs[0] == runs[1]
        assert any(runs[0])          # 0.3 over 200 draws fires
        assert not all(runs[0])

    def test_different_seeds_diverge(self):
        seq = []
        for seed in (1, 2):
            plan = parse_spec(f"seed={seed};s:0.5")
            seq.append([plan.check("s") is not None for _ in range(64)])
        assert seq[0] != seq[1]

    def test_sites_have_independent_streams(self):
        plan = parse_spec("seed=3;*:0.5")
        a = [plan.check("site.a") is not None for _ in range(64)]
        b = [plan.check("site.b") is not None for _ in range(64)]
        assert a != b

    def test_max_exhaustion_does_not_shift_the_stream(self):
        """A rule hitting @max must not change later decisions of a
        second rule at the same site (draws are always consumed)."""
        with_budget = parse_spec("seed=5;s:1@max=1;s:0.4")
        without = parse_spec("seed=5;s:0@max=1;s:0.4")
        got_a = [with_budget.check("s") for _ in range(100)]
        got_b = [without.check("s") for _ in range(100)]
        # First call: rule 1 fires in plan A only; afterwards both
        # plans must make identical rule-2 decisions.
        assert got_a[0] is not None and got_a[0].max_n == 1
        tail_a = [r is not None for r in got_a[1:]]
        tail_b = [r is not None for r in got_b[1:]]
        assert tail_a == tail_b


class TestBudgets:
    def test_after_skips_the_first_n_calls(self):
        plan = parse_spec("s:1@after=3")
        fired = [plan.check("s") is not None for _ in range(5)]
        assert fired == [False, False, False, True, True]

    def test_max_caps_total_fires(self):
        plan = parse_spec("s:1@max=2")
        fired = [plan.check("s") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_glob_patterns_match_site_families(self):
        plan = parse_spec("cluster.send.*:1@max=10")
        assert plan.check("cluster.send.drop") is not None
        assert plan.check("cluster.send.partial") is not None
        assert plan.check("cluster.recv.delay") is None

    def test_injected_counters_accumulate_per_site(self):
        plan = parse_spec("s:1;t:1")
        for _ in range(3):
            plan.check("s")
        plan.check("t")
        snap = plan.snapshot()
        assert snap["injected"] == {"s": 3, "t": 1}
        assert snap["total_injected"] == 4


class TestAmbientPlumbing:
    def test_fire_is_none_when_no_plan_installed(self):
        assert faults.fire("any.site") is None

    def test_injecting_scopes_the_plan(self):
        plan = parse_spec("s:1")
        with faults.injecting(plan):
            assert faults.fire("s") is plan.rules[0]
            assert faults.get_plan() is plan
        assert faults.fire("s") is None
        assert faults.get_plan() is None

    def test_install_returns_previous(self):
        first = FaultPlan([FaultRule("a", 1.0)], seed=1)
        assert faults.install(first) is None
        assert faults.install(None) is first

    def test_init_from_env(self):
        plan = faults.init_from_env({ENV_VAR: "seed=4;s:1@max=1"})
        assert plan is not None and plan.seed == 4
        assert faults.get_plan() is plan
        assert faults.snapshot()["seed"] == 4
        faults.install(None)
        assert faults.init_from_env({}) is None

    def test_module_snapshot_is_none_when_off(self):
        assert faults.snapshot() is None
