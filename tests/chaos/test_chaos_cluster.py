"""Seeded fault matrices against the live cluster fabric.

The tentpole's acceptance contract: under an injected fault plan the
sweep still reproduces the fault-free (process backend) results exactly,
the same seed produces the same injections, and a coordinator SIGKILLed
mid-sweep resumes from its journal re-executing only in-flight work.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.cluster import ClusterCoordinator, ClusterWorker, coordinating
from repro.core import dist
from repro.core.sweep import sweep_models
from repro.models import nullhttpd_model, xterm_model

_REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture(autouse=True)
def _fresh_state():
    previous = faults.install(None)
    dist.reset()
    dist.clear_memo()
    yield
    faults.install(previous)
    dist.reset()
    dist.clear_memo()


def _models():
    return ({"nullhttpd": nullhttpd_model.build_model(),
             "xterm": xterm_model.build_model()},
            {"nullhttpd": nullhttpd_model.pfsm_domains(),
             "xterm": xterm_model.pfsm_domains()})


def _flat(sweeps):
    return [(s.model_name, f.pfsm_name, tuple(f.witnesses))
            for s in sweeps for f in s.findings]


def _cluster_sweep(plan=None, workers=2, chunk_timeout=None, limit=4):
    """One cluster sweep through live workers under an optional plan."""
    models, domains = _models()
    with ClusterCoordinator(lease_timeout=5.0) as coordinator, \
            coordinating(coordinator):
        agents = [ClusterWorker(*coordinator.address, slots=1,
                                inline=True, chunk_timeout=chunk_timeout)
                  for _ in range(workers)]
        for agent in agents:
            agent.start()
        assert coordinator.wait_for_workers(workers, timeout=10.0)
        try:
            if plan is not None:
                with faults.injecting(plan):
                    sweeps = sweep_models(models, domains, limit=limit,
                                          mode="cluster", workers=workers)
            else:
                sweeps = sweep_models(models, domains, limit=limit,
                                      mode="cluster", workers=workers)
        finally:
            for agent in agents:
                agent.stop(timeout=5.0)
    return _flat(sweeps)


class TestSeededFaultMatrix:
    def test_results_survive_a_socket_fault_matrix(self):
        models, domains = _models()
        expected = _flat(sweep_models(models, domains, limit=4,
                                      mode="process", workers=2))
        dist.reset()
        dist.clear_memo()
        plan = faults.parse_spec(
            "seed=13;"
            "cluster.send.drop:1@after=6@max=1;"
            "cluster.send.partial:1@after=12@max=1;"
            "cluster.recv.garble:1@after=9@max=1")
        got = _cluster_sweep(plan)
        assert got == expected
        assert plan.snapshot()["total_injected"] >= 1

    def test_worker_crash_fault_is_retried_to_parity(self):
        models, domains = _models()
        expected = _flat(sweep_models(models, domains, limit=4,
                                      mode="process", workers=2))
        dist.reset()
        dist.clear_memo()
        plan = faults.parse_spec("seed=3;worker.chunk.crash:1@max=2")
        got = _cluster_sweep(plan)
        assert got == expected
        assert plan.snapshot()["injected"]["worker.chunk.crash"] == 2

    def test_same_seed_same_injections_same_results(self):
        spec = ("seed=21;worker.chunk.crash:1@max=1;"
                "worker.chunk.slow:1@max=2@ms=20")
        runs = []
        for _ in range(2):
            dist.reset()
            dist.clear_memo()
            plan = faults.parse_spec(spec)
            results = _cluster_sweep(plan)
            runs.append((results, plan.snapshot()["injected"]))
        assert runs[0][0] == runs[1][0]
        # Budgeted (@max) sites fire deterministically often.
        assert runs[0][1]["worker.chunk.crash"] == \
            runs[1][1]["worker.chunk.crash"] == 1
        assert runs[0][1]["worker.chunk.slow"] == \
            runs[1][1]["worker.chunk.slow"] == 2


class TestChunkDeadline:
    def test_hung_chunk_is_killed_and_retried(self):
        models, domains = _models()
        expected = _flat(sweep_models(models, domains, limit=4,
                                      mode="process", workers=2))
        dist.reset()
        dist.clear_memo()
        # One chunk hangs for 60s; the 0.5s deadline kills it and the
        # bounded retry (hang budget spent) completes it normally.
        plan = faults.parse_spec(
            "seed=2;worker.chunk.hang:1@max=1@ms=60000")
        started = time.monotonic()
        got = _cluster_sweep(plan, chunk_timeout=0.5)
        elapsed = time.monotonic() - started
        assert got == expected
        assert plan.snapshot()["injected"]["worker.chunk.hang"] == 1
        assert elapsed < 30.0  # the hang itself never ran to term


class TestKillAndResume:
    def test_sigkilled_coordinator_resumes_from_journal(self, tmp_path):
        """Kill a journaling cluster sweep mid-run; the re-run resumes
        journaled chunks and matches the process backend bit-for-bit."""
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(_REPO_ROOT, "src"))
        env.pop(faults.ENV_VAR, None)
        journal = str(tmp_path / "journal.jsonl")

        baseline = subprocess.run(
            [sys.executable, "-m", "repro", "sweep",
             "--backend", "process", "--json"],
            env=env, capture_output=True, text=True, timeout=120)
        assert baseline.returncode == 0, baseline.stderr
        expected = json.loads(baseline.stdout)

        # SIGKILL the coordinator the moment its first chunk outcome
        # lands in the journal — the remaining chunks are in flight.
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep",
             "--backend", "cluster", "--listen", "127.0.0.1:0",
             "--journal", journal, "--json"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(journal) and os.path.getsize(journal) > 0:
                break
            if victim.poll() is not None:
                break
            time.sleep(0.02)
        if victim.poll() is None:
            os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "sweep",
             "--backend", "cluster", "--listen", "127.0.0.1:0",
             "--journal", journal, "--json"],
            env=env, capture_output=True, text=True, timeout=120)
        assert resumed.returncode == 0, resumed.stderr
        payload = json.loads(resumed.stdout)
        assert payload["models"] == expected["models"]
        assert payload["total_findings"] == expected["total_findings"]
        cluster = payload["cluster"]
        if victim.returncode and os.path.getsize(journal) > 0:
            # The victim journaled at least one chunk before dying, so
            # the resume re-executed strictly less than the whole job.
            assert cluster["chunks_resumed"] >= 1
