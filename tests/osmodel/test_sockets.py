"""Socket tests: recv chunking, closure, and error semantics."""

from repro.osmodel import RECV_ERROR, SimulatedSocket


class TestRecvChunking:
    def test_full_chunk(self):
        sock = SimulatedSocket(b"x" * 2000)
        result = sock.recv(1024)
        assert result.count == 1024
        assert result.data == b"x" * 1024

    def test_partial_final_chunk(self):
        sock = SimulatedSocket(b"x" * 1500)
        sock.recv(1024)
        result = sock.recv(1024)
        assert result.count == 476

    def test_exhausted_returns_zero(self):
        sock = SimulatedSocket(b"ab")
        sock.recv(10)
        assert sock.recv(10).count == 0

    def test_exact_boundary(self):
        # Exactly one full chunk, then orderly zero.
        sock = SimulatedSocket(b"y" * 1024)
        assert sock.recv(1024).count == 1024
        assert sock.recv(1024).count == 0

    def test_remaining(self):
        sock = SimulatedSocket(b"z" * 100)
        sock.recv(30)
        assert sock.remaining == 70

    def test_zero_max_bytes(self):
        sock = SimulatedSocket(b"data")
        assert sock.recv(0).count == 0
        assert sock.remaining == 4

    def test_data_preserved_in_order(self):
        sock = SimulatedSocket(b"abcdef")
        assert sock.recv(3).data == b"abc"
        assert sock.recv(3).data == b"def"


class TestErrors:
    def test_closed_socket_errors(self):
        sock = SimulatedSocket(b"data")
        sock.close()
        assert sock.recv(4).count == RECV_ERROR

    def test_error_after_threshold(self):
        sock = SimulatedSocket(b"x" * 100, error_after=50)
        assert sock.recv(50).count == 50
        assert sock.recv(50).count == RECV_ERROR

    def test_error_closes(self):
        sock = SimulatedSocket(b"x" * 100, error_after=0)
        assert sock.recv(10).count == RECV_ERROR
        assert sock.closed

    def test_result_tuple_unpacking(self):
        rc, data = SimulatedSocket(b"hi").recv(2)
        assert (rc, data) == (2, b"hi")

    def test_repr(self):
        assert "RecvResult" in repr(SimulatedSocket(b"x").recv(1))
