"""Scheduler tests: interleaving enumeration and race detection."""

from dataclasses import dataclass, field
from math import comb
from typing import List

import pytest

from repro.osmodel import Scheduler, Step, ThreadScript


@dataclass
class TraceWorld:
    log: List[str] = field(default_factory=list)


def _recorder(name):
    def effect(world):
        world.log.append(name)
    return effect


def _make_scheduler(lengths, violation=lambda world: False):
    def scripts(_world):
        return [
            ThreadScript.of(
                f"t{i}",
                *[Step(f"s{j}", _recorder(f"t{i}s{j}")) for j in range(n)],
            )
            for i, n in enumerate(lengths)
        ]

    return Scheduler(TraceWorld, scripts, violation)


class TestEnumeration:
    def test_two_thread_count_is_binomial(self):
        analysis = _make_scheduler([3, 2]).explore()
        assert analysis.total == comb(5, 3)

    def test_single_thread_one_order(self):
        analysis = _make_scheduler([4]).explore()
        assert analysis.total == 1

    def test_three_threads(self):
        analysis = _make_scheduler([1, 1, 1]).explore()
        assert analysis.total == 6

    def test_all_orders_distinct(self):
        analysis = _make_scheduler([2, 2]).explore()
        orders = {result.order for result in analysis.results}
        assert len(orders) == analysis.total

    def test_program_order_preserved_within_thread(self):
        analysis = _make_scheduler([3, 2]).explore()
        for result in analysis.results:
            t0_steps = [s for s in result.order if s.startswith("t0")]
            assert t0_steps == ["t0:s0", "t0:s1", "t0:s2"]

    def test_every_step_executes(self):
        analysis = _make_scheduler([2, 3]).explore()
        for result in analysis.results:
            assert len(result.order) == 5


class TestExecution:
    def test_run_order_follows_schedule(self):
        scheduler = _make_scheduler([2, 1])
        result = scheduler.run_order([1, 0, 0])
        assert result.order == ("t1:s0", "t0:s0", "t0:s1")

    def test_run_sequential(self):
        scheduler = _make_scheduler([2, 2])
        result = scheduler.run_sequential()
        assert result.order == ("t0:s0", "t0:s1", "t1:s0", "t1:s1")

    def test_errors_recorded_and_thread_stopped(self):
        def boom(_world):
            raise RuntimeError("boom")

        def scripts(_world):
            return [
                ThreadScript.of("t0", Step("a", boom), Step("b", _recorder("b"))),
                ThreadScript.of("t1", Step("c", _recorder("c"))),
            ]

        scheduler = Scheduler(TraceWorld, scripts, lambda _w: False)
        result = scheduler.run_order([0, 0, 1])
        assert "t0:a" in result.errors
        assert "RuntimeError" in result.errors["t0:a"]
        assert "t0:b" not in result.order  # thread died after the error
        assert "t1:c" in result.order

    def test_fresh_world_per_interleaving(self):
        analysis = _make_scheduler([1, 1]).explore()
        for result in analysis.results:
            assert len(result.world.log) == 2  # no cross-run accumulation


class TestRaceDetection:
    def _window_scheduler(self):
        """Violation iff t1's single step lands between t0's two steps."""
        def violation(world):
            log = world.log
            return log.index("t1s0") == 1 if "t1s0" in log else False

        return _make_scheduler([2, 1], violation)

    def test_violations_found(self):
        analysis = self._window_scheduler().explore()
        assert analysis.has_race
        assert len(analysis.violations) == 1

    def test_violation_ratio(self):
        analysis = self._window_scheduler().explore()
        assert analysis.violation_ratio == pytest.approx(1 / 3)

    def test_sequential_run_is_safe(self):
        assert not self._window_scheduler().run_sequential().violated

    def test_happened_between(self):
        analysis = self._window_scheduler().explore()
        violation = analysis.violations[0]
        assert violation.happened_between("t1:s0", "t0:s0", "t0:s1")

    def test_happened_between_false_when_outside(self):
        scheduler = self._window_scheduler()
        result = scheduler.run_order([1, 0, 0])
        assert not result.happened_between("t1:s0", "t0:s0", "t0:s1")

    def test_position_of_missing_step(self):
        scheduler = self._window_scheduler()
        result = scheduler.run_order([0, 0, 1])
        assert result.position("t9:nope") == -1

    def test_no_race_means_empty_violations(self):
        analysis = _make_scheduler([2, 2]).explore()
        assert not analysis.has_race
        assert analysis.violation_ratio == 0.0
