"""Property-based tests over the OS model: path normalization laws,
permission monotonicity, interleaving-count combinatorics."""

from math import comb, factorial

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osmodel import (
    FileSystem,
    Mode,
    ROOT,
    Scheduler,
    SimulatedSocket,
    Step,
    ThreadScript,
    User,
    normalize_path,
)

path_segments = st.lists(
    st.sampled_from(["a", "b", "usr", "tom", "..", ".", "etc", "x"]),
    min_size=0, max_size=8,
)


class TestNormalizeProperties:
    @given(path_segments)
    def test_idempotent(self, segments):
        path = "/" + "/".join(segments)
        assert normalize_path(normalize_path(path)) == normalize_path(path)

    @given(path_segments)
    def test_no_dots_remain(self, segments):
        path = "/" + "/".join(segments)
        normalized = normalize_path(path)
        parts = [p for p in normalized.split("/") if p]
        assert ".." not in parts and "." not in parts

    @given(path_segments)
    def test_always_absolute(self, segments):
        path = "/" + "/".join(segments)
        assert normalize_path(path).startswith("/")

    @given(path_segments, path_segments)
    def test_concatenation_consistency(self, first, second):
        # normalize(a + b) == normalize(normalize(a) + b) for rooted a
        # whose normalized form ".." can no longer escape.
        a = "/" + "/".join(s for s in first if s not in ("..", "."))
        b = "/".join(second)
        combined = normalize_path(a.rstrip("/") + "/" + b)
        recombined = normalize_path(
            normalize_path(a).rstrip("/") + "/" + b
        )
        assert combined == recombined


class TestPermissionProperties:
    @given(st.integers(min_value=0, max_value=0o777))
    @settings(max_examples=60)
    def test_root_always_passes(self, mode):
        fs = FileSystem()
        fs.mkdirs("/d", ROOT)
        fs.create_file("/d/f", ROOT, mode)
        for want in (Mode.R, Mode.W, Mode.X):
            assert fs.access("/d/f", ROOT, want)

    @given(st.integers(min_value=0, max_value=0o777))
    @settings(max_examples=60)
    def test_owner_bits_decide_for_owner(self, mode):
        fs = FileSystem()
        owner = User.regular("o", 500)
        fs.mkdirs("/d", ROOT)
        fs.create_file("/d/f", owner, mode)
        expected_write = bool((mode >> 6) & Mode.W)
        assert fs.access("/d/f", owner, Mode.W) == expected_write

    @given(st.integers(min_value=0, max_value=0o777))
    @settings(max_examples=60)
    def test_other_bits_decide_for_stranger(self, mode):
        fs = FileSystem()
        stranger = User.regular("s", 600, gid=77)
        fs.mkdirs("/d", ROOT)
        fs.create_file("/d/f", ROOT, mode)
        expected_read = bool(mode & Mode.R)
        assert fs.access("/d/f", stranger, Mode.R) == expected_read


class TestSchedulerProperties:
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_two_thread_interleaving_count(self, n, m):
        def scripts(_world):
            return [
                ThreadScript.of(
                    "a", *[Step(f"s{i}", lambda w: None) for i in range(n)]
                ),
                ThreadScript.of(
                    "b", *[Step(f"s{i}", lambda w: None) for i in range(m)]
                ),
            ]

        scheduler = Scheduler(dict, scripts, lambda _w: False)
        assert scheduler.explore().total == comb(n + m, n)

    @given(st.lists(st.integers(min_value=1, max_value=3),
                    min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_multinomial_interleaving_count(self, lengths):
        def scripts(_world):
            return [
                ThreadScript.of(
                    f"t{index}",
                    *[Step(f"s{i}", lambda w: None) for i in range(n)],
                )
                for index, n in enumerate(lengths)
            ]

        scheduler = Scheduler(dict, scripts, lambda _w: False)
        total = sum(lengths)
        expected = factorial(total)
        for n in lengths:
            expected //= factorial(n)
        assert scheduler.explore().total == expected


class TestSocketProperties:
    @given(st.binary(min_size=0, max_size=4096),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=60)
    def test_chunked_recv_reassembles_stream(self, payload, chunk):
        socket = SimulatedSocket(payload)
        received = b""
        while True:
            result = socket.recv(chunk)
            if result.count <= 0:
                break
            received += result.data
        assert received == payload

    @given(st.binary(min_size=1, max_size=2048),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=60)
    def test_all_but_last_chunk_full(self, payload, chunk):
        socket = SimulatedSocket(payload)
        counts = []
        while True:
            result = socket.recv(chunk)
            if result.count <= 0:
                break
            counts.append(result.count)
        assert all(c == chunk for c in counts[:-1])
        assert 0 < counts[-1] <= chunk
