"""Filesystem tests: resolution, permissions, symlinks, terminals."""

import pytest

from repro.osmodel import (
    FileNotFound,
    FileSystem,
    FileType,
    FsError,
    Mode,
    NotADirectory,
    PermissionDenied,
    ROOT,
    SymlinkLoop,
    User,
    normalize_path,
)


@pytest.fixture
def tom():
    return User.regular("tom", 1000)


@pytest.fixture
def fs(tom):
    fs = FileSystem()
    fs.mkdirs("/etc", ROOT)
    fs.mkdirs("/usr", ROOT)
    fs.mkdir("/usr/tom", tom)
    fs.create_file("/etc/passwd", ROOT, 0o644, data=b"root:x:0:0\n")
    return fs


class TestNormalizePath:
    def test_collapses_dotdot(self):
        assert normalize_path("/dev/../etc/passwd") == "/etc/passwd"

    def test_collapses_dot_and_slashes(self):
        assert normalize_path("/a/./b//c") == "/a/b/c"

    def test_dotdot_at_root_clamped(self):
        assert normalize_path("/../../etc") == "/etc"

    def test_root(self):
        assert normalize_path("/") == "/"

    def test_idempotent(self):
        path = normalize_path("/a/b/../c")
        assert normalize_path(path) == path


class TestCreation:
    def test_create_and_read(self, fs):
        assert fs.read("/etc/passwd", ROOT) == b"root:x:0:0\n"

    def test_mkdirs_creates_ancestors(self, fs):
        fs.mkdirs("/var/log/app", ROOT)
        assert fs.exists("/var/log/app")

    def test_duplicate_create_rejected(self, fs):
        with pytest.raises(FsError):
            fs.create_file("/etc/passwd", ROOT)

    def test_create_in_missing_dir(self, fs):
        with pytest.raises(FileNotFound):
            fs.create_file("/nosuch/file", ROOT)

    def test_create_under_file_rejected(self, fs):
        with pytest.raises(NotADirectory):
            fs.create_file("/etc/passwd/sub", ROOT)

    def test_relative_path_rejected(self, fs):
        with pytest.raises(FsError):
            fs.lookup("etc/passwd")

    def test_listdir(self, fs, tom):
        fs.create_file("/usr/tom/a", tom)
        fs.create_file("/usr/tom/b", tom)
        assert list(fs.listdir("/usr/tom")) == ["a", "b"]

    def test_listdir_on_file(self, fs):
        with pytest.raises(NotADirectory):
            fs.listdir("/etc/passwd")


class TestPermissions:
    def test_owner_write(self, fs, tom):
        fs.create_file("/usr/tom/mine", tom, 0o644)
        assert fs.access("/usr/tom/mine", tom, Mode.W)

    def test_other_cannot_write_644(self, fs, tom):
        assert not fs.access("/etc/passwd", tom, Mode.W)

    def test_other_can_read_644(self, fs, tom):
        assert fs.access("/etc/passwd", tom, Mode.R)

    def test_root_bypasses(self, fs):
        assert fs.access("/etc/passwd", ROOT, Mode.W)

    def test_group_bits(self, fs):
        member = User.regular("m", 2000, gid=500)
        fs.create_file("/etc/groupfile", ROOT, 0o660)
        fs.lookup("/etc/groupfile").group_gid = 500
        assert fs.access("/etc/groupfile", member, Mode.W)

    def test_supplementary_groups(self, fs):
        member = User.regular("m", 2000, gid=100, groups=[500])
        fs.create_file("/etc/groupfile", ROOT, 0o660)
        fs.lookup("/etc/groupfile").group_gid = 500
        assert fs.access("/etc/groupfile", member, Mode.W)

    def test_open_write_denied(self, fs, tom):
        with pytest.raises(PermissionDenied):
            fs.open_write("/etc/passwd", tom)

    def test_world_writable(self, fs, tom):
        fs.create_file("/etc/utmp", ROOT, 0o666)
        inode = fs.open_write("/etc/utmp", tom)
        fs.write(inode, b"entry\n")
        assert b"entry" in fs.read("/etc/utmp", ROOT)

    def test_access_on_missing_file_false(self, fs, tom):
        assert not fs.access("/nosuch", tom, Mode.R)

    def test_read_denied(self, fs, tom):
        fs.create_file("/etc/shadow", ROOT, 0o600)
        with pytest.raises(PermissionDenied):
            fs.read("/etc/shadow", tom)


class TestSymlinks:
    def test_follow_on_lookup(self, fs, tom):
        fs.symlink("/usr/tom/link", "/etc/passwd", tom)
        assert fs.lookup("/usr/tom/link") is fs.lookup("/etc/passwd")

    def test_nofollow_sees_the_link(self, fs, tom):
        fs.symlink("/usr/tom/link", "/etc/passwd", tom)
        inode = fs.lookup("/usr/tom/link", follow_symlinks=False)
        assert inode.file_type is FileType.SYMLINK

    def test_intermediate_links_always_followed(self, fs, tom):
        fs.symlink("/usr/tom/dir", "/etc", tom)
        assert fs.lookup("/usr/tom/dir/passwd", follow_symlinks=False) \
            is fs.lookup("/etc/passwd")

    def test_resolve_path(self, fs, tom):
        fs.symlink("/usr/tom/x", "/etc/passwd", tom)
        assert fs.resolve_path("/usr/tom/x") == "/etc/passwd"

    def test_loop_detected(self, fs, tom):
        fs.symlink("/usr/tom/a", "/usr/tom/b", tom)
        fs.symlink("/usr/tom/b", "/usr/tom/a", tom)
        with pytest.raises(SymlinkLoop):
            fs.lookup("/usr/tom/a")

    def test_dangling_link(self, fs, tom):
        fs.symlink("/usr/tom/dead", "/nosuch", tom)
        with pytest.raises(FileNotFound):
            fs.lookup("/usr/tom/dead")

    def test_unlink_then_symlink_swap(self, fs, tom):
        # The xterm attack sequence as plain fs operations.
        fs.create_file("/usr/tom/x", tom, 0o666)
        fs.unlink("/usr/tom/x", tom)
        fs.symlink("/usr/tom/x", "/etc/passwd", tom)
        inode = fs.open_write("/usr/tom/x", ROOT)
        fs.write(inode, b"injected")
        assert b"injected" in fs.read("/etc/passwd", ROOT)

    def test_unlink_requires_parent_write(self, fs, tom):
        with pytest.raises(PermissionDenied):
            fs.unlink("/etc/passwd", tom)


class TestTerminals:
    def test_terminal_type(self, fs):
        fs.mkdirs("/dev/pts", ROOT)
        fs.create_terminal("/dev/pts/25", ROOT)
        assert fs.is_terminal("/dev/pts/25")

    def test_regular_file_not_terminal(self, fs):
        assert not fs.is_terminal("/etc/passwd")

    def test_missing_path_not_terminal(self, fs):
        assert not fs.is_terminal("/nosuch")

    def test_terminal_write_goes_to_scrollback(self, fs):
        fs.mkdirs("/dev/pts", ROOT)
        inode = fs.create_terminal("/dev/pts/25", ROOT)
        fs.write(inode, b"wall message")
        assert inode.terminal_output == [b"wall message"]

    def test_write_to_directory_rejected(self, fs):
        with pytest.raises(FsError):
            fs.write(fs.lookup("/etc"), b"x")


class TestUsers:
    def test_root_flag(self):
        assert ROOT.is_root
        assert not User.regular("u", 1).is_root

    def test_regular_cannot_be_uid0(self):
        with pytest.raises(ValueError):
            User.regular("fake", 0)

    def test_in_group(self):
        user = User.regular("u", 1, gid=10, groups=[20])
        assert user.in_group(10)
        assert user.in_group(20)
        assert not user.in_group(30)
