"""Figure 8 generic templates and Table 2 grid tests."""

import pytest

from repro.core import Domain, PfsmType, Predicate, in_range
from repro.models import (
    TABLE2_EXPECTED,
    all_paper_models,
    content_attribute_check,
    generic_operation,
    object_type_check,
    reference_consistency_check,
    table2_grid,
)


class TestTemplates:
    def test_object_type_check(self):
        pfsm = object_type_check(
            "T", "the input",
            Predicate(lambda obj: isinstance(obj, int), "is an integer"),
        )
        assert pfsm.check_type is PfsmType.OBJECT_TYPE
        assert pfsm.step(5).accepted
        assert pfsm.step("5").via_hidden_path  # no impl: hidden

    def test_content_attribute_check(self):
        pfsm = content_attribute_check("C", "the index", in_range(0, 100),
                                       impl=in_range(0, 100))
        assert pfsm.check_type is PfsmType.CONTENT_ATTRIBUTE
        assert pfsm.step(-1).foiled

    def test_reference_consistency_check(self):
        pfsm = reference_consistency_check(
            "R", "the pointer", Predicate(bool, "unchanged"))
        assert pfsm.check_type is PfsmType.REFERENCE_CONSISTENCY
        assert pfsm.step(False).via_hidden_path

    def test_default_activity_text(self):
        pfsm = object_type_check("T", "obj", Predicate(bool, "x"))
        assert "type" in pfsm.activity


class TestGenericOperation:
    def _preds(self):
        return (
            Predicate(lambda obj: isinstance(obj["value"], int), "int typed"),
            Predicate(lambda obj: 0 <= obj["value"] <= 10, "in bounds"),
            Predicate(lambda obj: obj["binding_ok"], "binding preserved"),
        )

    def test_secure_operation_rejects_each_violation(self):
        operation = generic_operation(*self._preds(), secure=True)
        assert operation.run({"value": 5, "binding_ok": True}).completed
        assert operation.run({"value": "x", "binding_ok": True}).foiled_by \
            == "TYPE"
        assert operation.run({"value": 50, "binding_ok": True}).foiled_by \
            == "CONTENT"
        assert operation.run({"value": 5, "binding_ok": False}).foiled_by \
            == "CONSISTENCY"

    def test_insecure_operation_rides_hidden_paths(self):
        operation = generic_operation(*self._preds(), secure=False)
        result = operation.run({"value": 50, "binding_ok": False})
        assert result.completed
        assert len(result.hidden_steps) == 2

    def test_check_order_matches_figure8(self):
        operation = generic_operation(*self._preds())
        assert [p.name for p in operation.pfsms] == \
            ["TYPE", "CONTENT", "CONSISTENCY"]


class TestTable2:
    def test_grid_matches_paper(self):
        grid = table2_grid(all_paper_models())
        derived = {}
        for cell in grid:
            derived.setdefault(cell.vulnerability, {})[cell.pfsm_name] = \
                cell.check_type
        assert derived == TABLE2_EXPECTED

    def test_sixteen_cells(self):
        assert len(table2_grid(all_paper_models())) == 16

    def test_content_attribute_most_common(self):
        # Section 6: "the most common cause ... is an incomplete content
        # and/or attribute check."
        grid = table2_grid(all_paper_models())
        counts = {}
        for cell in grid:
            counts[cell.check_type] = counts.get(cell.check_type, 0) + 1
        assert counts[PfsmType.CONTENT_ATTRIBUTE] == max(counts.values())

    def test_all_three_types_used(self):
        grid = table2_grid(all_paper_models())
        assert {cell.check_type for cell in grid} == set(PfsmType)

    def test_questions_populated(self):
        for cell in table2_grid(all_paper_models()):
            assert cell.question
