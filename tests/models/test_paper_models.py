"""Per-figure model tests: structure, exploit traversal, fixes."""

import pytest

from repro.apps.nullhttpd import NullHttpdVariant
from repro.core import PfsmType, hidden_path_report, minimal_foil_points
from repro.models import (
    ghttpd_model,
    iis_model,
    nullhttpd_model,
    rpc_statd_model,
    rwall_model,
    sendmail_model,
    xterm_model,
)


class TestSendmailFigure3:
    def test_structure(self):
        model = sendmail_model.build_model()
        assert len(model.operations) == 2
        assert model.pfsm_count == 3
        assert model.bugtraq_ids == (3163,)
        assert len(model.gates) == 1

    def test_exploit_uses_pfsm2_and_pfsm3(self):
        model = sendmail_model.build_model()
        result = model.run(sendmail_model.exploit_input())
        assert result.compromised
        hidden = [e.subject for e in result.trace.hidden_path_steps()]
        assert hidden == ["pFSM2", "pFSM3"]

    def test_wrapping_exploit_uses_all_three(self):
        model = sendmail_model.build_model()
        result = model.run(sendmail_model.wrapping_exploit_input())
        assert result.hidden_path_count == 3

    def test_benign(self):
        model = sendmail_model.build_model()
        assert not model.is_compromised_by(sendmail_model.benign_input())

    def test_patched(self):
        model = sendmail_model.build_model(patched=True)
        assert not model.is_compromised_by(sendmail_model.exploit_input())
        assert model.run(sendmail_model.benign_input()).compromised  # benign ok

    def test_check_types_match_table2(self):
        model = sendmail_model.build_model()
        types = [p.check_type for _op, p in model.all_pfsms()]
        assert types == [PfsmType.OBJECT_TYPE, PfsmType.CONTENT_ATTRIBUTE,
                         PfsmType.REFERENCE_CONSISTENCY]

    def test_hidden_path_domains(self):
        findings = hidden_path_report(
            sendmail_model.build_model(), sendmail_model.pfsm_domains()
        )
        assert {f.pfsm_name for f in findings} == {"pFSM1", "pFSM2", "pFSM3"}

    def test_gate_semantics(self):
        model = sendmail_model.build_model()
        result = model.run(sendmail_model.exploit_input())
        op2_obj = result.operation_results[1].outcomes[0].obj
        assert op2_obj == {"addr_setuid_unchanged": False}


class TestNullHttpdFigure4:
    def test_structure(self):
        model = nullhttpd_model.build_model()
        assert len(model.operations) == 3
        assert model.pfsm_count == 4
        assert model.bugtraq_ids == (5774, 6255)

    def test_5774_on_v05(self):
        model = nullhttpd_model.build_model(NullHttpdVariant.V0_5)
        result = model.run(nullhttpd_model.exploit_input_5774())
        assert result.compromised
        assert result.hidden_path_count == 4  # all four checks missing

    def test_5774_blocked_by_v051(self):
        model = nullhttpd_model.build_model(NullHttpdVariant.V0_5_1)
        assert not model.is_compromised_by(nullhttpd_model.exploit_input_5774())

    def test_6255_on_v051(self):
        model = nullhttpd_model.build_model(NullHttpdVariant.V0_5_1)
        result = model.run(nullhttpd_model.exploit_input_6255())
        assert result.compromised
        hidden = {e.subject for e in result.trace.hidden_path_steps()}
        assert "pFSM2" in hidden  # the newly discovered missing check
        assert "pFSM1" not in hidden  # contentLen check now present

    def test_6255_blocked_by_fixed(self):
        model = nullhttpd_model.build_model(NullHttpdVariant.FIXED)
        assert not model.is_compromised_by(nullhttpd_model.exploit_input_6255())

    def test_safe_unlink_blocks_everything(self):
        model = nullhttpd_model.build_model(NullHttpdVariant.V0_5,
                                            safe_unlink=True)
        assert not model.is_compromised_by(nullhttpd_model.exploit_input_5774())
        assert not model.is_compromised_by(nullhttpd_model.exploit_input_6255())

    def test_got_check_blocks_everything(self):
        model = nullhttpd_model.build_model(NullHttpdVariant.V0_5,
                                            check_got=True)
        assert not model.is_compromised_by(nullhttpd_model.exploit_input_5774())

    def test_benign(self):
        for variant in NullHttpdVariant:
            model = nullhttpd_model.build_model(variant)
            assert not model.is_compromised_by(nullhttpd_model.benign_input())

    def test_foil_points_5774(self):
        model = nullhttpd_model.build_model(NullHttpdVariant.V0_5)
        points = minimal_foil_points(model,
                                     nullhttpd_model.exploit_input_5774())
        assert {p.pfsm_name for p in points} == \
            {"pFSM1", "pFSM2", "pFSM3", "pFSM4"}

    def test_foil_points_6255_exclude_pfsm1(self):
        # The #6255 exploit survives a correct contentLen check: fixing
        # pFSM1 alone cannot foil it.
        model = nullhttpd_model.build_model(NullHttpdVariant.V0_5)
        points = minimal_foil_points(model,
                                     nullhttpd_model.exploit_input_6255())
        assert "pFSM1" not in {p.pfsm_name for p in points}
        assert "pFSM2" in {p.pfsm_name for p in points}


class TestXtermFigure5:
    def test_structure(self):
        model = xterm_model.build_model()
        assert len(model.operations) == 1
        assert model.pfsm_count == 2

    def test_pfsm1_is_secure(self):
        # The paper: "there is no hidden path in pFSM1".
        model = xterm_model.build_model()
        findings = hidden_path_report(model, xterm_model.pfsm_domains())
        assert {f.pfsm_name for f in findings} == {"pFSM2"}

    def test_exploit(self):
        model = xterm_model.build_model()
        result = model.run(xterm_model.exploit_input())
        assert result.compromised
        assert result.hidden_path_count == 1

    def test_no_permission_foiled_at_pfsm1(self):
        model = xterm_model.build_model()
        result = model.run({
            "has_write_permission": False,
            "is_symlink_at_check": False,
            "symlink_created_in_window": True,
        })
        assert not result.compromised
        assert result.foiled_at == "pFSM1"

    def test_recheck_forecloses(self):
        model = xterm_model.build_model(recheck=True)
        assert not model.is_compromised_by(xterm_model.exploit_input())


class TestRwallFigure6:
    def test_structure(self):
        model = rwall_model.build_model()
        assert len(model.operations) == 2
        assert model.pfsm_count == 2

    def test_exploit(self):
        model = rwall_model.build_model()
        result = model.run(rwall_model.exploit_input())
        assert result.compromised
        assert result.hidden_path_count == 2

    def test_type_grid(self):
        model = rwall_model.build_model()
        types = {p.name: p.check_type for _op, p in model.all_pfsms()}
        assert types["pFSM1"] is PfsmType.CONTENT_ATTRIBUTE
        assert types["pFSM2"] is PfsmType.OBJECT_TYPE

    def test_either_fix_forecloses(self):
        exploit = rwall_model.exploit_input()
        assert not rwall_model.build_model(
            utmp_root_only=True).is_compromised_by(exploit)
        assert not rwall_model.build_model(
            type_check=True).is_compromised_by(exploit)

    def test_root_with_terminal_benign(self):
        model = rwall_model.build_model()
        assert not model.is_compromised_by(rwall_model.benign_input())

    def test_entry_is_terminal(self):
        assert rwall_model.entry_is_terminal("pts/25")
        assert not rwall_model.entry_is_terminal("../etc/passwd")


class TestIisFigure7:
    def test_structure(self):
        model = iis_model.build_model()
        assert model.pfsm_count == 1
        assert model.bugtraq_ids == (2708,)

    def test_impl_rej_exists_but_wrong(self):
        # Unlike the other studies, IIS *does* check — the wrong thing.
        model = iis_model.build_model()
        pfsm = model.operations[0].pfsms[0]
        assert pfsm.has_check
        assert pfsm.takes_hidden_path("..%252fwinnt/cmd.exe")

    def test_exploit(self):
        model = iis_model.build_model()
        assert model.is_compromised_by(iis_model.exploit_input())

    def test_single_encoding_foiled(self):
        model = iis_model.build_model()
        result = model.run("..%2fwinnt/cmd.exe")
        assert not result.compromised
        assert result.foiled_at == "pFSM1"

    def test_patched(self):
        model = iis_model.build_model(patched=True)
        assert not model.is_compromised_by(iis_model.exploit_input())
        assert model.run(iis_model.benign_input()).compromised

    def test_hidden_witnesses_are_double_encoded(self):
        findings = hidden_path_report(iis_model.build_model(),
                                      iis_model.pfsm_domains())
        (finding,) = findings
        assert all("%25" in w for w in finding.witnesses)


class TestGhttpdModel:
    def test_exploit_and_fixes(self):
        exploit = ghttpd_model.exploit_input()
        assert ghttpd_model.build_model().is_compromised_by(exploit)
        assert not ghttpd_model.build_model(
            length_check=True).is_compromised_by(exploit)
        assert not ghttpd_model.build_model(
            return_protection=True).is_compromised_by(exploit)

    def test_boundary(self):
        model = ghttpd_model.build_model()
        assert not model.is_compromised_by(
            {"message": b"A" * ghttpd_model.LOG_BUFFER_SIZE})
        assert model.is_compromised_by(
            {"message": b"A" * (ghttpd_model.LOG_BUFFER_SIZE + 1)})

    def test_types(self):
        model = ghttpd_model.build_model()
        types = [p.check_type for _op, p in model.all_pfsms()]
        assert types == [PfsmType.CONTENT_ATTRIBUTE,
                         PfsmType.REFERENCE_CONSISTENCY]


class TestStatdModel:
    def test_exploit_and_fixes(self):
        exploit = rpc_statd_model.exploit_input()
        assert rpc_statd_model.build_model().is_compromised_by(exploit)
        assert not rpc_statd_model.build_model(
            sanitize=True).is_compromised_by(exploit)

    def test_read_only_directives_not_a_compromise(self):
        # %x leaks but does not redirect control in this model.
        model = rpc_statd_model.build_model()
        result = model.run({"filename": b"%x%x%x"})
        # pFSM1 hidden (directives present), but the gate carries
        # return_address_unchanged=True, so pFSM2 takes SPEC_ACPT.
        assert result.hidden_path_count == 1

    def test_benign(self):
        model = rpc_statd_model.build_model()
        assert not model.is_compromised_by(rpc_statd_model.benign_input())
