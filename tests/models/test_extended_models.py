"""Tests for the extended model set (#5493, #3958, #1387) and the
extended accessors."""

import pytest

from repro.core import (
    check_lemma_part1,
    check_lemma_part2,
    hidden_path_report,
    minimal_foil_points,
)
from repro.models import (
    all_extended_benign_inputs,
    all_extended_exploit_inputs,
    all_extended_models,
    all_extended_operation_domains,
    all_extended_pfsm_domains,
    all_paper_models,
    freebsd_model,
    rsync_model,
    wuftpd_model,
)

EXTENDED_ONLY = [
    "FreeBSD Signed Integer Buffer Overflow",
    "rsync Signed Array Index",
    "wu-ftpd SITE EXEC Format String",
    "icecast print_client() Format String",
    "splitvt Format String Vulnerability",
]


class TestFreebsdModel:
    def test_exploit(self):
        model = freebsd_model.build_model()
        result = model.run(freebsd_model.exploit_input())
        assert result.compromised
        assert result.hidden_path_count == 2

    def test_benign(self):
        model = freebsd_model.build_model()
        assert not model.is_compromised_by(freebsd_model.benign_input())

    def test_patched(self):
        model = freebsd_model.build_model(patched=True)
        assert not model.is_compromised_by(freebsd_model.exploit_input())

    def test_foil_points(self):
        model = freebsd_model.build_model()
        points = minimal_foil_points(model, freebsd_model.exploit_input())
        assert {p.pfsm_name for p in points} == {"pFSM1", "pFSM2"}

    def test_hidden_report(self):
        findings = hidden_path_report(freebsd_model.build_model(),
                                      freebsd_model.pfsm_domains())
        assert {f.pfsm_name for f in findings} == {"pFSM1", "pFSM2"}


class TestRsyncModel:
    def test_exploit(self):
        model = rsync_model.build_model()
        result = model.run(rsync_model.exploit_input())
        assert result.compromised
        assert result.hidden_path_count == 2

    def test_either_fix_forecloses(self):
        exploit = rsync_model.exploit_input()
        assert not rsync_model.build_model(
            patched=True).is_compromised_by(exploit)
        assert not rsync_model.build_model(
            guarded=True).is_compromised_by(exploit)

    def test_benign(self):
        assert not rsync_model.build_model().is_compromised_by(
            rsync_model.benign_input()
        )

    def test_overlarge_opcode_foiled(self):
        model = rsync_model.build_model()
        result = model.run({"opcode": 100})
        assert not result.compromised
        assert result.foiled_at == "pFSM1"


class TestWuftpdModel:
    def test_exploit(self):
        model = wuftpd_model.build_model()
        result = model.run(wuftpd_model.exploit_input())
        assert result.compromised
        assert result.hidden_path_count == 2

    def test_sanitize_forecloses(self):
        assert not wuftpd_model.build_model(
            sanitize=True).is_compromised_by(wuftpd_model.exploit_input())

    def test_benign(self):
        assert not wuftpd_model.build_model().is_compromised_by(
            wuftpd_model.benign_input()
        )

    def test_leak_only_not_compromise(self):
        model = wuftpd_model.build_model()
        result = model.run({"args": b"%x%x"})
        assert result.hidden_path_count == 1  # directive, but no %n write


class TestExtendedAccessors:
    def test_superset_of_paper_models(self):
        extended = all_extended_models()
        paper = all_paper_models()
        assert set(paper) <= set(extended)
        assert len(extended) == len(paper) + 6

    @pytest.mark.parametrize("label", EXTENDED_ONLY)
    def test_exploits_and_benigns(self, label):
        model = all_extended_models()[label]
        assert model.is_compromised_by(all_extended_exploit_inputs()[label])
        assert not model.is_compromised_by(all_extended_benign_inputs()[label])

    @pytest.mark.parametrize("label", EXTENDED_ONLY)
    def test_lemma_holds(self, label):
        model = all_extended_models()[label]
        exploit = all_extended_exploit_inputs()[label]
        domains = all_extended_operation_domains()[label]
        assert check_lemma_part2(model, exploit)
        for operation in model.operations:
            assert check_lemma_part1(operation, domains[operation.name])

    @pytest.mark.parametrize("label", EXTENDED_ONLY)
    def test_pfsm_domains_find_hidden_paths(self, label):
        model = all_extended_models()[label]
        findings = hidden_path_report(model,
                                      all_extended_pfsm_domains()[label])
        assert findings
