"""Service statistics: latency percentiles, derived rates, obs mirror."""

from repro import obs
from repro.serve import LatencyWindow, ServeStats


class TestLatencyWindow:
    def test_empty_window(self):
        window = LatencyWindow()
        assert window.percentile(50) is None
        assert window.snapshot() == {"count": 0, "p50_ms": None,
                                     "p95_ms": None, "max_ms": None}

    def test_nearest_rank_percentiles(self):
        window = LatencyWindow()
        for ms in range(1, 101):  # 1..100 ms
            window.record(ms / 1000.0)
        snapshot = window.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50_ms"] == 50.0  # nearest-rank, not midpoint
        assert snapshot["p95_ms"] == 96.0
        assert snapshot["max_ms"] == 100.0

    def test_window_is_bounded_but_count_is_total(self):
        window = LatencyWindow(maxlen=8)
        for _ in range(100):
            window.record(0.001)
        window.record(1.0)
        snapshot = window.snapshot()
        assert snapshot["count"] == 101
        assert snapshot["max_ms"] == 1000.0
        assert len(window._samples) == 8


class TestServeStats:
    def test_counters_and_gauges(self):
        stats = ServeStats()
        stats.incr("requests.query")
        stats.incr("requests.query", 2)
        stats.gauge("queue.depth", 7)
        snapshot = stats.snapshot()
        assert snapshot["counters"]["requests.query"] == 3
        assert snapshot["gauges"]["queue.depth"] == 7
        assert stats.counter("requests.query") == 3
        assert stats.counter("never") == 0

    def test_derived_rates(self):
        stats = ServeStats()
        for _ in range(10):
            stats.incr("requests.query")
        stats.incr("coalesced", 2)
        stats.incr("requests.cached", 5)
        stats.incr("cache.memo_hits", 3)
        stats.incr("cache.store_hits", 1)
        stats.incr("cache.misses", 4)
        stats.incr("shed.overload", 2)
        stats.incr("shed.deadline")
        derived = stats.snapshot()["derived"]
        assert derived["coalesce_rate"] == 0.2
        assert derived["request_cache_hit_rate"] == 0.5
        assert derived["task_cache_hit_rate"] == 0.5
        assert derived["shed_total"] == 3

    def test_zero_queries_zero_rates(self):
        derived = ServeStats().snapshot()["derived"]
        assert derived["coalesce_rate"] == 0.0
        assert derived["request_cache_hit_rate"] == 0.0
        assert derived["task_cache_hit_rate"] == 0.0

    def test_mirrored_to_obs_when_enabled(self):
        stats = ServeStats()
        stats.incr("before.enable")  # not mirrored: registry disabled
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            stats.incr("requests.query")
            stats.gauge("queue.depth", 3)
            stats.record_latency(0.002)
            stats.snapshot()
            counters = registry.counters()
            gauges = registry.gauges()
        finally:
            registry.disable()
            registry.reset()
        assert counters["serve.requests.query"] == 1
        assert "serve.before.enable" not in counters
        assert gauges["serve.queue.depth"] == 3
        assert gauges["serve.latency.p50_ms"] == 2.0

    def test_empty_window_resets_mirrored_gauges(self):
        """An empty-at-snapshot window must zero the obs gauges rather
        than leave a previous snapshot's percentiles standing."""
        registry = obs.get_registry()
        stats = ServeStats()
        registry.enable()
        try:
            stats.record_latency(0.002)
            stats.snapshot()
            assert registry.gauges()["serve.latency.p50_ms"] == 2.0
            # a fresh stats object with no samples snapshots next: the
            # stale 2.0 must not survive
            ServeStats().snapshot()
            gauges = registry.gauges()
        finally:
            registry.disable()
            registry.reset()
        assert gauges["serve.latency.p50_ms"] == 0.0
        assert gauges["serve.latency.p95_ms"] == 0.0


class TestStageHistograms:
    def test_observe_lands_in_named_stage(self):
        stats = ServeStats()
        stats.observe("engine", 0.002)
        stats.observe("engine", 0.2)
        stats.observe("queue_wait", 0.0001)
        histograms = stats.histograms()
        assert histograms["engine"]["count"] == 2
        assert histograms["queue_wait"]["count"] == 1
        assert "cache_write" not in histograms  # lazily created

    def test_record_latency_feeds_the_request_stage(self):
        stats = ServeStats()
        stats.record_latency(0.05)
        assert stats.histograms()["request"]["count"] == 1
        assert stats.latency.snapshot()["count"] == 1

    def test_custom_buckets_apply_to_every_stage(self):
        stats = ServeStats(buckets=(0.1, 1.0))
        stats.observe("engine", 0.05)
        snap = stats.histograms()["engine"]
        assert [b for b, _ in snap["buckets"]] == [0.1, 1.0]
        assert snap["buckets"][0][1] == 1

    def test_histograms_appear_on_snapshot(self):
        stats = ServeStats()
        stats.observe("batch_window", 0.003)
        snapshot = stats.snapshot()
        assert snapshot["histograms"]["batch_window"]["count"] == 1
