"""Sub-predicate batch fusion in the micro-batcher's thread dispatch:
same-domain compiled tasks share one pass and one CSE memo, and the
fused results are exactly what per-task dispatch would produce."""

import pytest

from repro import obs
from repro.core import (
    Domain,
    PrimitiveFSM,
    contains,
    in_range,
    is_instance,
    length_le,
    less_equal,
    not_contains,
    satisfies_all,
)
from repro.core import plan
from repro.core.sweep import _run_tasks, shared_cache
from repro.serve.batcher import _engine_compute, _fusion_groups


@pytest.fixture(autouse=True)
def _fresh_planner():
    plan.reset()
    yield
    plan.reset()


def _witnesses(results):
    return [tuple(r.witnesses) if r is not None else None for r in results]


def _string_tasks(domain, limit=5):
    def shared():
        return satisfies_all(is_instance(str), length_le(64),
                             not_contains("%n"))

    pfsms = [
        PrimitiveFSM("pa", "scan", "x",
                     spec_accepts=satisfies_all(shared(),
                                                not_contains("%s")),
                     impl_accepts=length_le(200)),
        PrimitiveFSM("pb", "scan", "x",
                     spec_accepts=satisfies_all(shared(), contains("/")),
                     impl_accepts=length_le(200)),
        PrimitiveFSM("pc", "scan", "x", spec_accepts=shared(),
                     impl_accepts=length_le(120)),
    ]
    return [("m", "op", p, domain, limit) for p in pfsms]


class TestFusionGrouping:
    def test_same_domain_compiled_tasks_group(self):
        domain = Domain(["ok", "%n" * 40, "x" * 100, "a/b"] * 5)
        tasks = _string_tasks(domain)
        groups, programs = _fusion_groups(tasks)
        assert groups == [[0, 1, 2]]
        assert set(programs) == {0, 1, 2}

    def test_distinct_domains_do_not_group(self):
        d1 = Domain(["ok", "%n" * 40])
        d2 = Domain(["a/b", "x" * 100])
        tasks = _string_tasks(d1)[:1] + _string_tasks(d2)[1:2]
        groups, _programs = _fusion_groups(tasks)
        assert groups == []  # singleton digests never fuse

    def test_interval_fastpath_tasks_stay_out(self):
        pfsm = PrimitiveFSM("pi", "scan", "x", spec_accepts=in_range(0, 5),
                            impl_accepts=less_equal(10))
        domain = Domain.integers(-5, 15)
        tasks = [("m", "op", pfsm, domain, 5)] * 2
        groups, _programs = _fusion_groups(tasks)
        assert groups == []

    def test_disabled_planner_never_fuses(self):
        domain = Domain(["ok", "%n" * 40] * 3)
        with plan.disabled():
            groups, programs = _fusion_groups(_string_tasks(domain))
        assert groups == [] and programs == {}


class TestFusedCompute:
    def test_fused_results_match_per_task_dispatch(self):
        domain = Domain(
            ["a" * 10, "%n" * 40, "x" * 100, "ok", "%s%s", "a/b"] * 30)
        tasks = _string_tasks(domain, limit=7)
        fused = _engine_compute(tasks, [None] * len(tasks), 2, "thread")
        plan.reset()  # recompile from scratch for the baseline
        baseline = _run_tasks(tasks, 2, "thread", cache=shared_cache())
        assert _witnesses(fused) == _witnesses(baseline)

    def test_per_member_limits_are_respected(self):
        domain = Domain(["%n" * 40] * 50)  # every object is a witness
        tasks = _string_tasks(domain, limit=3)
        fused = _engine_compute(tasks, [None] * len(tasks), 2, "thread")
        for finding in fused:
            assert finding is not None and len(finding.witnesses) == 3

    def test_fusion_counters_emitted(self):
        domain = Domain(["ok", "%n" * 40, "a/b"] * 10)
        tasks = _string_tasks(domain)
        sink = obs.MemorySink()
        registry = obs.get_registry()
        registry.reset()
        registry.enable(sink)
        try:
            _engine_compute(tasks, [None] * len(tasks), 2, "thread")
            counters = registry.counters()
        finally:
            registry.disable()
            registry.clear_sinks()
            registry.reset()
        assert counters.get("serve.batch.fused_groups") == 1
        assert counters.get("serve.batch.fused_tasks") == 3
        assert counters.get("sweep.scans.compiled") == 3
        # accounting parity with the per-task dispatch path
        assert counters.get("sweep.tasks.queued") == \
            counters.get("sweep.tasks.completed") == 3
        assert len(sink.spans("sweep.task")) == 3

    def test_mixed_batch_leftovers_still_computed(self):
        str_domain = Domain(["ok", "%n" * 40, "a/b"] * 10)
        pfsm = PrimitiveFSM("pi", "scan", "x", spec_accepts=in_range(0, 5),
                            impl_accepts=less_equal(10))
        tasks = _string_tasks(str_domain) + \
            [("m", "op", pfsm, Domain.integers(-5, 15), 5)]
        fused = _engine_compute(tasks, [None] * len(tasks), 2, "thread")
        plan.reset()
        baseline = _run_tasks(tasks, 2, "thread", cache=shared_cache())
        assert _witnesses(fused) == _witnesses(baseline)
