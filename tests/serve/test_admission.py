"""Admission control: the bounded queue and per-request deadlines."""

import asyncio

import pytest

from repro.serve import AdmissionQueue, AdmittedRequest


def run(coro):
    return asyncio.run(coro)


class TestOffer:
    def test_fifo_until_full_then_refuse(self):
        queue = AdmissionQueue(2)
        assert queue.offer("a") is True
        assert queue.offer("b") is True
        assert queue.offer("c") is False  # refuse, never block
        assert queue.depth() == 2
        assert queue.get_nowait() == "a"
        assert queue.offer("c") is True  # space freed → admitted again

    def test_closed_queue_refuses(self):
        queue = AdmissionQueue(8)
        queue.close()
        assert queue.closed
        assert queue.offer("a") is False

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestAsyncGet:
    def test_get_drains_backlog_then_none_after_close(self):
        async def scenario():
            queue = AdmissionQueue(4)
            queue.offer("a")
            queue.offer("b")
            queue.close()
            return [await queue.get(), await queue.get(), await queue.get()]

        assert run(scenario()) == ["a", "b", None]

    def test_get_wakes_on_offer(self):
        async def scenario():
            queue = AdmissionQueue(4)
            waiter = asyncio.get_running_loop().create_task(queue.get())
            await asyncio.sleep(0.01)
            assert not waiter.done()  # parked, nothing queued
            queue.offer("x")
            return await asyncio.wait_for(waiter, 1.0)

        assert run(scenario()) == "x"

    def test_get_wakes_on_close(self):
        async def scenario():
            queue = AdmissionQueue(4)
            waiter = asyncio.get_running_loop().create_task(queue.get())
            await asyncio.sleep(0.01)
            queue.close()
            return await asyncio.wait_for(waiter, 1.0)

        assert run(scenario()) is None

    def test_timed_out_waiter_loses_no_work(self):
        # The batcher wraps get() in wait_for; a timeout must not eat
        # an item that arrives later.
        async def scenario():
            queue = AdmissionQueue(4)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(queue.get(), 0.05)
            queue.offer("survivor")
            return await asyncio.wait_for(queue.get(), 1.0)

        assert run(scenario()) == "survivor"


class TestDeadlines:
    def test_expired(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            item = AdmittedRequest(
                query=None, future=loop.create_future(),
                enqueued_at=loop.time(), deadline_at=loop.time() + 10.0,
            )
            assert not item.expired(loop.time())
            assert item.expired(item.deadline_at + 0.001)

        run(scenario())

    def test_no_deadline_never_expires(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            item = AdmittedRequest(
                query=None, future=loop.create_future(),
                enqueued_at=loop.time(),
            )
            assert not item.expired(loop.time() + 1e9)

        run(scenario())
