"""The tiered result cache: memo over JSONL store, shared with dist."""

import pytest

from repro.core import dist
from repro.core.sweep import SweepFinding
from repro.serve import TieredResultCache
from repro.serve.stats import ServeStats


@pytest.fixture(autouse=True)
def _fresh_scheduler():
    dist.reset()
    yield
    dist.reset()


def _finding(tag="w"):
    return SweepFinding(model_name="M", operation_name="op",
                        pfsm_name="p", activity="scan", witnesses=(tag,))


class TestMemoTier:
    def test_insert_then_memo_hit(self):
        cache = TieredResultCache()
        assert cache.lookup("k1") == (None, None)
        finding = _finding()
        cache.insert("k1", finding)
        assert cache.lookup("k1") == ("memo", finding)

    def test_none_finding_is_a_hit_not_a_miss(self):
        # "Scanned, clean" must be cacheable — a None result is not
        # the same as never having computed.
        cache = TieredResultCache()
        cache.insert("clean", None)
        assert cache.lookup("clean") == ("memo", None)

    def test_shared_with_dist_memo(self):
        # The warm tier IS the scheduler's memo: results installed by
        # either side are visible to the other.
        cache = TieredResultCache()
        finding = _finding()
        dist.memo_store("shared", finding)
        assert cache.lookup("shared") == ("memo", finding)
        cache.insert("mine", finding)
        assert dist.memo_lookup("mine") == (True, finding)

    def test_none_key_misses(self):
        assert TieredResultCache().lookup(None) == (None, None)


class TestStoreTier:
    def test_flush_persists_and_reloads(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        cache = TieredResultCache(path)
        finding = _finding()
        cache.insert("k1", finding)
        cache.insert("k2", None)
        assert cache.flush() == 2
        assert cache.flush() == 0  # buffer drained

        dist.clear_memo()
        reloaded = TieredResultCache(path)
        assert reloaded.store_keys == 2
        tier, got = reloaded.lookup("k1")
        assert tier == "store"
        assert got.witnesses == finding.witnesses

    def test_store_hit_promotes_to_memo(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        cache = TieredResultCache(path)
        cache.insert("k1", _finding())
        cache.flush()

        dist.clear_memo()
        warm = TieredResultCache(path)
        assert warm.lookup("k1")[0] == "store"
        assert warm.lookup("k1")[0] == "memo"  # promoted

    def test_duplicate_insert_not_rewritten(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        cache = TieredResultCache(path)
        cache.insert("k1", _finding())
        cache.insert("k1", _finding())
        assert cache.flush() == 1

    def test_flush_counts_to_stats(self, tmp_path):
        stats = ServeStats()
        cache = TieredResultCache(str(tmp_path / "r.jsonl"), stats=stats)
        cache.insert("k1", _finding())
        cache.flush()
        assert stats.snapshot()["counters"]["cache.flushed"] == 1

    def test_storeless_cache_flush_is_noop(self):
        cache = TieredResultCache()
        cache.insert("k1", _finding())
        assert cache.flush() == 0
        assert cache.store_keys == 0

class TestInvalidation:
    def test_invalidate_evicts_registered_keys(self):
        cache = TieredResultCache()
        cache.register("m", ("k1", None, "k2"))
        cache.insert("k1", _finding())
        cache.insert("k2", None)
        assert cache.invalidate("m") == 2
        assert cache.lookup("k1") == (None, None)
        assert cache.lookup("k2") == (None, None)
        assert cache.invalidate("m") == 0  # registration consumed

    def test_invalidate_drops_buffered_store_appends(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        cache = TieredResultCache(path)
        cache.register("m", ("k1",))
        cache.insert("k1", _finding())
        cache.insert("other", _finding("o"))
        assert cache.invalidate("m") == 1
        assert cache.flush() == 1  # only the unaffected record persists
        assert set(dist.ResultStore(path).load()) == {"other"}

    def test_invalidate_counts_to_stats(self):
        stats = ServeStats()
        cache = TieredResultCache(stats=stats)
        cache.register("m", ("k1",))
        cache.insert("k1", _finding())
        cache.invalidate("m")
        assert stats.snapshot()["counters"]["cache.invalidated"] == 1


class TestMutatedModelStaleness:
    """A model mutated in place must not keep serving pre-mutation
    results through the expansion memo and the tiered cache."""

    def _corpus_and_model(self):
        from repro.core import (Domain, Operation, PrimitiveFSM,
                                VulnerabilityModel, in_range, less_equal)
        from repro.serve.corpus import AnalysisCorpus

        spec = in_range(0, 5)
        pfsm = PrimitiveFSM("p", "scan", "x", spec_accepts=spec,
                            impl_accepts=less_equal(10))
        model = VulnerabilityModel("m", [Operation("op", "x", [pfsm])])
        corpus = AnalysisCorpus(
            models={"m-label": model},
            domains={"m-label": {"p": Domain.integers(-5, 15)}},
            keys={"m": "m-label"},
        )
        return corpus, spec

    def test_rebind_changes_fingerprint_and_task_keys(self):
        corpus, spec = self._corpus_and_model()
        first = corpus.expand("m", 5)
        assert first is corpus.expand("m", 5)  # memoized while unchanged
        assert first.task_keys[0] is not None

        from repro.core.sweep import _scan_task
        cache = TieredResultCache()
        cache.register("m", first.task_keys)
        stale = _scan_task(first.tasks[0])
        assert stale is not None  # (0..5 spec) x (<=10 impl): hidden
        cache.insert(first.task_keys[0], stale)

        spec.rebind(lambda x: True)  # secure the check: spec = accept all
        second = corpus.expand("m", 5)
        assert second is not first
        assert second.fingerprint != first.fingerprint
        # The rebound predicate is opaque: no stable identity, so the
        # stale cached finding is unreachable and the task recomputes.
        assert second.task_keys[0] is None
        assert _scan_task(second.tasks[0]) is None  # nothing hidden now

    def test_corpus_invalidate_drops_memoized_expansions(self):
        corpus, _spec = self._corpus_and_model()
        corpus.expand("m", 5)
        corpus.expand("m", 9)
        assert corpus.invalidate("m") == 2
        assert corpus.invalidate("m") == 0


class TestStoreInterop:
    def test_interoperates_with_sweep_resume_store(self, tmp_path):
        # A store the server wrote is a valid --resume-from store.
        path = str(tmp_path / "results.jsonl")
        cache = TieredResultCache(path)
        cache.insert("k1", _finding())
        cache.flush()
        loaded = dist.ResultStore(path).load()
        assert set(loaded) == {"k1"}
        assert loaded["k1"].witnesses == ("w",)
