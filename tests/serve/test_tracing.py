"""End-to-end request tracing through the serving pipeline.

The acceptance scenario for the tracing layer: a traced request through
a process-backend server must reassemble into ONE trace containing the
admission span, the batch span (linked to every coalesced request), the
dist-chunk spans, and the worker-side engine spans shipped back from
the pool processes.  The suite also covers coalesced-link fan-in,
traceparent continuation, head-sampling drops with tail keeps, and the
cross-process span-inheritance contract at the dist layer directly.
"""

import os
import threading
import time

import pytest

from repro import obs
from repro.core import (
    Domain,
    Operation,
    PrimitiveFSM,
    VulnerabilityModel,
    in_range,
    less_equal,
)
from repro.core import dist
from repro.obs import MemorySink
from repro.obs.trace import TraceContext
from repro.serve import (
    AnalysisCorpus,
    ServeClient,
    ServeConfig,
    ServerThread,
)

TOY_NAME = "Toy Overflow"


@pytest.fixture(autouse=True)
def _fresh_scheduler():
    dist.reset()
    yield
    dist.reset()
    registry = obs.get_registry()
    registry.disable()
    registry.clear_sinks()
    registry.reset()


def toy_model(clean=False):
    impl1 = in_range(0, 5) if clean else less_equal(10)
    impl2 = in_range(0, 5) if clean else less_equal(50)
    pfsm1 = PrimitiveFSM("pFSM1", "accept input x", "x",
                         spec_accepts=in_range(0, 5), impl_accepts=impl1)
    pfsm2 = PrimitiveFSM("pFSM2", "store x", "x",
                         spec_accepts=in_range(0, 5), impl_accepts=impl2)
    op = Operation("write x", "the input integer", [pfsm1, pfsm2])
    return VulnerabilityModel(TOY_NAME, [op])


def toy_domains():
    return {TOY_NAME: {"pFSM1": Domain(range(-5, 20)),
                       "pFSM2": Domain(range(-5, 60))}}


def toy_corpus(clean=False):
    return AnalysisCorpus(models={TOY_NAME: toy_model(clean=clean)},
                          domains=toy_domains(),
                          keys={"toy": TOY_NAME})


def traced_server(**overrides):
    clean = overrides.pop("clean", False)
    config = dict(port=0, batch_window=0.005, drain_grace=2.0, trace=True)
    config.update(overrides)
    return ServerThread(ServeConfig(**config),
                        corpus=toy_corpus(clean=clean))


def client_for(handle):
    return ServeClient(handle.host, handle.port, timeout=30.0)


def span_names(record):
    return [span["name"] for span in record["spans"]]


def record_for(handle, trace_id):
    for record in handle.server.tracer.traces():
        if record["trace_id"] == trace_id:
            return record
    return None


class TestEndToEndProcessBackend:
    def test_one_request_reassembles_one_cross_process_trace(self):
        handle = traced_server(backend="process", workers=2).start()
        try:
            with client_for(handle) as client:
                response = client.query("toy", limit=8, trace=True)
            assert response["status"] == "ok"
            assert response["vulnerable"] is True
            trace_id = response["trace_id"]
            assert len(trace_id) == 32

            record = record_for(handle, trace_id)
            assert record is not None
            names = span_names(record)
            # every stage of the pipeline is present in ONE trace
            assert "serve.admission" in names
            assert "serve.queue_wait" in names
            assert "serve.batch" in names
            assert "serve.cache_write" in names
            assert "serve.request" in names
            assert "dist.chunk" in names
            # all spans agree on the trace or link into it
            for span in record["spans"]:
                assert span["trace_id"] == trace_id or any(
                    link["trace_id"] == trace_id
                    for link in span.get("links", ()))

            # the batch span links back to this request's context
            batch = next(s for s in record["spans"]
                         if s["name"] == "serve.batch")
            assert any(link["trace_id"] == trace_id
                       for link in batch["links"])
            assert batch["attrs"]["backend"] == "process"

            # worker-side engine spans were shipped back from the pool:
            # they carry a foreign pid and parent under a dist.chunk
            # span's id (the context the chunk shipped with)
            remote = [s for s in record["spans"] if s.get("pid")]
            assert remote, "no worker-side spans were replayed"
            assert all(s["pid"] != os.getpid() for s in remote)
            chunk_hexes = {s["trace_span"] for s in record["spans"]
                           if s["name"] == "dist.chunk"}
            remote_hexes = {s["trace_span"] for s in remote}
            for span in remote:
                assert span["trace_parent"] in chunk_hexes | remote_hexes

            # the client asked for the timeline and got it
            timeline = response["trace"]
            assert [row["name"] for row in timeline]
            assert any(row["remote"] for row in timeline)
            assert all(row["offset_ms"] >= 0.0 for row in timeline)
        finally:
            handle.shutdown()
        # the server owned the obs registry and restored it on drain
        assert not obs.get_registry().enabled

    def test_worker_spans_inherit_chunk_context_at_dist_layer(self):
        """Satellite contract: under the process backend, a pool
        worker's root spans parent under the context its chunk shipped
        with — no orphan spans across the process boundary."""
        registry = obs.get_registry()
        sink = MemorySink()
        ctx = TraceContext.mint()
        registry.enable(sink)
        previous = registry.set_trace(ctx)
        try:
            model = toy_model()
            domains = toy_domains()[TOY_NAME]
            tasks = [(TOY_NAME, op.name, pfsm, domains[pfsm.name], 5)
                     for op, pfsm in model.all_pfsms()]
            findings = dist.run_tasks(tasks, workers=2, backend="process")
            assert len(findings) == len(tasks)
        finally:
            registry.set_trace(previous)
            registry.disable()
            registry.clear_sinks()
            registry.reset()
        spans = [e for e in sink.events if e.get("type") == "span"]
        assert all(s["trace_id"] == ctx.trace_id for s in spans)
        chunk_spans = [s for s in spans if s["name"] == "dist.chunk"]
        assert chunk_spans
        remote = [s for s in spans if s.get("pid")]
        assert remote, "worker spans did not ship back"
        assert all(s["pid"] != os.getpid() for s in remote)
        chunk_hexes = {s["trace_span"] for s in chunk_spans}
        remote_hexes = {s["trace_span"] for s in remote}
        for span in remote:
            assert span["trace_parent"] in chunk_hexes | remote_hexes


class TestCoalescedLinks:
    def test_batch_span_links_every_coalesced_request(self):
        handle = traced_server(batch_window=0.05).start()
        try:
            # slow the engine down so the second identical query lands
            # while the first is still in flight and coalesces onto it
            batcher = handle.server.batcher
            original = batcher._compute_fn
            release = threading.Event()

            def slow(tasks, keys):
                release.wait(5.0)
                return original(tasks, keys)

            batcher._compute_fn = slow
            responses = {}

            def fire(tag):
                with client_for(handle) as client:
                    responses[tag] = client.query("toy", limit=8,
                                                  trace=True)

            first = threading.Thread(target=fire, args=("a",))
            first.start()
            time.sleep(0.2)  # let "a" get admitted and batched
            second = threading.Thread(target=fire, args=("b",))
            second.start()
            time.sleep(0.2)
            release.set()
            first.join(10.0)
            second.join(10.0)
            batcher._compute_fn = original

            a, b = responses["a"], responses["b"]
            assert a["status"] == b["status"] == "ok"
            assert a["trace_id"] != b["trace_id"]
            coalesced_tag = "b" if b.get("coalesced") else "a"
            coalesced = responses[coalesced_tag]

            # both traces were kept, and both contain the ONE batch span
            for tag in ("a", "b"):
                record = record_for(handle, responses[tag]["trace_id"])
                assert record is not None, f"trace {tag} was not kept"
                assert "serve.batch" in span_names(record)

            record = record_for(handle, coalesced["trace_id"])
            batch = next(s for s in record["spans"]
                         if s["name"] == "serve.batch")
            linked = {link["trace_id"] for link in batch["links"]}
            assert a["trace_id"] in linked
            assert b["trace_id"] in linked
            # the coalesced request still has its own admission span
            assert "serve.admission" in span_names(record)
        finally:
            handle.shutdown()


class TestTraceContextHandling:
    def test_traceparent_continues_the_callers_trace(self):
        handle = traced_server().start()
        try:
            upstream = TraceContext.mint()
            with client_for(handle) as client:
                response = client.query(
                    "toy", limit=8, trace=True,
                    traceparent=upstream.to_traceparent())
            assert response["trace_id"] == upstream.trace_id
            record = record_for(handle, upstream.trace_id)
            assert record is not None
            request = next(s for s in record["spans"]
                           if s["name"] == "serve.request")
            # the request span parents under the caller's span
            assert request["trace_parent"] == upstream.span_id
        finally:
            handle.shutdown()

    def test_malformed_traceparent_mints_a_fresh_trace(self):
        handle = traced_server().start()
        try:
            with client_for(handle) as client:
                response = client.query("toy", limit=8,
                                        traceparent="garbage-header")
            assert response["status"] == "ok"
            assert len(response["trace_id"]) == 32
        finally:
            handle.shutdown()

    def test_oversized_traceparent_rejected_by_protocol(self):
        handle = traced_server().start()
        try:
            with client_for(handle) as client:
                response = client.query("toy", traceparent="x" * 200)
            assert response["status"] == "error"
            assert "traceparent" in response["error"]
        finally:
            handle.shutdown()

    def test_untraced_server_responses_carry_no_trace_fields(self):
        handle = ServerThread(ServeConfig(port=0, batch_window=0.005),
                              corpus=toy_corpus()).start()
        try:
            with client_for(handle) as client:
                response = client.query("toy", limit=8, trace=True)
            assert response["status"] == "ok"
            assert "trace_id" not in response
            assert "trace" not in response
        finally:
            handle.shutdown()


class TestSamplingAndRetention:
    def test_head_sampling_zero_drops_clean_traces(self):
        handle = traced_server(trace_sample=0.0, clean=True).start()
        try:
            with client_for(handle) as client:
                response = client.query("toy", limit=8, trace=True)
            assert response["status"] == "ok"
            assert response["vulnerable"] is False
            # spans were emitted but the trace was not retained, so no
            # timeline comes back and the collector counts the drop
            assert "trace" not in response
            assert record_for(handle, response["trace_id"]) is None
            stats = handle.server.tracer.stats()
            assert stats["dropped"] == 1
            assert stats["kept"] == 0
            assert handle.server.stats.counter("trace.dropped") == 1
        finally:
            handle.shutdown()

    def test_tail_keep_retains_witness_bearing_trace(self):
        # same zero head-sampling, but the model IS vulnerable: the
        # witness-found tail rule must keep the trace anyway
        handle = traced_server(trace_sample=0.0).start()
        try:
            with client_for(handle) as client:
                response = client.query("toy", limit=8, trace=True)
            assert response["status"] == "ok"
            assert response["vulnerable"] is True
            record = record_for(handle, response["trace_id"])
            assert record is not None
            assert record["tail_kept"] is True
            assert response["trace"], "tail-kept trace returns a timeline"
        finally:
            handle.shutdown()

    def test_trace_stats_surface_in_metrics(self):
        handle = traced_server().start()
        try:
            with client_for(handle) as client:
                client.query("toy", limit=8)
                metrics = client.metrics()
            assert metrics["trace"]["begun"] >= 1
            assert metrics["trace"]["kept"] >= 1
            assert metrics["counters"]["trace.kept"] >= 1
        finally:
            handle.shutdown()


class TestThreadBackendTrace:
    def test_engine_spans_join_the_trace_without_processes(self):
        handle = traced_server(backend="thread", workers=2).start()
        try:
            with client_for(handle) as client:
                response = client.query("toy", limit=8, trace=True)
            record = record_for(handle, response["trace_id"])
            assert record is not None
            names = span_names(record)
            assert "serve.batch" in names
            # thread-executor engine spans carry the trace too
            assert "sweep.task" in names
            task = next(s for s in record["spans"]
                        if s["name"] == "sweep.task")
            assert "pid" not in task  # same process: nothing replayed
        finally:
            handle.shutdown()
