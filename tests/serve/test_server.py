"""The analysis server end to end: correctness, coalescing, admission
control, deadlines, graceful drain, and the HTTP façade.

Every test runs against a tiny toy corpus (one model, two pFSMs, small
integer domains) so the serving machinery — not the engine — dominates
the runtime.  ``pytest-asyncio`` is not a dependency; the server runs
on its own daemon thread (:class:`ServerThread`) and tests drive it
with the blocking client, exactly as the CLI and benchmark do.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.core import (
    Domain,
    Operation,
    PrimitiveFSM,
    VulnerabilityModel,
    in_range,
    less_equal,
)
from repro.core import dist
from repro.core.sweep import sweep_model
from repro.serve import (
    AnalysisCorpus,
    AnalysisServer,
    DRAINING,
    STOPPED,
    ServeClient,
    ServeConfig,
    ServerThread,
)

TOY_NAME = "Toy Overflow"


@pytest.fixture(autouse=True)
def _fresh_scheduler():
    dist.reset()
    yield
    dist.reset()


def toy_model():
    pfsm1 = PrimitiveFSM("pFSM1", "accept input x", "x",
                         spec_accepts=in_range(0, 5),
                         impl_accepts=less_equal(10))
    pfsm2 = PrimitiveFSM("pFSM2", "store x", "x",
                         spec_accepts=in_range(0, 5),
                         impl_accepts=less_equal(50))
    op = Operation("write x", "the input integer", [pfsm1, pfsm2])
    return VulnerabilityModel(TOY_NAME, [op])


def toy_domains():
    return {TOY_NAME: {"pFSM1": Domain(range(-5, 20)),
                       "pFSM2": Domain(range(-5, 60))}}


def toy_corpus():
    model = toy_model()
    return AnalysisCorpus(models={TOY_NAME: model},
                          domains=toy_domains(),
                          keys={"toy": TOY_NAME})


@pytest.fixture
def server():
    handle = ServerThread(
        ServeConfig(port=0, batch_window=0.005, drain_grace=2.0),
        corpus=toy_corpus(),
    ).start()
    yield handle
    handle.shutdown()


def client_for(handle):
    return ServeClient(handle.host, handle.port, timeout=30.0)


class TestQuery:
    def test_matches_direct_sweep(self, server):
        with client_for(server) as client:
            response = client.query("toy", limit=5)
        assert response["status"] == "ok"
        assert response["vulnerable"] is True
        assert response["model_name"] == TOY_NAME
        reference = sweep_model(toy_model(), toy_domains()[TOY_NAME],
                                limit=5)
        assert len(response["findings"]) == len(reference.findings)
        for got, want in zip(response["findings"], reference.findings):
            assert got["pfsm"] == want.pfsm_name
            assert got["witnesses"] == list(want.witnesses)

    def test_repeat_query_is_cached(self, server):
        with client_for(server) as client:
            first = client.query("toy", limit=3)
            second = client.query("toy", limit=3)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["findings"] == first["findings"]

    def test_id_echo_and_latency(self, server):
        with client_for(server) as client:
            response = client.query("toy", limit=2, request_id="req-9")
        assert response["id"] == "req-9"
        assert response["elapsed_ms"] >= 0

    def test_unknown_model(self, server):
        with client_for(server) as client:
            response = client.query("nosuch")
        assert response["status"] == "error"
        assert "unknown model" in response["error"]
        assert response["models"] == ["toy"]

    def test_malformed_line(self, server):
        with client_for(server) as client:
            response = client.request({"op": "query", "limit": 5})
        assert response["status"] == "error"
        assert "model" in response["error"]

    def test_limit_clamped_to_max(self):
        handle = ServerThread(
            ServeConfig(port=0, max_limit=2), corpus=toy_corpus(),
        ).start()
        try:
            with client_for(handle) as client:
                response = client.query("toy", limit=999)
            assert response["limit"] == 2
            assert all(len(f["witnesses"]) <= 2
                       for f in response["findings"])
        finally:
            handle.shutdown()

    def test_ping_and_metrics_ops(self, server):
        with client_for(server) as client:
            assert client.ping()["state"] == "ready"
            client.query("toy", limit=4)
            metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["requests.query"] >= 1
        assert counters["batches"] >= 1
        assert metrics["state"] == "ready"
        assert metrics["config"]["backend"] == "thread"
        assert set(metrics["derived"]) >= {"coalesce_rate",
                                           "request_cache_hit_rate"}


def _slow_compute(handle, delay, calls):
    """Wrap the server's compute so dispatches are observable and slow
    enough to hold requests in flight."""
    original = handle.server.batcher._compute_fn

    def wrapped(tasks, keys):
        calls.append(len(tasks))
        time.sleep(delay)
        return original(tasks, keys)

    handle.server.batcher._compute_fn = wrapped


class TestCoalescing:
    def test_identical_concurrent_queries_coalesce(self, server):
        calls = []
        _slow_compute(server, 0.2, calls)
        barrier = threading.Barrier(6)
        responses = []

        def fire():
            with client_for(server) as client:
                barrier.wait()
                responses.append(client.query("toy", limit=7))

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(r["status"] == "ok" for r in responses)
        assert len(calls) == 1  # one engine dispatch for six clients
        coalesced = [r for r in responses if r["coalesced"]]
        leaders = [r for r in responses if not r["coalesced"]]
        assert len(leaders) == 1
        assert len(coalesced) == 5
        assert all(r["findings"] == leaders[0]["findings"]
                   for r in coalesced)
        with client_for(server) as client:
            assert client.metrics()["counters"]["coalesced"] == 5

    def test_distinct_queries_share_common_tasks(self, server):
        # limit is part of the task, so distinct limits never share
        # compute — but identical (pfsm, domain, limit) tasks reached
        # through two requests in one batch are computed once.
        calls = []
        _slow_compute(server, 0.0, calls)
        with client_for(server) as client:
            client.query("toy", limit=9)
            client.query("toy", limit=9)
        # second request was answered by cache, not recomputed
        assert sum(calls) == 2  # two pFSM tasks, once


class TestAdmissionControl:
    def test_overload_sheds_with_explicit_status(self):
        handle = ServerThread(
            ServeConfig(port=0, max_depth=1, max_batch=1,
                        batch_window=0.005),
            corpus=toy_corpus(),
        ).start()
        calls = []
        _slow_compute(handle, 0.3, calls)
        try:
            responses = []
            lock = threading.Lock()

            def fire(limit):
                with client_for(handle) as client:
                    response = client.query("toy", limit=limit)
                with lock:
                    responses.append(response)

            threads = [threading.Thread(target=fire, args=(limit,))
                       for limit in range(1, 7)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            statuses = sorted(r["status"] for r in responses)
            assert len(statuses) == 6  # every request got a response
            assert set(statuses) <= {"ok", "overloaded"}
            shed = [r for r in responses if r["status"] == "overloaded"]
            assert shed, f"expected sheds, got {statuses}"
            assert all("queue full" in r["error"] for r in shed)
            with client_for(handle) as client:
                counters = client.metrics()["counters"]
            assert counters["shed.overload"] == len(shed)
        finally:
            handle.shutdown()

    def test_expired_deadline_sheds_as_timeout(self, server):
        calls = []
        _slow_compute(server, 0.4, calls)
        responses = {}

        def fire(name, limit, deadline_ms=None, delay=0.0):
            time.sleep(delay)
            with client_for(server) as client:
                responses[name] = client.query("toy", limit=limit,
                                               deadline_ms=deadline_ms)

        blocker = threading.Thread(target=fire, args=("blocker", 11))
        doomed = threading.Thread(
            target=fire, args=("doomed", 12), kwargs={
                "deadline_ms": 50, "delay": 0.1})
        blocker.start()
        doomed.start()
        blocker.join()
        doomed.join()

        assert responses["blocker"]["status"] == "ok"
        assert responses["doomed"]["status"] == "timeout"
        assert "deadline" in responses["doomed"]["error"]
        with client_for(server) as client:
            assert client.metrics()["counters"]["shed.deadline"] == 1


class TestDrain:
    def test_draining_requests_get_explicit_refusal(self):
        # Unit-level: a query dispatched while not READY is answered
        # with status "draining", never dropped.
        import asyncio

        async def scenario():
            analysis = AnalysisServer(corpus=toy_corpus())
            analysis.state = DRAINING
            return await analysis._dispatch(
                '{"op": "query", "model": "toy", "id": 4}')

        response = asyncio.run(scenario())
        assert response["status"] == "draining"
        assert response["id"] == 4

    def test_shutdown_reaches_stopped(self, server):
        with client_for(server) as client:
            client.query("toy", limit=6)
        server.shutdown()
        assert server.server.state == STOPPED
        assert server.server._pending_responses == 0

    def test_inflight_request_survives_drain(self, server):
        # The invariant the bench measures: SIGTERM with work in
        # flight drops zero responses.
        calls = []
        _slow_compute(server, 0.3, calls)
        result = {}

        def fire():
            with client_for(server) as client:
                result["response"] = client.query("toy", limit=13)

        worker = threading.Thread(target=fire)
        worker.start()
        time.sleep(0.1)  # request admitted, compute in progress
        server.shutdown()
        worker.join(10.0)

        assert result["response"]["status"] == "ok"
        assert result["response"]["vulnerable"] is True
        assert server.server.state == STOPPED

    def test_new_connections_refused_after_drain(self, server):
        server.shutdown()
        with pytest.raises(OSError):
            client_for(server).ping()


class TestHttpFacade:
    def _get(self, server, path):
        url = f"http://{server.host}:{server.port}{path}"
        try:
            with urllib.request.urlopen(url) as response:
                return (response.status,
                        response.read().decode("utf-8"),
                        response.headers.get("Content-Type", ""))
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8"), \
                exc.headers.get("Content-Type", "")

    def test_healthz_ready(self, server):
        code, body, ctype = self._get(server, "/healthz")
        assert code == 200
        assert ctype == "application/json"
        assert json.loads(body) == {"state": "ready", "ready": True,
                                    "live": True, "degraded": False}

    def test_metrics_json_endpoint(self, server):
        with client_for(server) as client:
            client.query("toy", limit=8)
        code, body, ctype = self._get(server, "/metrics.json")
        assert code == 200
        assert ctype == "application/json"
        snapshot = json.loads(body)
        assert snapshot["counters"]["requests.query"] >= 1
        assert "latency" in snapshot
        assert "histograms" in snapshot

    def test_metrics_endpoint_speaks_prometheus(self, server):
        from repro.obs.prometheus import parse_exposition

        with client_for(server) as client:
            client.query("toy", limit=8)
        code, body, ctype = self._get(server, "/metrics")
        assert code == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        families = parse_exposition(body)  # raises on malformed output
        counter = families["repro_serve_requests_query_total"]
        assert counter["type"] == "counter"
        assert counter["samples"][0][2] >= 1.0
        assert families["repro_serve_up"]["samples"][0][2] == 1.0
        request_hist = families["repro_serve_stage_request_seconds"]
        assert request_hist["type"] == "histogram"
        state_samples = {s[1]["state"]: s[2]
                         for s in families["repro_serve_state"]["samples"]}
        assert state_samples["ready"] == 1.0
        assert state_samples["draining"] == 0.0

    def test_unknown_path_404(self, server):
        code, body, ctype = self._get(server, "/nope")
        assert code == 404
        assert json.loads(body) == {"error": "not found"}
