"""The serve wire protocol: request validation, response encoding."""

import json

import pytest

from repro.core.sweep import SweepFinding
from repro.serve import decode_request, encode_line, ProtocolError
from repro.serve.protocol import (
    KNOWN_OPS,
    SHED_STATUSES,
    encode_witness,
    finding_payload,
)


class TestDecodeRequest:
    def test_minimal_query(self):
        request = decode_request('{"model": "sendmail"}')
        assert request == {"op": "query", "id": None, "model": "sendmail",
                           "limit": 5, "deadline_ms": None,
                           "traceparent": None, "trace": False}

    def test_full_query(self):
        request = decode_request(
            '{"op": "query", "id": 7, "model": "iis", "limit": 2,'
            ' "deadline_ms": 250}')
        assert request["id"] == 7
        assert request["limit"] == 2
        assert request["deadline_ms"] == 250

    def test_trace_fields_pass_through(self):
        header = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        request = decode_request(json.dumps(
            {"model": "iis", "traceparent": header, "trace": True}))
        assert request["traceparent"] == header
        assert request["trace"] is True

    def test_oversized_traceparent_rejected(self):
        with pytest.raises(ProtocolError, match="traceparent"):
            decode_request(json.dumps(
                {"model": "iis", "traceparent": "x" * 129}))

    def test_non_string_traceparent_rejected(self):
        with pytest.raises(ProtocolError, match="traceparent"):
            decode_request('{"model": "iis", "traceparent": 12}')

    def test_non_boolean_trace_rejected(self):
        with pytest.raises(ProtocolError, match="'trace'"):
            decode_request('{"model": "iis", "trace": "yes"}')

    def test_ping_and_metrics_need_no_model(self):
        assert decode_request('{"op": "ping"}')["op"] == "ping"
        assert decode_request('{"op": "metrics", "id": "m"}') == {
            "op": "metrics", "id": "m"}

    def test_not_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_request("model=sendmail")

    def test_not_an_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_request('["query", "sendmail"]')

    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request('{"op": "shutdown"}')
        assert set(KNOWN_OPS) == {"query", "ping", "metrics"}

    @pytest.mark.parametrize("model", ['""', "3", "null", "[]"])
    def test_bad_model(self, model):
        with pytest.raises(ProtocolError, match="'model'"):
            decode_request('{"model": %s}' % model)

    @pytest.mark.parametrize("limit", ["-1", "true", '"5"', "2.5"])
    def test_bad_limit(self, limit):
        with pytest.raises(ProtocolError, match="'limit'"):
            decode_request('{"model": "m", "limit": %s}' % limit)

    @pytest.mark.parametrize("deadline", ["0", "-10", "true", '"soon"'])
    def test_bad_deadline(self, deadline):
        with pytest.raises(ProtocolError, match="'deadline_ms'"):
            decode_request('{"model": "m", "deadline_ms": %s}' % deadline)

    def test_shed_statuses_are_the_refusals(self):
        assert SHED_STATUSES == {"overloaded", "timeout", "draining"}


class TestEncoding:
    def test_encode_line_round_trips(self):
        line = encode_line({"status": "ok", "id": 3})
        assert line.endswith(b"\n")
        assert json.loads(line.decode("utf-8")) == {"status": "ok", "id": 3}

    def test_encode_witness_codec_values(self):
        assert encode_witness(5) == 5
        assert encode_witness((1, 2)) == {"__tuple__": [1, 2]}

    def test_encode_witness_degrades_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque thing>"

        encoded = encode_witness(Opaque())
        assert encoded == {"__repr__": "<opaque thing>"}
        json.dumps(encoded)  # always renderable

    def test_finding_payload(self):
        finding = SweepFinding(
            model_name="M", operation_name="op", pfsm_name="pFSM1",
            activity="scan", witnesses=(7, (1, 2)),
        )
        payload = finding_payload(finding)
        assert payload["operation"] == "op"
        assert payload["pfsm"] == "pFSM1"
        assert payload["activity"] == "scan"
        assert payload["witnesses"] == [7, {"__tuple__": [1, 2]}]
        json.dumps(payload)
