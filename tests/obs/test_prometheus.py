"""Tests for the Prometheus exposition layer (repro.obs.prometheus)."""

import math
import threading

import pytest

from repro.obs.prometheus import (
    DEFAULT_BUCKETS,
    Histogram,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == [(0.01, 2), (0.1, 3), (1.0, 4)]
        assert snap["count"] == 5  # the 5.0 falls in the implicit +Inf
        assert snap["sum"] == pytest.approx(5.56)

    def test_boundary_value_is_inclusive(self):
        # Prometheus buckets are `le` (less-or-equal) bounds.
        hist = Histogram(buckets=(0.1, 1.0))
        hist.observe(0.1)
        assert hist.snapshot()["buckets"] == [(0.1, 1), (1.0, 1)]

    def test_default_buckets(self):
        snap = Histogram().snapshot()
        assert [b for b, _ in snap["buckets"]] == sorted(DEFAULT_BUCKETS)

    def test_bounds_are_sorted_and_deduplicated(self):
        hist = Histogram(buckets=(1.0, 0.1, 1.0))
        assert hist.buckets == (0.1, 1.0)

    def test_rejects_empty_or_infinite_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(0.1, math.inf))

    def test_concurrent_observes_are_exact(self):
        hist = Histogram(buckets=(10.0,))
        threads = [threading.Thread(
            target=lambda: [hist.observe(1.0) for _ in range(500)])
            for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = hist.snapshot()
        assert snap["count"] == 2000
        assert snap["buckets"] == [(10.0, 2000)]


class TestSanitize:
    @pytest.mark.parametrize("raw,expected", [
        ("requests.query", "requests_query"),
        ("shed.overload", "shed_overload"),
        ("already_fine", "already_fine"),
        ("9starts.with.digit", "_9starts_with_digit"),
    ])
    def test_names(self, raw, expected):
        assert sanitize_metric_name(raw) == expected


class TestRenderExposition:
    def test_counters_gauges_histograms_render_and_parse(self):
        hist = Histogram(buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = render_exposition(
            counters={"requests.query": 7},
            gauges={"queue.depth": 3},
            histograms={"stage.request.seconds": hist.snapshot()},
            labeled_gauges=[("state", {"state": "ready"}, 1.0),
                            ("state", {"state": "draining"}, 0.0)],
        )
        families = parse_exposition(text)

        # classic text format 0.0.4: counters declare TYPE on the full
        # `_total` sample name
        counter = families["repro_serve_requests_query_total"]
        assert counter["type"] == "counter"
        assert counter["samples"] == [
            ("repro_serve_requests_query_total", {}, 7.0)]

        gauge = families["repro_serve_queue_depth"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"] == [("repro_serve_queue_depth", {}, 3.0)]

        state = families["repro_serve_state"]
        assert (("repro_serve_state", {"state": "ready"}, 1.0)
                in state["samples"])

        hist_fam = families["repro_serve_stage_request_seconds"]
        assert hist_fam["type"] == "histogram"
        samples = {(s[0], s[1].get("le")): s[2]
                   for s in hist_fam["samples"]}
        assert samples[("repro_serve_stage_request_seconds_bucket",
                        "0.1")] == 1.0
        assert samples[("repro_serve_stage_request_seconds_bucket",
                        "+Inf")] == 2.0
        assert samples[("repro_serve_stage_request_seconds_count",
                        None)] == 2.0
        assert samples[("repro_serve_stage_request_seconds_sum",
                        None)] == pytest.approx(5.05)

    def test_every_family_has_help_and_type(self):
        text = render_exposition(counters={"a.b": 1}, gauges={"c.d": 2.5})
        for family in ("repro_serve_a_b_total", "repro_serve_c_d"):
            assert f"# HELP {family.replace('_total', '')}" in text \
                or f"# HELP {family}" in text
        assert "# TYPE repro_serve_a_b_total counter" in text
        assert "# TYPE repro_serve_c_d gauge" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        text = render_exposition(
            labeled_gauges=[("weird", {"k": 'a"b\\c'}, 1.0)])
        families = parse_exposition(text)
        (_, labels, _), = families["repro_serve_weird"]["samples"]
        assert labels == {"k": 'a"b\\c'}

    def test_empty_prefix(self):
        text = render_exposition(counters={"hits": 1}, prefix="")
        assert "hits_total 1" in text


class TestParseExposition:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_exposition("orphan_metric 1\n")

    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("# TYPE x gauge\nx one_point_five\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            parse_exposition("# TYPE x widget\n")

    def test_rejects_decreasing_histogram_buckets(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="decrease"):
            parse_exposition(bad)

    def test_rejects_missing_inf_bucket(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_exposition(bad)

    def test_rejects_inf_bucket_count_mismatch(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 7\n"
        )
        with pytest.raises(ValueError, match="!= _count"):
            parse_exposition(bad)

    def test_accepts_special_values_and_timestamps(self):
        text = (
            "# TYPE g gauge\n"
            "g 1.5 1700000000\n"
            "# TYPE n gauge\n"
            "n NaN\n"
            "# TYPE i gauge\n"
            "i +Inf\n"
        )
        families = parse_exposition(text)
        assert families["g"]["samples"][0][2] == 1.5
        assert math.isnan(families["n"]["samples"][0][2])
        assert families["i"]["samples"][0][2] == math.inf
