"""Tests for the distributed tracing layer (repro.obs.trace)."""

import json
import threading

import pytest

from repro.obs import MemorySink, Registry
from repro.obs.trace import (
    TailRules,
    TraceCollector,
    TraceContext,
    chrome_payload,
    chrome_trace_events,
    emit_span,
    load_trace_events,
    mint_span_id,
    trace_timeline,
)


class FakeClock:
    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestTraceContext:
    def test_mint_is_well_formed(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)
        assert ctx.sampled is True

    def test_mint_is_unique(self):
        ids = {TraceContext.mint().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_traceparent_round_trip(self):
        ctx = TraceContext.mint(sampled=True)
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_traceparent_unsampled_round_trip(self):
        ctx = TraceContext.mint(sampled=False)
        header = ctx.to_traceparent()
        assert header.endswith("-00")
        assert TraceContext.from_traceparent(header) == ctx

    @pytest.mark.parametrize("header", [
        None,
        42,
        "",
        "not-a-traceparent",
        "00-short-short-01",
        # bad version
        "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        # all-zero trace id / span id are forbidden by the W3C spec
        "00-00000000000000000000000000000000-b7ad6b7169203331-01",
        "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
        # uppercase hex beyond the lowercasing (non-hex chars)
        "00-0af7651916cd43dd8448eb211c8031zz-b7ad6b7169203331-01",
    ])
    def test_malformed_traceparent_rejected(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_from_traceparent_normalizes_case_and_whitespace(self):
        ctx = TraceContext.mint()
        header = "  " + ctx.to_traceparent().upper() + " "
        assert TraceContext.from_traceparent(header) == ctx

    def test_child_keeps_trace_and_sampling(self):
        ctx = TraceContext.mint(sampled=False)
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.sampled is False
        pinned = ctx.child("feedfacefeedface")
        assert pinned.span_id == "feedfacefeedface"

    def test_mint_span_id_shape(self):
        span = mint_span_id()
        assert len(span) == 16
        int(span, 16)


class TestAmbientPropagation:
    def test_spans_stamped_under_ambient_context(self):
        reg = Registry(clock=FakeClock(), wall=lambda: 1.0)
        sink = MemorySink()
        reg.enable(sink)
        ctx = TraceContext.mint()
        reg.set_trace(ctx)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        reg.set_trace(None)
        outer = next(e for e in sink.events if e["name"] == "outer")
        inner = next(e for e in sink.events if e["name"] == "inner")
        assert outer["trace_id"] == ctx.trace_id
        assert outer["trace_parent"] == ctx.span_id
        assert inner["trace_id"] == ctx.trace_id
        # nesting: the inner span parents under the outer span's hex id
        assert inner["trace_parent"] == outer["trace_span"]
        assert outer["trace_span"] != inner["trace_span"]

    def test_ambient_context_restored_after_span(self):
        reg = Registry(clock=FakeClock())
        reg.enable(MemorySink())
        ctx = TraceContext.mint()
        reg.set_trace(ctx)
        with reg.span("a"):
            assert reg.current_trace().trace_id == ctx.trace_id
            assert reg.current_trace().span_id != ctx.span_id
        assert reg.current_trace() is ctx

    def test_ambient_context_restored_on_exception(self):
        reg = Registry(clock=FakeClock())
        reg.enable(MemorySink())
        ctx = TraceContext.mint()
        reg.set_trace(ctx)
        with pytest.raises(ValueError):
            with reg.span("boom"):
                raise ValueError("x")
        assert reg.current_trace() is ctx

    def test_spans_without_ambient_context_carry_no_trace_keys(self):
        reg = Registry(clock=FakeClock())
        sink = MemorySink()
        reg.enable(sink)
        with reg.span("plain"):
            pass
        event = sink.events[-1]
        assert "trace_id" not in event
        assert "trace_span" not in event

    def test_set_trace_returns_previous(self):
        reg = Registry()
        a, b = TraceContext.mint(), TraceContext.mint()
        assert reg.set_trace(a) is None
        assert reg.set_trace(b) is a
        assert reg.set_trace(None) is b

    def test_ambient_context_is_per_thread(self):
        reg = Registry(clock=FakeClock())
        reg.enable(MemorySink())
        ctx = TraceContext.mint()
        reg.set_trace(ctx)
        seen = []

        def worker():
            seen.append(reg.current_trace())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen == [None]

    def test_span_link_records_contexts(self):
        reg = Registry(clock=FakeClock())
        sink = MemorySink()
        reg.enable(sink)
        other = TraceContext.mint()
        with reg.span("batch") as span:
            span.link(other)
        event = sink.events[-1]
        assert event["links"] == [
            {"trace_id": other.trace_id, "span_id": other.span_id}]

    def test_noop_span_accepts_link(self):
        reg = Registry()
        with reg.span("off") as span:
            span.link(TraceContext.mint())  # must not raise


class TestEmitSpan:
    def test_emit_span_event_shape(self):
        reg = Registry(clock=FakeClock(), wall=lambda: 5.0)
        sink = MemorySink()
        reg.enable(sink)
        ctx = TraceContext.mint()
        linked = TraceContext.mint()
        span_hex = emit_span(reg, "serve.request", ctx, 10.0, 0.25,
                             links=[linked], model="ghttpd")
        event = sink.events[-1]
        assert event["type"] == "span"
        assert event["name"] == "serve.request"
        assert event["trace_id"] == ctx.trace_id
        assert event["trace_span"] == span_hex
        assert event["trace_parent"] == ctx.span_id
        assert event["start"] == 10.0
        assert event["duration"] == 0.25
        assert event["attrs"] == {"model": "ghttpd"}
        assert event["links"] == [
            {"trace_id": linked.trace_id, "span_id": linked.span_id}]

    def test_emit_span_honours_pinned_ids(self):
        reg = Registry()
        sink = MemorySink()
        reg.enable(sink)
        ctx = TraceContext.mint()
        out = emit_span(reg, "x", ctx, 0.0, 0.0,
                        span_hex="aaaaaaaaaaaaaaaa",
                        parent_hex="bbbbbbbbbbbbbbbb")
        assert out == "aaaaaaaaaaaaaaaa"
        assert sink.events[-1]["trace_parent"] == "bbbbbbbbbbbbbbbb"

    def test_emit_span_disabled_registry_is_noop(self):
        reg = Registry()
        assert emit_span(reg, "x", TraceContext.mint(), 0.0, 0.0) is None


def _span(trace_id, name="s", start=0.0, duration=0.1, links=None, **extra):
    event = {"type": "span", "name": name, "span_id": 1, "parent_id": None,
             "start": start, "duration": duration, "error": None,
             "attrs": {}, "trace_id": trace_id,
             "trace_span": mint_span_id(), "trace_parent": None}
    if links:
        event["links"] = links
    event.update(extra)
    return event


class TestTraceCollector:
    def test_sampled_trace_is_kept_with_sorted_spans(self):
        collector = TraceCollector()
        ctx = TraceContext.mint()
        collector.begin(ctx, model="m")
        collector.emit(_span(ctx.trace_id, "late", start=2.0))
        collector.emit(_span(ctx.trace_id, "early", start=1.0))
        record = collector.finish(ctx.trace_id, status="ok", elapsed_ms=3.0)
        assert record is not None
        assert [s["name"] for s in record["spans"]] == ["early", "late"]
        assert record["meta"] == {"model": "m"}
        assert record["outcome"]["status"] == "ok"
        assert collector.traces() == [record]
        assert collector.stats()["kept"] == 1

    def test_unsampled_trace_is_dropped(self):
        collector = TraceCollector()
        ctx = TraceContext.mint(sampled=False)
        collector.begin(ctx)
        collector.emit(_span(ctx.trace_id))
        assert collector.finish(ctx.trace_id, status="ok") is None
        assert collector.stats()["dropped"] == 1
        assert collector.traces() == []

    @pytest.mark.parametrize("outcome,expect", [
        ({"status": "error"}, True),
        ({"status": "ok", "shed": True}, True),
        ({"status": "ok", "witness": True}, True),
        ({"status": "ok", "elapsed_ms": 500.0}, True),
        ({"status": "ok", "elapsed_ms": 5.0}, False),
    ])
    def test_tail_rules_keep_interesting_unsampled_traces(self, outcome,
                                                          expect):
        collector = TraceCollector(tail=TailRules(slow_ms=100.0))
        ctx = TraceContext.mint(sampled=False)
        collector.begin(ctx)
        record = collector.finish(ctx.trace_id, **outcome)
        assert (record is not None) is expect
        if expect:
            assert record["tail_kept"] is True

    def test_linked_spans_are_indexed_under_linked_traces(self):
        collector = TraceCollector()
        a, b = TraceContext.mint(), TraceContext.mint()
        collector.begin(a)
        collector.begin(b)
        batch = _span(a.trace_id, "serve.batch",
                      links=[{"trace_id": a.trace_id, "span_id": a.span_id},
                             {"trace_id": b.trace_id, "span_id": b.span_id}])
        collector.emit(batch)
        rec_a = collector.finish(a.trace_id, status="ok")
        rec_b = collector.finish(b.trace_id, status="ok")
        assert any(s["name"] == "serve.batch" for s in rec_a["spans"])
        assert any(s["name"] == "serve.batch" for s in rec_b["spans"])

    def test_span_buffer_is_bounded(self):
        collector = TraceCollector(max_spans=3)
        ctx = TraceContext.mint()
        collector.begin(ctx)
        for i in range(10):
            collector.emit(_span(ctx.trace_id, f"s{i}", start=float(i)))
        record = collector.finish(ctx.trace_id, status="ok")
        assert len(record["spans"]) == 3
        assert record["truncated_spans"] == 7

    def test_open_traces_are_bounded(self):
        collector = TraceCollector(max_open=4)
        contexts = [TraceContext.mint() for _ in range(8)]
        for ctx in contexts:
            collector.begin(ctx)
        assert collector.stats()["open"] == 4
        # the oldest were evicted; finishing them is a no-op
        assert collector.finish(contexts[0].trace_id, status="ok") is None

    def test_kept_deque_is_bounded(self):
        collector = TraceCollector(max_traces=2)
        for _ in range(5):
            ctx = TraceContext.mint()
            collector.begin(ctx)
            collector.finish(ctx.trace_id, status="ok")
        assert len(collector.traces()) == 2
        assert collector.stats()["kept"] == 5

    def test_head_sampling_rate(self):
        values = iter([0.1, 0.9, 0.2, 0.8])
        collector = TraceCollector(head_sample=0.5,
                                   rng=lambda: next(values))
        decisions = [collector.sample() for _ in range(4)]
        assert decisions == [True, False, True, False]
        assert TraceCollector(head_sample=1.0).sample() is True
        assert TraceCollector(head_sample=0.0).sample() is False

    def test_non_span_events_ignored(self):
        collector = TraceCollector()
        ctx = TraceContext.mint()
        collector.begin(ctx)
        collector.emit({"type": "event", "name": "mark",
                        "trace_id": ctx.trace_id})
        record = collector.finish(ctx.trace_id, status="ok")
        assert record["spans"] == []

    def test_finish_unknown_trace_returns_none(self):
        assert TraceCollector().finish("deadbeef", status="ok") is None


class TestTimelineAndExport:
    def test_timeline_offsets_relative_to_first_span(self):
        ctx = TraceContext.mint()
        record = {
            "spans": [
                _span(ctx.trace_id, "serve.request", start=10.0,
                      duration=0.5),
                _span(ctx.trace_id, "engine", start=10.2, duration=0.25,
                      pid=4242),
            ],
        }
        rows = trace_timeline(record)
        assert rows[0]["name"] == "serve.request"
        assert rows[0]["offset_ms"] == 0.0
        assert rows[0]["duration_ms"] == 500.0
        assert rows[0]["remote"] is False
        assert rows[1]["offset_ms"] == pytest.approx(200.0, abs=0.01)
        assert rows[1]["remote"] is True

    def test_timeline_empty_record(self):
        assert trace_timeline({"spans": []}) == []
        assert trace_timeline({}) == []

    def test_chrome_events_shape(self):
        ctx = TraceContext.mint()
        span = _span(ctx.trace_id, "serve.batch", start=1.5, duration=0.25,
                     pid=777,
                     links=[{"trace_id": ctx.trace_id,
                             "span_id": ctx.span_id}])
        events = chrome_trace_events([span, {"type": "event"}])
        assert len(events) == 1
        event = events[0]
        assert event["ph"] == "X"
        assert event["ts"] == 1.5e6
        assert event["dur"] == 0.25e6
        assert event["pid"] == 777
        assert event["cat"] == "repro"
        assert event["args"]["trace_id"] == ctx.trace_id
        assert event["args"]["links"] == span["links"]

    def test_chrome_payload_round_trips_json(self, tmp_path):
        ctx = TraceContext.mint()
        payload = chrome_payload([_span(ctx.trace_id)])
        path = tmp_path / "chrome.json"
        path.write_text(json.dumps(payload))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == 1

    def test_load_trace_events_filters_and_unpacks(self, tmp_path):
        ctx = TraceContext.mint()
        path = tmp_path / "events.jsonl"
        lines = [
            json.dumps(_span(ctx.trace_id, "a")),
            json.dumps({"type": "event", "name": "mark"}),
            "not json at all",
            json.dumps({"type": "trace", "trace_id": ctx.trace_id,
                        "spans": [_span(ctx.trace_id, "b"),
                                  _span(ctx.trace_id, "c")]}),
            json.dumps({"type": "summary", "counters": {}}),
        ]
        path.write_text("\n".join(lines) + "\n")
        spans, skipped = load_trace_events(str(path))
        assert [s["name"] for s in spans] == ["a", "b", "c"]
        assert skipped == 3
