"""Tests for the telemetry layer: spans, counters, sinks, guards."""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs import (
    ConsoleReporter,
    JsonlSink,
    MemorySink,
    NOOP_SPAN,
    Registry,
    derived_metrics,
)


class FakeClock:
    """Deterministic clock: every call advances by ``step``."""

    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


@pytest.fixture
def registry():
    reg = Registry(clock=FakeClock(), wall=lambda: 1234.5)
    sink = MemorySink()
    reg.enable(sink)
    return reg, sink


class TestSpans:
    def test_timing_is_deterministic_with_fake_clock(self, registry):
        reg, sink = registry
        # clock calls: outer enter -> 1, inner enter -> 2,
        # inner exit -> 3, outer exit -> 4
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        inner, outer = sink.spans("inner")[0], sink.spans("outer")[0]
        assert inner["duration"] == 1.0
        assert outer["duration"] == 3.0
        assert inner["start"] == outer["start"] == 1234.5

    def test_nesting_records_parent_ids(self, registry):
        reg, sink = registry
        with reg.span("outer"):
            with reg.span("mid"):
                with reg.span("leaf"):
                    pass
            with reg.span("sibling"):
                pass
        by_name = {s["name"]: s for s in sink.spans()}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["mid"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["leaf"]["parent_id"] == by_name["mid"]["span_id"]
        assert by_name["sibling"]["parent_id"] == by_name["outer"]["span_id"]
        ids = [s["span_id"] for s in sink.spans()]
        assert len(ids) == len(set(ids))

    def test_spans_close_inner_first(self, registry):
        reg, sink = registry
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        assert [s["name"] for s in sink.spans()] == ["inner", "outer"]

    def test_attributes_and_set(self, registry):
        reg, sink = registry
        with reg.span("work", model="m") as span:
            span.set(findings=3)
        event = sink.spans("work")[0]
        assert event["attrs"] == {"model": "m", "findings": 3}

    def test_exception_is_recorded_and_propagates(self, registry):
        reg, sink = registry
        with pytest.raises(ValueError):
            with reg.span("boom"):
                raise ValueError("nope")
        assert sink.spans("boom")[0]["error"] == "ValueError"

    def test_parent_tracking_is_per_thread(self, registry):
        reg, sink = registry
        started = threading.Event()

        def other():
            started.wait(5)
            with reg.span("thread-span"):
                pass

        worker = threading.Thread(target=other)
        worker.start()
        with reg.span("main-span"):
            started.set()
            worker.join()
        # the other thread's span must not parent under main's stack
        assert sink.spans("thread-span")[0]["parent_id"] is None

    def test_events_carry_enclosing_span(self, registry):
        reg, sink = registry
        with reg.span("outer") as span:
            reg.event("ping", detail="x")
        event = [e for e in sink.events if e["type"] == "event"][0]
        assert event["name"] == "ping"
        assert event["parent_id"] == span.span_id
        assert event["ts"] == 1234.5


class TestCounters:
    def test_incr_and_gauge(self, registry):
        reg, _sink = registry
        reg.incr("a")
        reg.incr("a", 4)
        reg.gauge("g", 7.5)
        assert reg.counter("a") == 5
        assert reg.counters() == {"a": 5}
        assert reg.gauges() == {"g": 7.5}

    def test_thread_aggregation_is_exact(self, registry):
        reg, _sink = registry

        def worker():
            for _ in range(1000):
                reg.incr("n")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 8000

    def test_reset_zeroes_everything(self, registry):
        reg, _sink = registry
        reg.incr("a")
        reg.gauge("g", 1)
        reg.reset()
        assert reg.counters() == {} and reg.gauges() == {}


class TestDisabledGuard:
    def test_disabled_registry_records_nothing(self):
        reg = Registry()
        sink = MemorySink()
        with reg._lock:  # attach without enabling
            reg._sinks.append(sink)
        with reg.span("ignored") as span:
            span.set(x=1)
            reg.incr("c")
            reg.gauge("g", 2)
            reg.event("e")
        assert sink.events == []
        assert reg.counters() == {} and reg.gauges() == {}

    def test_disabled_span_is_the_shared_noop(self):
        reg = Registry()
        assert reg.span("a") is NOOP_SPAN
        assert reg.span("b", attr=1) is NOOP_SPAN

    def test_default_registry_sweep_emits_nothing_while_disabled(self):
        from repro.core import Domain, PrimitiveFSM, in_range, less_equal
        from repro.core.sweep import sweep_models

        registry = obs.get_registry()
        assert not registry.enabled
        sink = MemorySink()
        with registry._lock:
            registry._sinks.append(sink)
        try:
            before = registry.counters()
            pfsm = PrimitiveFSM("p", "a", "x",
                                spec_accepts=in_range(0, 10),
                                impl_accepts=less_equal(10))
            model = _one_pfsm_model(pfsm)
            sweep_models({"m": model}, {"m": {"p": Domain.integers(-5, 15)}},
                         workers=2)
            assert sink.events == []
            assert registry.counters() == before
        finally:
            registry.clear_sinks()


def _one_pfsm_model(pfsm):
    from repro.core import Operation, VulnerabilityModel

    return VulnerabilityModel("m", [Operation("op", "x", [pfsm])])


class TestEngineTelemetry:
    """Counter aggregation driven by the real sweep engine."""

    @pytest.fixture(autouse=True)
    def clean_default(self):
        registry = obs.get_registry()
        registry.reset()
        yield
        registry.disable()
        registry.clear_sinks()
        registry.reset()

    def test_parallel_sweep_counters_aggregate_exactly(self):
        from repro.models import all_extended_models, all_extended_pfsm_domains

        sink = MemorySink()
        obs.enable(sink)
        sweeps = __import__("repro.core.sweep", fromlist=["sweep_models"]) \
            .sweep_models(all_extended_models(), all_extended_pfsm_domains(),
                          workers=4)
        obs.disable()
        counters = obs.counters()
        queued = counters["sweep.tasks.queued"]
        assert queued > 0
        assert counters["sweep.tasks.completed"] == queued
        scans = sum(counters.get(k, 0) for k in (
            "sweep.scans.fastpath", "sweep.scans.compiled",
            "sweep.scans.cached", "sweep.scans.plain"))
        assert scans == queued
        assert len(sink.spans("sweep.task")) == queued
        total_found = sum(len(s.findings) for s in sweeps)
        assert total_found > 0
        # every task span nests under the one sweep.models span
        root = sink.spans("sweep.models")[0]
        assert all(s["parent_id"] == root["span_id"]
                   for s in sink.spans("sweep.task"))

    def test_model_run_bridges_trace_events(self):
        from repro.models import all_extended_exploit_inputs, \
            all_extended_models

        label = "Sendmail Signed Integer Overflow"
        model = all_extended_models()[label]
        exploit = all_extended_exploit_inputs()[label]
        sink = MemorySink()
        obs.enable(sink)
        result = model.run(exploit)
        obs.disable()
        kinds = {e["name"] for e in sink.events if e["type"] == "event"}
        assert "trace.operation_start" in kinds
        assert "trace.pfsm_step" in kinds
        runs = sink.spans("model.run")
        assert len(runs) == 1
        assert runs[0]["attrs"]["hidden"] == result.hidden_path_count
        assert len(sink.spans("model.operation")) == len(model.operations)
        assert obs.counters()["model.runs"] == 1

    def test_cache_stats_surface(self):
        from repro.core import Domain, PredicateCache, PrimitiveFSM, \
            always, predicate

        seen = []

        @predicate("expensive")
        def slow(x):
            seen.append(x)
            return x > 0

        cache = PredicateCache(maxsize=2)
        pfsm = PrimitiveFSM("p", "a", "x", spec_accepts=slow,
                            impl_accepts=always)
        domain = Domain.of(1, 2, 3, 1)
        from repro.core.sweep import hidden_witness_scan
        hidden_witness_scan(pfsm, domain, limit=10, cache=cache)
        stats = cache.stats()
        assert set(stats) == {"hits", "misses", "evictions", "size",
                              "maxsize", "hit_rate", "spec_hits"}
        assert stats["misses"] == 3  # 1, 2, 3 (repeat of 1 memoized per scan)
        assert stats["evictions"] == 1  # maxsize 2, three insertions
        assert stats["maxsize"] == 2 and stats["size"] == 2


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        reg = Registry(clock=FakeClock(), wall=lambda: 10.0)
        sink = JsonlSink(str(path))
        reg.enable(sink)
        with reg.span("outer", model="m"):
            reg.event("mark", q=1)
        reg.incr("sweep.cache.hits", 3)
        reg.incr("sweep.cache.misses", 1)
        reg.disable()
        sink.write_summary(reg)
        sink.close()

        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["type"] for e in events] == ["event", "span", "summary"]
        assert events[1]["name"] == "outer"
        assert events[1]["attrs"] == {"model": "m"}
        assert events[2]["counters"]["sweep.cache.hits"] == 3
        assert events[2]["derived"]["cache_hit_rate"] == 0.75

    def test_jsonl_accepts_open_file(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit({"type": "event", "name": "x"})
        sink.close()  # must not close a caller-owned file
        assert json.loads(buf.getvalue()) == {"type": "event", "name": "x"}

    def test_console_reporter_renders_summary(self):
        reg = Registry(clock=FakeClock())
        reporter = ConsoleReporter()
        reg.enable(reporter)
        with reg.span("sweep.task"):
            pass
        reg.incr("sweep.cache.hits", 9)
        reg.incr("sweep.cache.misses", 1)
        reg.incr("sweep.scans.fastpath", 3)
        reg.incr("sweep.scans.cached", 1)
        reg.disable()
        text = reporter.render(reg)
        assert "sweep.task" in text
        assert "cache hit rate: 90.0%" in text
        assert "interval fast-path coverage: 75.0%" in text

    def test_derived_metrics_omit_empty_denominators(self):
        assert derived_metrics({}) == {}
        only_cache = derived_metrics({"sweep.cache.hits": 1,
                                      "sweep.cache.misses": 1})
        assert only_cache == {"cache_hit_rate": 0.5}


class TestModuleLevelApi:
    def test_enable_disable_round_trip(self):
        registry = obs.get_registry()
        sink = MemorySink()
        try:
            obs.enable(sink)
            assert obs.enabled()
            with obs.span("s"):
                obs.incr("k")
                obs.event("e")
            assert obs.counters()["k"] == 1
            assert {e["type"] for e in sink.events} == {"span", "event"}
        finally:
            obs.disable()
            registry.clear_sinks()
            registry.reset()
        assert not obs.enabled()


class TestJsonlBuffering:
    def test_emits_below_threshold_stay_buffered_until_flush(self, tmp_path):
        path = tmp_path / "buffered.jsonl"
        sink = JsonlSink(str(path), buffer_lines=64)
        for i in range(10):
            sink.emit({"type": "event", "i": i})
        # nothing hit the file yet — the whole point of buffering
        assert path.read_text() == ""
        sink.flush()
        assert len(path.read_text().splitlines()) == 10
        sink.close()

    def test_buffer_drains_automatically_at_threshold(self):
        buf = io.StringIO()  # writes to it are immediately visible
        sink = JsonlSink(buf, buffer_lines=4)
        for i in range(3):
            sink.emit({"type": "event", "i": i})
        assert buf.getvalue() == ""
        sink.emit({"type": "event", "i": 3})
        assert len(buf.getvalue().splitlines()) == 4
        sink.close()

    def test_close_flushes_remaining_lines(self, tmp_path):
        path = tmp_path / "close.jsonl"
        sink = JsonlSink(str(path), buffer_lines=1000)
        sink.emit({"type": "event", "i": 0})
        sink.close()
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert events == [{"type": "event", "i": 0}]

    def test_write_summary_is_a_read_barrier(self, tmp_path):
        path = tmp_path / "summary.jsonl"
        reg = Registry()
        sink = JsonlSink(str(path), buffer_lines=1000)
        reg.enable(sink)
        reg.incr("sweep.cache.hits")
        reg.event("mark")
        sink.write_summary(reg)
        # before close: summary flushed everything buffered so far
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["type"] for e in lines] == ["event", "summary"]
        reg.disable()
        sink.close()

    def test_forked_child_never_writes_inherited_buffer(self, tmp_path):
        import os as _os
        if not hasattr(_os, "fork"):
            pytest.skip("fork not available")
        path = tmp_path / "forked.jsonl"
        sink = JsonlSink(str(path), buffer_lines=1000)
        sink.emit({"type": "event", "who": "parent"})
        pid = _os.fork()
        if pid == 0:  # child: emit + flush must both be no-ops
            try:
                sink.emit({"type": "event", "who": "child"})
                sink.flush()
                sink.close()
            finally:
                _os._exit(0)
        _os.waitpid(pid, 0)
        sink.close()
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert events == [{"type": "event", "who": "parent"}]


class TestConsoleReporterSort:
    @staticmethod
    def _populated_reporter():
        """leaf runs 3x (all self time); parent wraps them (little self)."""
        clock = FakeClock(step=1.0)
        reg = Registry(clock=clock)
        reporter = ConsoleReporter()
        reg.enable(reporter)
        with reg.span("parent"):
            for _ in range(3):
                with reg.span("leaf"):
                    pass
        for _ in range(3):  # standalone leaves: all self time
            with reg.span("leaf"):
                pass
        reg.disable()
        return reg, reporter

    @staticmethod
    def _table_order(text):
        rows = [line.split()[0] for line in text.splitlines()
                if line and not line.startswith(("=", "-", "(", "span"))
                and ":" not in line]
        return rows

    def test_self_time_subtracts_direct_children(self):
        reg, reporter = self._populated_reporter()
        text = reporter.render(reg)
        # the clock ticks once per enter/exit: each leaf lasts 1 tick,
        # parent lasts 7 with 3 ticks inside children -> self 4.0
        parent_row = next(l for l in text.splitlines()
                          if l.startswith("parent"))
        cols = parent_row.split()
        assert float(cols[2]) == 7.0   # total_s
        assert float(cols[3]) == 4.0   # self_s
        leaf_row = next(l for l in text.splitlines() if l.startswith("leaf"))
        assert float(leaf_row.split()[2]) == float(leaf_row.split()[3])

    def test_sort_total_puts_parent_first(self):
        reg, reporter = self._populated_reporter()
        assert self._table_order(reporter.render(reg, sort="total"))[0] \
            == "parent"

    def test_sort_self_puts_leaf_first(self):
        reg, reporter = self._populated_reporter()
        assert self._table_order(reporter.render(reg, sort="self"))[0] \
            == "leaf"

    def test_sort_count_puts_leaf_first(self):
        reg, reporter = self._populated_reporter()
        assert self._table_order(reporter.render(reg, sort="count"))[0] \
            == "leaf"

    def test_invalid_sort_rejected(self):
        reg, reporter = self._populated_reporter()
        with pytest.raises(ValueError):
            reporter.render(reg, sort="alphabetical")
