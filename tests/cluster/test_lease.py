"""The clock-free lease ledger: claims, renewals, reaping, bounded
retries — and the hypothesis suite proving any claim interleaving
across any number of consumers converges to the same merged result."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ChunkLedger


def _ledger(n=4, **kwargs):
    return ChunkLedger({cid: f"payload-{cid}" for cid in range(n)},
                       **kwargs)


def _outcome(chunk_id):
    """The canonical (deterministic) result of executing one chunk."""
    return ("result", chunk_id)


class TestClaimCycle:
    def test_claims_are_issued_in_chunk_order(self):
        ledger = _ledger(3)
        order = [ledger.claim("w", now=0.0, ttl=5.0).chunk_id
                 for _ in range(3)]
        assert order == [0, 1, 2]
        assert ledger.claim("w", now=0.0, ttl=5.0) is None

    def test_complete_discharges_lease_and_reaches_done(self):
        ledger = _ledger(2)
        for _ in range(2):
            lease = ledger.claim("w", now=0.0, ttl=5.0)
            assert ledger.complete(lease.chunk_id,
                                   _outcome(lease.chunk_id))
        assert ledger.done and not ledger.leases()
        assert ledger.outcomes == {0: _outcome(0), 1: _outcome(1)}

    def test_duplicate_complete_is_dropped(self):
        ledger = _ledger(1)
        lease = ledger.claim("a", now=0.0, ttl=5.0)
        assert ledger.complete(lease.chunk_id, _outcome(0)) is True
        assert ledger.complete(lease.chunk_id, ("late", 0)) is False
        assert ledger.outcomes[0] == _outcome(0)  # first writer wins

    def test_payload_and_attempt_lookup(self):
        ledger = _ledger(2)
        assert ledger.payload(1) == "payload-1"
        assert ledger.attempt(1) == 0


class TestExpiryAndRecovery:
    def test_expired_lease_is_reclaimed_to_the_front(self):
        ledger = _ledger(3)
        first = ledger.claim("dying", now=0.0, ttl=1.0)
        assert first.chunk_id == 0
        reaped = ledger.reap(now=2.0)
        assert reaped == [(0, "dying", "requeued")]
        # Reclaimed work restarts before fresh work.
        assert ledger.claim("other", now=2.0, ttl=5.0).chunk_id == 0

    def test_renew_pushes_the_deadline_out(self):
        ledger = _ledger(1)
        ledger.claim("busy", now=0.0, ttl=1.0)
        assert ledger.renew("busy", now=0.9, ttl=1.0) == 1
        assert ledger.reap(now=1.5) == []  # renewed past the old expiry
        assert ledger.reap(now=2.5)  # but not forever

    def test_release_claimant_reclaims_everything_held(self):
        ledger = _ledger(3)
        ledger.claim("dead", now=0.0, ttl=5.0)
        ledger.claim("dead", now=0.0, ttl=5.0)
        ledger.claim("alive", now=0.0, ttl=5.0)
        assert sorted(ledger.release_claimant("dead")) == \
            [(0, "requeued"), (1, "requeued")]
        assert [lease.claimant for lease in ledger.leases()] == ["alive"]

    def test_retries_are_bounded_then_chunk_fails(self):
        ledger = _ledger(1, max_retries=2)
        dispositions = []
        for _ in range(3):
            lease = ledger.claim("flaky", now=0.0, ttl=5.0)
            assert lease is not None
            dispositions.append(ledger.release(lease.chunk_id))
        assert dispositions == ["requeued", "requeued", "exhausted"]
        assert ledger.failed == [0] and ledger.done
        assert ledger.claim("w", now=0.0, ttl=5.0) is None

    def test_late_result_after_reclaim_still_counts_once(self):
        ledger = _ledger(1)
        ledger.claim("slow", now=0.0, ttl=1.0)
        ledger.reap(now=2.0)  # requeued; "slow" no longer holds it
        # The original claimant's result arrives late — deterministic
        # re-execution makes it identical, so it is accepted once and
        # the stale queue entry is discharged at the next claim.
        assert ledger.complete(0, _outcome(0)) is True
        assert ledger.claim("other", now=2.0, ttl=5.0) is None
        assert ledger.done


class TestRenewReapRaces:
    """The heartbeat/reaper boundary races: a renewal landing exactly at
    the old deadline, a claimant released while its result is landing,
    and a reaped chunk's original result arriving after re-execution."""

    def test_heartbeat_exactly_at_expiry_keeps_the_lease(self):
        ledger = _ledger(1)
        ledger.claim("steady", now=0.0, ttl=1.0)
        # The renewal and the reaper both run at t == deadline; the
        # coordinator applies the heartbeat first, so the lease lives.
        assert ledger.renew("steady", now=1.0, ttl=1.0) == 1
        assert ledger.reap(now=1.0) == []
        assert ledger.leases()[0].deadline == 2.0

    def test_reap_at_exact_deadline_without_renew_reclaims(self):
        # Expiry is inclusive (deadline <= now): a claimant whose last
        # heartbeat is a full TTL old is dead, not "just in time".
        ledger = _ledger(1)
        ledger.claim("silent", now=0.0, ttl=1.0)
        assert ledger.reap(now=1.0) == [(0, "silent", "requeued")]

    def test_release_claimant_racing_complete_keeps_the_result(self):
        ledger = _ledger(2)
        ledger.claim("w", now=0.0, ttl=5.0)
        ledger.claim("w", now=0.0, ttl=5.0)
        # The result for chunk 0 lands just before the disconnect
        # sweep: only the unfinished chunk is requeued, the finished
        # one is not re-executed and burns no retry.
        assert ledger.complete(0, _outcome(0))
        assert ledger.release_claimant("w") == [(1, "requeued")]
        assert ledger.release(0) == "absent"
        assert ledger.attempt(0) == 0
        assert ledger.outcomes[0] == _outcome(0)

    def test_reap_then_late_result_first_writer_wins(self):
        ledger = _ledger(1)
        ledger.claim("slow", now=0.0, ttl=1.0)
        assert ledger.reap(now=2.0) == [(0, "slow", "requeued")]
        # The chunk is re-claimed and finished by another worker ...
        lease = ledger.claim("fast", now=2.0, ttl=5.0)
        assert lease.chunk_id == 0 and lease.attempt == 1
        assert ledger.complete(0, _outcome(0)) is True
        # ... then the reaped claimant's copy finally arrives: dropped,
        # and the recorded outcome is untouched.
        assert ledger.complete(0, ("stale", 0)) is False
        assert ledger.outcomes[0] == _outcome(0)
        assert ledger.done and not ledger.failed

    @settings(max_examples=60, deadline=None)
    @given(gaps=st.lists(st.floats(min_value=0.01, max_value=0.99),
                         min_size=1, max_size=30))
    def test_heartbeats_inside_the_ttl_never_lose_the_lease(self, gaps):
        """Property: however irregular the cadence, renewals spaced
        strictly under the TTL keep the lease through every reap —
        and one full TTL of silence always loses it."""
        ledger = _ledger(1)
        ledger.claim("steady", now=0.0, ttl=1.0)
        now = 0.0
        for gap in gaps:
            now += gap
            assert ledger.reap(now) == []
            assert ledger.renew("steady", now=now, ttl=1.0) == 1
        assert ledger.reap(now + 0.99) == []
        assert ledger.reap(now + 1.0) == [(0, "steady", "requeued")]


#: Schedule steps the interleaving suite draws from: which consumer
#: acts, and what it does.
_STEPS = st.lists(
    st.tuples(st.sampled_from(["claim", "finish", "die", "expire"]),
              st.integers(min_value=0, max_value=3)),
    max_size=50)


class TestInterleavingDeterminism:
    """Satellite: any interleaving of claims/completions/deaths across N
    consumers yields the same merged result set, in the same order."""

    @settings(max_examples=120, deadline=None)
    @given(schedule=_STEPS)
    def test_any_schedule_converges_to_canonical_results(self, schedule):
        chunk_ids = range(6)
        ledger = ChunkLedger({cid: f"p{cid}" for cid in chunk_ids},
                             max_retries=10_000)  # nothing exhausts
        now = 0.0
        held = {w: [] for w in range(4)}
        for op, w in schedule:
            worker = f"w{w}"
            if op == "claim":
                lease = ledger.claim(worker, now=now, ttl=3.0)
                if lease is not None:
                    held[w].append(lease.chunk_id)
            elif op == "finish" and held[w]:
                # Completes its oldest chunk — possibly one whose lease
                # was already reclaimed (the late-duplicate path).
                chunk_id = held[w].pop(0)
                ledger.complete(chunk_id, _outcome(chunk_id))
            elif op == "die":
                ledger.release_claimant(worker)
                held[w] = []
            elif op == "expire":
                now += 10.0
                ledger.reap(now)
        # Whatever happened, a surviving consumer drains the rest.
        while not ledger.done:
            lease = ledger.claim("finisher", now=now, ttl=3.0)
            if lease is None:
                now += 10.0
                ledger.reap(now)
                continue
            ledger.complete(lease.chunk_id, _outcome(lease.chunk_id))
        assert not ledger.failed
        # Deterministic merge: every chunk's canonical outcome, no
        # matter who executed it, how often, or in what order.
        assert dict(ledger.outcomes) == \
            {cid: _outcome(cid) for cid in chunk_ids}
