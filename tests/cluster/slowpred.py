"""Named predicates for the cluster recovery tests.

Imported by worker agent subprocesses via ``repro worker --preload
tests.cluster.slowpred`` (and resolved by name when shipped tasks
unpickle), so a chunk takes long enough to SIGKILL the agent while the
chunk is genuinely mid-execution.  The sleep changes timing only —
verdicts stay deterministic, which is what makes the re-executed chunk
bit-identical to the killed one.
"""

import time

from repro.core import named_predicate


def _slow_in_range(value):
    time.sleep(0.01)
    return 0 <= value <= 5


slow_spec = named_predicate(
    "cluster_slow_spec", _slow_in_range,
    "in [0, 5], 10ms per verdict (cluster recovery tests)")
