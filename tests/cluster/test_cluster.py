"""End-to-end cluster fabric tests: parity with the process backend,
zero-worker liveness, connection-drop recovery, SIGKILL recovery
through a real worker subprocess, and the serve fan-out."""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.cluster import (
    ClusterCoordinator,
    ClusterWorker,
    WorkerConnectError,
    coordinating,
)
from repro.cluster.protocol import encode_line, read_line
from repro.core import Domain, PrimitiveFSM, in_range, less_equal, dist
from repro.core.sweep import _scan_task, sweep_models
from repro.models import sendmail_model, wuftpd_model

from .slowpred import slow_spec

_REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture(autouse=True)
def _fresh_scheduler():
    dist.reset()
    dist.clear_memo()
    yield
    dist.reset()
    dist.clear_memo()


def _models():
    return ({"sendmail": sendmail_model.build_model(),
             "wuftpd": wuftpd_model.build_model()},
            {"sendmail": sendmail_model.pfsm_domains(),
             "wuftpd": wuftpd_model.pfsm_domains()})


def _flat(sweeps):
    return [(s.model_name, f.pfsm_name, tuple(f.witnesses))
            for s in sweeps for f in s.findings]


def _tasks(n=4, spec=None, size=30):
    pfsm = PrimitiveFSM("p", "scan", "x",
                        spec_accepts=spec or in_range(0, 5),
                        impl_accepts=less_equal(10))
    return [("model", f"op{i}", pfsm, Domain.integers(0, size), 5)
            for i in range(n)]


def _witnesses(results):
    return [tuple(r.witnesses) if r is not None else None for r in results]


class TestClusterBackendParity:
    def test_sweep_matches_process_backend_with_workers(self):
        models, domains = _models()
        expected = _flat(sweep_models(models, domains, limit=4,
                                      mode="process", workers=2))
        dist.reset()
        dist.clear_memo()
        with ClusterCoordinator() as coordinator, \
                coordinating(coordinator):
            agents = [ClusterWorker(*coordinator.address, slots=1,
                                    inline=True) for _ in range(2)]
            for agent in agents:
                agent.start()
            assert coordinator.wait_for_workers(2, timeout=10.0)
            got = _flat(sweep_models(models, domains, limit=4,
                                     backend="cluster", workers=2))
            for agent in agents:
                agent.stop()
            assert coordinator.counter("chunks.completed") >= 1
            assert coordinator.counter("chunks.inline") == 0
        assert got == expected

    def test_zero_workers_degrades_to_inline_and_matches(self):
        models, domains = _models()
        expected = _flat(sweep_models(models, domains, limit=4,
                                      mode="process", workers=2))
        dist.reset()
        dist.clear_memo()
        with ClusterCoordinator() as coordinator, \
                coordinating(coordinator):
            got = _flat(sweep_models(models, domains, limit=4,
                                     backend="cluster", workers=2))
            completed = coordinator.counter("chunks.completed")
            assert completed >= 1
            assert coordinator.counter("chunks.inline") == completed
        assert got == expected

    def test_backend_kwarg_is_an_alias_for_mode(self):
        models, domains = _models()
        expected = _flat(sweep_models(models, domains, limit=3,
                                      mode="thread"))
        assert _flat(sweep_models(models, domains, limit=3,
                                  backend="thread")) == expected

    def test_cluster_without_coordinator_is_a_clear_error(self):
        with pytest.raises(RuntimeError, match="coordinator"):
            dist.run_tasks(_tasks(1), 2, backend="cluster")


class TestConnectionDropRecovery:
    def test_dead_connection_frees_its_lease_immediately(self):
        """A raw-socket 'worker' claims a chunk and vanishes without a
        goodbye; the sweep must still complete with identical results,
        via the EOF fast path (no lease timeout wait)."""
        tasks = _tasks(4)
        expected = _witnesses([_scan_task(t) for t in tasks])
        with ClusterCoordinator(lease_timeout=30.0) as coordinator, \
                coordinating(coordinator):
            results = {}

            def sweep():
                results["got"] = dist.run_tasks(tasks, 2,
                                                backend="cluster")

            runner = threading.Thread(target=sweep)
            conn = socket.create_connection(coordinator.address)
            reader = conn.makefile("rb")
            try:
                conn.sendall(encode_line(
                    {"op": "hello", "worker": "doomed", "slots": 1}))
                read_line(reader)
                runner.start()
                deadline = time.monotonic() + 10.0
                claimed = None
                while time.monotonic() < deadline:
                    conn.sendall(encode_line(
                        {"op": "claim", "worker": "doomed"}))
                    import json
                    response = json.loads(read_line(reader))
                    if response.get("status") == "chunk":
                        claimed = response
                        break
                    time.sleep(0.02)
                assert claimed is not None, "never got a chunk"
            finally:
                # Dies holding the lease — no bye, no result.  (The
                # makefile reader dups the fd, so it must close too for
                # the kernel to send the FIN a SIGKILL would.)
                reader.close()
                conn.close()
            runner.join(timeout=30.0)
            assert not runner.is_alive()
            assert coordinator.counter("chunks.reclaimed") >= 1
            assert coordinator.counter("workers.lost") == 1
        assert _witnesses(results["got"]) == expected

    def test_failed_chunks_fall_back_inline_after_retries(self):
        """Every attempt is refused by a saboteur claiming and failing
        chunks; retries exhaust and the scheduler's inline fallback
        still produces the full result set."""
        tasks = _tasks(2)
        expected = _witnesses([_scan_task(t) for t in tasks])
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            with ClusterCoordinator(lease_timeout=30.0) as coordinator, \
                    coordinating(coordinator):
                stop = threading.Event()

                def saboteur():
                    import json
                    conn = socket.create_connection(coordinator.address)
                    reader = conn.makefile("rb")
                    conn.sendall(encode_line({"op": "hello",
                                              "worker": "sab",
                                              "slots": 1}))
                    read_line(reader)
                    while not stop.is_set():
                        conn.sendall(encode_line({"op": "claim",
                                                  "worker": "sab"}))
                        response = json.loads(read_line(reader))
                        if response.get("status") == "chunk":
                            conn.sendall(encode_line(
                                {"op": "fail", "worker": "sab",
                                 "job": response["job"],
                                 "chunk": response["chunk"],
                                 "lease": response["lease"],
                                 "error": "sabotage"}))
                            read_line(reader)
                        else:
                            time.sleep(0.01)
                    conn.sendall(encode_line({"op": "bye",
                                              "worker": "sab"}))
                    read_line(reader)
                    conn.close()

                thread = threading.Thread(target=saboteur, daemon=True)
                thread.start()
                assert coordinator.wait_for_workers(1, timeout=10.0)
                try:
                    got = dist.run_tasks(tasks, 2, backend="cluster",
                                         max_retries=1)
                finally:
                    stop.set()
                    thread.join(timeout=10.0)
                assert coordinator.counter("chunks.failed") >= 1
            counters = registry.counters()
        finally:
            registry.disable()
            registry.reset()
        assert _witnesses(got) == expected
        assert counters.get("dist.chunk.inline_fallback", 0) >= 1


class TestSigkillRecovery:
    """Satellite: SIGKILL a real worker subprocess mid-chunk; the sweep
    completes with identical results and counts the reclaim."""

    def test_sigkilled_worker_mid_chunk_is_recovered(self):
        tasks = _tasks(4, spec=slow_spec, size=60)  # ~0.6s per chunk
        expected = _witnesses([_scan_task(t) for t in tasks])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(_REPO_ROOT, "src"), _REPO_ROOT]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        with ClusterCoordinator() as coordinator, \
                coordinating(coordinator):
            agent = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", "127.0.0.1:%d" % coordinator.port,
                 "--workers", "1", "--inline",
                 "--preload", "tests.cluster.slowpred",
                 "--connect-timeout", "10"],
                cwd=_REPO_ROOT, env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            try:
                assert coordinator.wait_for_workers(1, timeout=20.0)
                results = {}

                def sweep():
                    results["got"] = dist.run_tasks(
                        tasks, 2, backend="cluster")

                runner = threading.Thread(target=sweep)
                runner.start()
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    if coordinator.counter("chunks.claimed") >= 1:
                        break
                    time.sleep(0.01)
                assert coordinator.counter("chunks.claimed") >= 1
                time.sleep(0.05)  # let execution get under way
                agent.send_signal(signal.SIGKILL)  # mid-chunk
                runner.join(timeout=60.0)
                assert not runner.is_alive()
            finally:
                agent.kill()
                agent.wait(timeout=10.0)
            assert coordinator.counter("chunks.reclaimed") >= 1
            assert coordinator.counter("workers.lost") == 1
            completed = coordinator.counter("chunks.completed")
            assert completed == coordinator.counter("chunks.claimed") \
                - coordinator.counter("chunks.reclaimed") \
                - coordinator.counter("chunks.duplicate")
        assert _witnesses(results["got"]) == expected


class TestWorkerAgent:
    def test_unreachable_coordinator_raises_connect_error(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here
        agent = ClusterWorker("127.0.0.1", port, connect_timeout=0.3,
                              inline=True)
        with pytest.raises(WorkerConnectError):
            agent.run()

    def test_worker_exits_cleanly_when_coordinator_goes_away(self):
        coordinator = ClusterCoordinator()
        coordinator.start()
        agent = ClusterWorker(*coordinator.address, slots=1, inline=True,
                              connect_timeout=0.5)
        agent.start()
        assert coordinator.wait_for_workers(1, timeout=10.0)
        coordinator.close()
        agent.stop(timeout=10.0)
        assert not agent._run_thread.is_alive()


class TestServeClusterFanout:
    def test_serve_dispatches_through_workers_and_exposes_counters(self):
        from repro.serve import ServeConfig, ServerThread
        from repro.serve.client import ServeClient

        handle = ServerThread(ServeConfig(
            port=0, backend="cluster", cluster_listen="127.0.0.1:0",
            batch_window=0.005)).start()
        try:
            coordinator = handle.server.coordinator
            assert coordinator is not None
            agent = ClusterWorker(*coordinator.address, slots=1,
                                  inline=True)
            agent.start()
            assert coordinator.wait_for_workers(1, timeout=10.0)
            with ServeClient(handle.host, handle.port) as client:
                response = client.query("sendmail", limit=3)
                assert response["status"] == "ok"
                assert response["vulnerable"] is True
                metrics = client.metrics()
            assert metrics["counters"].get(
                "cluster.chunks.completed", 0) >= 1
            assert metrics["cluster"]["counters"][
                "chunks.completed"] >= 1
            exposition = handle.server.prometheus_metrics()
            assert "repro_serve_cluster_chunks_completed_total" \
                in exposition
            assert "repro_serve_cluster_workers_joined_total" \
                in exposition
            agent.stop()
        finally:
            handle.shutdown()
