"""The cluster wire protocol: framing, validation, codecs, addresses."""

import io
import json

import pytest

from repro.cluster.protocol import (
    MAX_LINE,
    ClusterProtocolError,
    decode_blob,
    decode_message,
    decode_payload,
    encode_blob,
    encode_line,
    encode_payload,
    parse_address,
    read_line,
)


class TestFraming:
    def test_encode_line_is_one_json_line(self):
        raw = encode_line({"op": "ping", "n": 1})
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        assert json.loads(raw) == {"op": "ping", "n": 1}

    def test_read_line_round_trips_and_signals_eof(self):
        stream = io.BytesIO(encode_line({"op": "ping"}))
        assert json.loads(read_line(stream)) == {"op": "ping"}
        assert read_line(stream) is None  # EOF, not an exception

    def test_read_line_rejects_oversized_lines(self):
        stream = io.BytesIO(b"x" * (MAX_LINE + 10))
        with pytest.raises(ClusterProtocolError):
            read_line(stream)


class TestMessages:
    def test_known_ops_decode(self):
        msg = decode_message('{"op": "claim", "worker": "w-1"}')
        assert msg["op"] == "claim" and msg["worker"] == "w-1"

    def test_unknown_op_rejected(self):
        with pytest.raises(ClusterProtocolError):
            decode_message('{"op": "evaluate", "worker": "w-1"}')

    def test_missing_worker_rejected(self):
        with pytest.raises(ClusterProtocolError):
            decode_message('{"op": "claim"}')

    def test_ping_needs_no_worker(self):
        assert decode_message('{"op": "ping"}')["op"] == "ping"

    def test_non_json_rejected(self):
        with pytest.raises(ClusterProtocolError):
            decode_message("claim w-1")


class TestCodecs:
    def test_blob_round_trip(self):
        data = bytes(range(256)) * 3
        assert decode_blob(encode_blob(data)) == data

    def test_invalid_base64_rejected(self):
        with pytest.raises(ClusterProtocolError):
            decode_blob("@@@not-base64@@@")

    def test_payload_round_trip_preserves_order_and_bytes(self):
        rows = [(4, b"\x00\x01task"), (0, b"other")]
        assert decode_payload(encode_payload(rows)) == rows

    def test_payload_rejects_malformed_rows(self):
        for bad in (None, [["x", "aGk="]], [[True, "aGk="]], [[1]]):
            with pytest.raises(ClusterProtocolError):
                decode_payload(bad)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.7:9000") == ("10.0.0.7", 9000)

    def test_bare_port_gets_default_host(self):
        assert parse_address("9000") == ("127.0.0.1", 9000)

    def test_bad_port_raises_with_flag_name(self):
        with pytest.raises(ValueError, match="--listen"):
            parse_address("host:notaport", flag="--listen")

    def test_out_of_range_port_rejected(self):
        with pytest.raises(ValueError):
            parse_address("host:70000")
