"""CLI tests: every subcommand runs and prints the expected shapes."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestCli:
    def test_list(self, capsys):
        code, out = run(capsys, "list")
        assert code == 0
        assert "sendmail" in out and "#3163" in out
        assert out.count("pFSMs") == 13

    def test_stats(self, capsys):
        code, out = run(capsys, "stats", "--total", "500")
        assert code == 0
        assert "Input Validation Error" in out
        assert "22" in out

    def test_table1(self, capsys):
        code, out = run(capsys, "table1")
        assert code == 0
        for bid in ("3163", "5493", "3958"):
            assert bid in out

    def test_model_ascii(self, capsys):
        code, out = run(capsys, "model", "sendmail")
        assert code == 0
        assert "pFSM2" in out and "propagation gate" in out

    def test_model_dot(self, capsys):
        code, out = run(capsys, "model", "sendmail", "--dot")
        assert out.startswith("digraph")

    def test_model_json(self, capsys):
        code, out = run(capsys, "model", "nullhttpd", "--json")
        data = json.loads(out)
        assert data["bugtraq_ids"] == [5774, 6255]

    def test_model_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["model", "nosuch"])

    def test_trace_exploit(self, capsys):
        code, out = run(capsys, "trace", "ghttpd")
        assert "COMPROMISED" in out

    def test_trace_benign(self, capsys):
        code, out = run(capsys, "trace", "ghttpd", "--benign")
        assert "safe" in out

    def test_trace_json(self, capsys):
        code, out = run(capsys, "trace", "iis", "--json")
        data = json.loads(out)
        assert data["compromised"]

    def test_foil(self, capsys):
        code, out = run(capsys, "foil", "rwall")
        assert "pFSM1" in out and "pFSM2" in out

    def test_statespace(self, capsys):
        code, out = run(capsys, "statespace", "sendmail")
        assert "compromise reachable via hidden paths: True" in out
        assert "cut set" in out

    def test_statespace_dot(self, capsys):
        code, out = run(capsys, "statespace", "xterm", "--dot")
        assert out.startswith("digraph")

    def test_table2(self, capsys):
        code, out = run(capsys, "table2")
        assert out.count("Check") >= 16

    def test_discover(self, capsys):
        code, out = run(capsys, "discover")
        assert "[NEW]" in out and "pFSM2" in out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepCommand:
    def test_sweep_text_reports_cache_stats(self, capsys):
        code, out = run(capsys, "sweep")
        assert code == 0
        assert "hidden-path findings" in out
        assert "cache:" in out and "hit rate" in out

    def test_sweep_json_includes_cache_stats(self, capsys):
        code, out = run(capsys, "sweep", "--json")
        data = json.loads(out)
        assert data["models"], "expected at least one swept model"
        cache = data["cache"]
        assert set(cache) >= {"hits", "misses", "evictions", "hit_rate"}

    def test_sweep_json_no_cache_nulls_stats(self, capsys):
        code, out = run(capsys, "sweep", "--json", "--no-cache")
        data = json.loads(out)
        assert data["cache"] is None

    def test_sweep_json_reports_settings(self, capsys):
        code, out = run(capsys, "sweep", "--json")
        settings = json.loads(out)["settings"]
        assert settings["scan_window"] == 512
        assert settings["columnar"] is True
        assert settings["columnar_backend"] in ("numpy", "stdlib")
        assert settings["cache"] is True and settings["plan"] is True

    def test_sweep_scan_window_flag(self, capsys):
        code, out = run(capsys, "sweep", "--json", "--scan-window", "64")
        assert code == 0
        assert json.loads(out)["settings"]["scan_window"] == 64

    def test_sweep_scan_window_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--scan-window", "0"])

    def test_sweep_no_columnar_flag(self, capsys):
        from repro.core import columnar

        code, out = run(capsys, "sweep", "--json", "--no-columnar")
        data = json.loads(out)
        assert data["settings"]["columnar"] is False
        assert data["scans"]["columnar"] == 0
        # The bypass must not leak past the command.
        assert columnar.is_enabled()


class TestObservabilityFlags:
    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_profile_prints_summary(self, capsys):
        code, out = run(capsys, "sweep", "--profile")
        assert code == 0
        assert "== profile ==" in out
        assert "sweep.task" in out
        assert "cache hit rate" in out
        assert "interval fast-path coverage" in out

    def test_profile_on_trace_subcommand(self, capsys):
        code, out = run(capsys, "trace", "sendmail", "--profile")
        assert code == 0
        assert "model.run" in out and "model.operation" in out

    def test_trace_file_writes_valid_jsonl(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        code, _out = run(capsys, "sweep", "--trace-file", str(path))
        assert code == 0
        lines = path.read_text().splitlines()
        assert lines, "trace file is empty"
        events = [json.loads(line) for line in lines]
        assert events[-1]["type"] == "summary"
        assert any(e["type"] == "span" for e in events)

    def test_registry_left_clean_after_profiled_run(self, capsys):
        from repro import obs

        run(capsys, "sweep", "--profile")
        assert not obs.enabled()
        assert obs.counters() == {}

    def test_plain_run_records_nothing(self, capsys):
        from repro import obs

        run(capsys, "sweep")
        assert not obs.enabled()
        assert obs.counters() == {}


class TestFailOnWitness:
    def test_witnesses_fail_the_run(self, capsys):
        # The bundled corpus is all vulnerabilities: witnesses exist,
        # so the CI gate must exit nonzero and say why.
        code, out = run(capsys, "sweep", "--limit", "1",
                        "--fail-on-witness")
        assert code == 1
        assert "--fail-on-witness" in out

    def test_json_mode_reports_total_and_fails(self, capsys):
        code, out = run(capsys, "sweep", "--limit", "1",
                        "--fail-on-witness", "--json")
        assert code == 1
        data = json.loads(out)
        assert data["total_findings"] > 0

    def test_without_flag_witnesses_still_pass(self, capsys):
        code, _ = run(capsys, "sweep", "--limit", "1")
        assert code == 0


class TestServeCli:
    def test_query_against_live_server(self, capsys):
        from repro.serve import ServeConfig, ServerThread

        handle = ServerThread(ServeConfig(port=0)).start()
        try:
            code, out = run(capsys, "query", "sendmail",
                            "--port", str(handle.port))
            assert code == 0
            assert "VULNERABLE" in out
            code, out = run(capsys, "query", "sendmail", "--json",
                            "--port", str(handle.port))
            assert code == 0
            payload = json.loads(out)
            assert payload["status"] == "ok"
            assert payload["cached"] is True  # second hit on one server
            code, out = run(capsys, "query", "--metrics",
                            "--port", str(handle.port))
            assert code == 0
            assert json.loads(out)["counters"]["requests.query"] >= 2
        finally:
            handle.shutdown()

    def test_query_connection_refused_exits_nonzero(self, capsys):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        free_port = sock.getsockname()[1]
        sock.close()
        code = main(["query", "sendmail", "--port", str(free_port),
                     "--timeout", "2"])
        capsys.readouterr()
        assert code == 1

    def test_serve_flags_parse(self):
        # The serve subcommand's knobs map 1:1 onto ServeConfig; a
        # parse-only probe (bad flag) must exit via argparse, code 2.
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--no-such-flag"])
        assert excinfo.value.code == 2


class TestClusterCli:
    @staticmethod
    def _free_port():
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_cluster_backend_requires_listen(self):
        with pytest.raises(SystemExit, match="--listen"):
            main(["sweep", "--backend", "cluster"])

    def test_cluster_sweep_completes_inline_without_workers(self, capsys):
        # Zero workers: the coordinator degrades to inline execution,
        # and the JSON report carries the cluster block.
        code, out = run(capsys, "sweep", "--json", "--backend", "cluster",
                        "--listen", "127.0.0.1:%d" % self._free_port(),
                        "--limit", "2")
        assert code == 0
        data = json.loads(out)
        assert data["settings"]["backend"] == "cluster"
        cluster = data["cluster"]
        assert cluster["workers_joined"] == 0
        assert cluster["chunks_inline"] >= 1
        assert cluster["chunks_inline"] == cluster["chunks_completed"]

    def test_cluster_json_matches_process_backend(self, capsys):
        code, cluster_out = run(
            capsys, "sweep", "--json", "--backend", "cluster",
            "--listen", "127.0.0.1:%d" % self._free_port(),
            "--limit", "2")
        assert code == 0
        code, process_out = run(capsys, "sweep", "--json",
                                "--backend", "process", "--limit", "2")
        assert code == 0
        a = json.loads(cluster_out)
        b = json.loads(process_out)
        assert a["models"] == b["models"]
        assert a["total_findings"] == b["total_findings"]

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker"])
        assert excinfo.value.code == 2

    def test_worker_rejects_malformed_address(self):
        with pytest.raises(SystemExit, match="--connect"):
            main(["worker", "--connect", "nota:port:here:x"])

    def test_worker_unreachable_coordinator_exits_2(self, capsys):
        code = main(["worker", "--connect",
                     "127.0.0.1:%d" % self._free_port(),
                     "--connect-timeout", "0.3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot connect" in captured.err

    def test_query_connect_timeout_exits_2_with_clear_message(self,
                                                              capsys):
        port = self._free_port()
        code = main(["query", "sendmail", "--port", str(port),
                     "--connect-timeout", "0.3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot connect" in captured.err
        assert "0.3s" in captured.err

    def test_query_without_connect_timeout_keeps_legacy_exit_1(self,
                                                               capsys):
        code = main(["query", "sendmail",
                     "--port", str(self._free_port()),
                     "--timeout", "2"])
        capsys.readouterr()
        assert code == 1


class TestTraceExport:
    def test_export_converts_trace_file_to_chrome_json(self, capsys,
                                                       tmp_path):
        events = tmp_path / "events.jsonl"
        out = tmp_path / "chrome.json"
        code, _ = run(capsys, "trace", "sendmail",
                      "--trace-file", str(events))
        assert code == 0
        code, text = run(capsys, "trace", "export", str(out),
                         "--input", str(events))
        assert code == 0
        assert "wrote" in text
        payload = json.loads(out.read_text())  # must round-trip json.load
        assert payload["traceEvents"], "export produced no events"
        first = payload["traceEvents"][0]
        assert first["ph"] == "X"
        assert {"name", "ts", "dur", "pid", "tid"} <= set(first)

    def test_export_requires_input(self, tmp_path):
        with pytest.raises(SystemExit, match="--input"):
            main(["trace", "export", str(tmp_path / "out.json")])

    def test_export_requires_output(self):
        with pytest.raises(SystemExit, match="output"):
            main(["trace", "export"])

    def test_export_missing_input_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["trace", "export", str(tmp_path / "out.json"),
                  "--input", str(tmp_path / "missing.jsonl")])

    def test_model_trace_still_works_with_new_args(self, capsys):
        code, out = run(capsys, "trace", "ghttpd")
        assert code == 0
        assert "verdict" in out


class TestProfileSort:
    def test_profile_sort_accepts_each_key(self, capsys):
        for key in ("total", "self", "count"):
            code, out = run(capsys, "sweep", "--profile",
                            "--profile-sort", key)
            assert code == 0
            assert "self_s" in out  # the new self-time column

    def test_profile_sort_rejects_unknown_key(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--profile", "--profile-sort", "bogus"])
