"""CLI tests: every subcommand runs and prints the expected shapes."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestCli:
    def test_list(self, capsys):
        code, out = run(capsys, "list")
        assert code == 0
        assert "sendmail" in out and "#3163" in out
        assert out.count("pFSMs") == 13

    def test_stats(self, capsys):
        code, out = run(capsys, "stats", "--total", "500")
        assert code == 0
        assert "Input Validation Error" in out
        assert "22" in out

    def test_table1(self, capsys):
        code, out = run(capsys, "table1")
        assert code == 0
        for bid in ("3163", "5493", "3958"):
            assert bid in out

    def test_model_ascii(self, capsys):
        code, out = run(capsys, "model", "sendmail")
        assert code == 0
        assert "pFSM2" in out and "propagation gate" in out

    def test_model_dot(self, capsys):
        code, out = run(capsys, "model", "sendmail", "--dot")
        assert out.startswith("digraph")

    def test_model_json(self, capsys):
        code, out = run(capsys, "model", "nullhttpd", "--json")
        data = json.loads(out)
        assert data["bugtraq_ids"] == [5774, 6255]

    def test_model_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["model", "nosuch"])

    def test_trace_exploit(self, capsys):
        code, out = run(capsys, "trace", "ghttpd")
        assert "COMPROMISED" in out

    def test_trace_benign(self, capsys):
        code, out = run(capsys, "trace", "ghttpd", "--benign")
        assert "safe" in out

    def test_trace_json(self, capsys):
        code, out = run(capsys, "trace", "iis", "--json")
        data = json.loads(out)
        assert data["compromised"]

    def test_foil(self, capsys):
        code, out = run(capsys, "foil", "rwall")
        assert "pFSM1" in out and "pFSM2" in out

    def test_statespace(self, capsys):
        code, out = run(capsys, "statespace", "sendmail")
        assert "compromise reachable via hidden paths: True" in out
        assert "cut set" in out

    def test_statespace_dot(self, capsys):
        code, out = run(capsys, "statespace", "xterm", "--dot")
        assert out.startswith("digraph")

    def test_table2(self, capsys):
        code, out = run(capsys, "table2")
        assert out.count("Check") >= 16

    def test_discover(self, capsys):
        code, out = run(capsys, "discover")
        assert "[NEW]" in out and "pFSM2" in out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
