"""Regression baselines: model structures must not drift silently.

``tests/baselines/model_fingerprints.json`` records the structural
SHA-256 of every prebuilt model.  A mismatch means a model's predicates,
activities, gates, or labels changed — which is fine when intentional
(regenerate the baseline with the snippet in this file's docstring) but
must never happen as a side effect.

Regenerate after an intentional model change::

    python - <<'PY'
    import json
    from repro.core import model_fingerprint
    from repro.models import all_extended_models
    prints = {label: model_fingerprint(model)
              for label, model in sorted(all_extended_models().items())}
    json.dump(prints, open('tests/baselines/model_fingerprints.json', 'w'),
              indent=2, sort_keys=True)
    PY
"""

import json
import pathlib

import pytest

from repro.core import model_fingerprint
from repro.models import all_extended_models

_BASELINE = (pathlib.Path(__file__).resolve().parents[1]
             / "baselines" / "model_fingerprints.json")


@pytest.fixture(scope="module")
def baseline():
    return json.loads(_BASELINE.read_text())


class TestFingerprintBaselines:
    def test_every_model_recorded(self, baseline):
        assert set(baseline) == set(all_extended_models())

    def test_fingerprints_match(self, baseline):
        current = {label: model_fingerprint(model)
                   for label, model in all_extended_models().items()}
        drifted = {label for label in current
                   if current[label] != baseline.get(label)}
        assert not drifted, (
            f"model structure drifted for {sorted(drifted)}; regenerate "
            f"the baseline if the change was intentional (see module "
            f"docstring)"
        )

    def test_fingerprints_are_sha256(self, baseline):
        for digest in baseline.values():
            assert len(digest) == 64
            int(digest, 16)  # hex
