"""Integration: model-vs-execution agreement for the five additional
case studies (#5493, #3958, #1387, #2264, #2210)."""

import pytest

from repro.apps import (
    FreebsdKernel,
    FreebsdVariant,
    Icecast,
    IcecastVariant,
    RsyncDaemon,
    RsyncVariant,
    Splitvt,
    SplitvtVariant,
    WuFtpd,
    WuFtpdVariant,
    craft_cred_overwrite,
    craft_expansion_smash,
    craft_handler_overwrite,
    craft_negative_opcode,
    craft_site_exec_exploit,
)
from repro.models import (
    freebsd_model,
    icecast_model,
    rsync_model,
    splitvt_model,
    wuftpd_model,
)


class TestFreebsdAgreement:
    @pytest.mark.parametrize(
        "variant,patched,expected",
        [(FreebsdVariant.VULNERABLE, False, True),
         (FreebsdVariant.PATCHED, True, False)],
    )
    def test_escalation_agreement(self, variant, patched, expected):
        kernel = FreebsdKernel(variant)
        kernel.copy_request(craft_cred_overwrite(kernel), -1)
        executed = kernel.escalated
        modeled = freebsd_model.build_model(
            patched=patched).is_compromised_by(freebsd_model.exploit_input())
        assert executed == modeled == expected


class TestRsyncAgreement:
    @pytest.mark.parametrize(
        "variant,kwargs,expected",
        [(RsyncVariant.VULNERABLE, {}, True),
         (RsyncVariant.PATCHED, {"patched": True}, False),
         (RsyncVariant.GUARDED, {"guarded": True}, False)],
    )
    def test_dispatch_agreement(self, variant, kwargs, expected):
        daemon = RsyncDaemon(variant)
        mcode = daemon.process.plant_mcode()
        daemon.receive_request(mcode.to_bytes(4, "little"))
        result = daemon.dispatch(craft_negative_opcode(daemon))
        executed = result.hijacked and daemon.process.is_mcode(result.handler)
        modeled = rsync_model.build_model(**kwargs).is_compromised_by(
            rsync_model.exploit_input()
        )
        assert executed == modeled == expected


class TestWuftpdAgreement:
    @pytest.mark.parametrize(
        "variant,sanitize,expected",
        [(WuFtpdVariant.VULNERABLE, False, True),
         (WuFtpdVariant.PATCHED, True, False)],
    )
    def test_format_agreement(self, variant, sanitize, expected):
        ftpd = WuFtpd(variant)
        executed = ftpd.handle_command(craft_site_exec_exploit(ftpd)).hijacked
        modeled = wuftpd_model.build_model(
            sanitize=sanitize).is_compromised_by(wuftpd_model.exploit_input())
        assert executed == modeled == expected


class TestIcecastAgreement:
    @pytest.mark.parametrize(
        "variant,kwargs,expected",
        [(IcecastVariant.VULNERABLE, {}, True),
         (IcecastVariant.PATCHED, {"expansion_check": True}, False)],
    )
    def test_expansion_agreement(self, variant, kwargs, expected):
        app = Icecast(variant)
        executed = app.print_client(craft_expansion_smash(app)).hijacked
        modeled = icecast_model.build_model(**kwargs).is_compromised_by(
            icecast_model.exploit_input()
        )
        assert executed == modeled == expected


class TestSplitvtAgreement:
    @pytest.mark.parametrize(
        "variant,kwargs,expected",
        [(SplitvtVariant.VULNERABLE, {}, True),
         (SplitvtVariant.PATCHED, {"sanitize": True}, False),
         (SplitvtVariant.GUARDED, {"guarded": True}, False)],
    )
    def test_dispatch_agreement(self, variant, kwargs, expected):
        app = Splitvt(variant)
        app.set_title(craft_handler_overwrite(app))
        result = app.refresh(0)
        executed = result.hijacked and (
            result.handler is not None and app.process.is_mcode(result.handler)
        )
        modeled = splitvt_model.build_model(**kwargs).is_compromised_by(
            splitvt_model.exploit_input()
        )
        assert executed == modeled == expected
