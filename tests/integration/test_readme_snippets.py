"""The README's python code blocks must actually run.

Extracts every ```python fenced block from README.md and executes it in
one shared namespace (blocks build on each other), so documentation
drift breaks the build instead of the reader.
"""

import pathlib
import re

_README = pathlib.Path(__file__).resolve().parents[2] / "README.md"


def _python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_readme_has_python_blocks():
    blocks = _python_blocks(_README.read_text())
    assert blocks, "README lost its python examples"


def test_readme_python_blocks_execute():
    namespace = {}
    for block in _python_blocks(_README.read_text()):
        exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102
    # The quickstart block leaves a model behind; sanity-check it.
    model = namespace.get("model")
    assert model is not None
    assert model.is_compromised_by(-563)
    assert not model.is_compromised_by(50)
