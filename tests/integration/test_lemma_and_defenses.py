"""Integration: the Section 6 Lemma over every paper model, and the
defense matrix demonstrating Observation 1 quantitatively."""

import pytest

from repro.core import (
    check_lemma_part1,
    check_lemma_part2,
    minimal_foil_points,
    verify_lemma,
)
from repro.models import (
    all_benign_inputs,
    all_exploit_inputs,
    all_operation_domains,
    all_paper_models,
)

MODELS = all_paper_models()
EXPLOITS = all_exploit_inputs()
BENIGNS = all_benign_inputs()
DOMAINS = all_operation_domains()
LABELS = sorted(MODELS)


class TestLemmaAcrossAllModels:
    @pytest.mark.parametrize("label", LABELS)
    def test_part1_every_operation(self, label):
        model = MODELS[label]
        for operation in model.operations:
            domain = DOMAINS[label].get(operation.name)
            assert domain is not None, f"missing domain for {operation.name}"
            assert check_lemma_part1(operation, domain)

    @pytest.mark.parametrize("label", LABELS)
    def test_part2(self, label):
        assert check_lemma_part2(MODELS[label], EXPLOITS[label])

    @pytest.mark.parametrize("label", LABELS)
    def test_full_report(self, label):
        report = verify_lemma(MODELS[label], DOMAINS[label], EXPLOITS[label])
        assert report.holds
        assert report.foil_points  # Observation 1: at least one foil point

    @pytest.mark.parametrize("label", LABELS)
    def test_fully_secured_still_serves_benign(self, label):
        hardened = MODELS[label].fully_secured()
        result = hardened.run(BENIGNS[label])
        assert result.compromised  # completes...
        assert result.hidden_path_count == 0  # ...legitimately


class TestObservationOne:
    """Each elementary activity the exploit passes through can foil it."""

    @pytest.mark.parametrize("label", LABELS)
    def test_every_hidden_step_is_a_foil_point(self, label):
        model = MODELS[label]
        exploit = EXPLOITS[label]
        result = model.run(exploit)
        hidden_pfsms = {e.subject for e in result.trace.hidden_path_steps()}
        foil_pfsms = {p.pfsm_name for p in minimal_foil_points(model, exploit)}
        # Every activity whose hidden path the exploit rides is an
        # independent foiling opportunity.
        assert hidden_pfsms <= foil_pfsms | set()
        assert hidden_pfsms  # the exploit rides at least one hidden path

    @pytest.mark.parametrize("label", LABELS)
    def test_securing_any_single_operation_foils(self, label):
        model = MODELS[label]
        exploit = EXPLOITS[label]
        for operation in model.operations:
            hardened = model.with_operation_secured(operation.name)
            # Lemma part 2: each operation alone is sufficient... when
            # the exploit's hidden path passes through it; securing an
            # operation the exploit passes legitimately does not foil.
            result = hardened.run(exploit)
            original = model.run(exploit)
            used_hidden_here = any(
                outcome.via_hidden_path
                for op_result in original.operation_results
                if op_result.operation_name == operation.name
                for outcome in op_result.outcomes
            )
            if used_hidden_here:
                assert not hardened.is_compromised_by(exploit), (
                    f"{label}: securing {operation.name} did not foil"
                )


class TestDefenseMatrix:
    """Sweep: for every model, secure each pFSM in turn and tabulate."""

    def test_matrix_shape_and_totals(self):
        rows = []
        for label in LABELS:
            model = MODELS[label]
            exploit = EXPLOITS[label]
            foiled = {p.pfsm_name for p in minimal_foil_points(model, exploit)}
            for _operation, pfsm in model.all_pfsms():
                rows.append((label, pfsm.name, pfsm.name in foiled))
        # 16 pFSMs across the seven models (the Table 2 grid).
        assert len(rows) == 16
        # Every model has at least one foil point.
        by_model = {}
        for label, _name, foils in rows:
            by_model.setdefault(label, []).append(foils)
        assert all(any(flags) for flags in by_model.values())

    def test_benign_traffic_unaffected_by_any_single_fix(self):
        for label in LABELS:
            model = MODELS[label]
            benign = BENIGNS[label]
            for operation, pfsm in model.all_pfsms():
                hardened = model.with_pfsm_secured(operation.name, pfsm.name)
                result = hardened.run(benign)
                assert result.compromised and result.hidden_path_count == 0, (
                    f"{label}: fixing {pfsm.name} broke benign traffic"
                )
