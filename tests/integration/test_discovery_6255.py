"""Integration: reproduce the paper's §5.1 discovery of Bugtraq #6255.

The historical sequence: the authors modeled the *known* vulnerability
(#5774, the negative contentLen) in NULL HTTPD 0.5, derived the
predicates for each elementary activity, and — checking those predicates
against version 0.5.1, which had fixed the known bug — found that the
predicate of pFSM2 ("length(input) <= size(PostData)") still had no
IMPL_REJ: the recv loop's || bug.  That finding became Bugtraq #6255.

These tests run that workflow end to end with the discovery engine and
the *executable* 0.5.1 server: the implementation predicate is probed,
not assumed.
"""

from repro.apps import NullHttpd, NullHttpdVariant, RECV_CHUNK
from repro.core import Domain, DiscoveryEngine, Predicate


def _probe_pfsm1(content_len: int) -> bool:
    """Does 0.5.1 accept this contentLen?  (Fresh server per probe.)"""
    app = NullHttpd(NullHttpdVariant.V0_5_1)
    return app.handle_post(content_len, b"x" * max(content_len, 0)).accepted


def _probe_pfsm2(request) -> bool:
    """Does 0.5.1 copy the entire body (i.e. accept an input longer than
    the buffer) rather than reject/truncate it?"""
    app = NullHttpd(NullHttpdVariant.V0_5_1)
    outcome = app.handle_post(request["content_len"],
                              b"x" * request["input_len"])
    if not outcome.accepted:
        return False
    return outcome.bytes_copied >= min(request["input_len"],
                                       outcome.buffer_size + 1) \
        or outcome.bytes_copied == request["input_len"]


def _spec_pfsm1():
    return Predicate(lambda n: n >= 0, "contentLen >= 0")


def _spec_pfsm2():
    def fits(request):
        return request["input_len"] <= request["content_len"] + 1024

    return Predicate(fits, "length(input) <= size(PostData)")


def _domains():
    return {
        "pFSM1": Domain.of(-800, -1, 0, 100, 4096),
        "pFSM2": Domain.records(
            content_len=Domain.of(0, 100, 500),
            input_len=Domain.of(0, 100, 1024, 1124, 1500,
                                2 * RECV_CHUNK + 200),
        ),
    }


class TestDiscoveryWorkflow:
    def test_probed_sweep_finds_6255_and_not_5774(self):
        engine = DiscoveryEngine(known_vulnerable=["pFSM1"])  # the known bug
        findings = engine.sweep_probed(
            "Read postdata from socket to PostData",
            [
                ("pFSM1", "validate contentLen", _spec_pfsm1(), _probe_pfsm1),
                ("pFSM2", "terminate the copy at the buffer size",
                 _spec_pfsm2(), _probe_pfsm2),
            ],
            _domains(),
        )
        names = {f.pfsm_name for f in findings}
        assert "pFSM1" not in names  # 0.5.1 fixed the known check
        assert "pFSM2" in names  # ...but the copy still violates its spec

    def test_finding_is_flagged_new(self):
        engine = DiscoveryEngine(known_vulnerable=["pFSM1"])
        findings = engine.sweep_probed(
            "read", [("pFSM2", "copy", _spec_pfsm2(), _probe_pfsm2)],
            _domains(),
        )
        new = DiscoveryEngine.new_findings(findings)
        assert len(new) == 1
        assert new[0].pfsm_name == "pFSM2"

    def test_witness_is_an_overlong_body(self):
        engine = DiscoveryEngine()
        findings = engine.sweep_probed(
            "read", [("pFSM2", "copy", _spec_pfsm2(), _probe_pfsm2)],
            _domains(),
        )
        witness = findings[0].witnesses[0]
        assert witness["input_len"] > witness["content_len"] + 1024

    def test_same_sweep_on_fixed_server_is_clean(self):
        def probe_fixed(request):
            app = NullHttpd(NullHttpdVariant.FIXED)
            outcome = app.handle_post(request["content_len"],
                                      b"x" * request["input_len"])
            if not outcome.accepted:
                return False
            # Accepting means: the whole (over-long) input was copied.
            return outcome.bytes_copied == request["input_len"]

        engine = DiscoveryEngine()
        findings = engine.sweep_probed(
            "read", [("pFSM2", "copy", _spec_pfsm2(), probe_fixed)],
            _domains(),
        )
        assert findings == []

    def test_sweep_on_v05_finds_both(self):
        def probe1_v05(content_len):
            app = NullHttpd(NullHttpdVariant.V0_5)
            return app.handle_post(content_len,
                                   b"x" * max(content_len, 0)).accepted

        def probe2_v05(request):
            app = NullHttpd(NullHttpdVariant.V0_5)
            outcome = app.handle_post(request["content_len"],
                                      b"x" * request["input_len"])
            return outcome.accepted and \
                outcome.bytes_copied == request["input_len"]

        engine = DiscoveryEngine()
        findings = engine.sweep_probed(
            "read",
            [
                ("pFSM1", "validate contentLen", _spec_pfsm1(), probe1_v05),
                ("pFSM2", "copy", _spec_pfsm2(), probe2_v05),
            ],
            _domains(),
        )
        assert {f.pfsm_name for f in findings} == {"pFSM1", "pFSM2"}
