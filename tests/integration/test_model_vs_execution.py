"""Integration: every model's prediction must match the executable
application's behaviour.

The paper's claim is that the FSM model *reasons correctly about the
implementation*.  These tests drive both sides with the same inputs:
the predicate-level model (repro.models) and the executable application
(repro.apps on the simulated substrates), and require them to agree on
exploit success/failure.
"""

import pytest

from repro.apps import (
    Ghttpd,
    GhttpdVariant,
    IisServer,
    IisVariant,
    NullHttpd,
    NullHttpdVariant,
    RpcStatd,
    RwallDaemon,
    RwallVariant,
    Sendmail,
    SendmailVariant,
    StatdVariant,
    XtermVariant,
    add_utmp_entry,
    build_race_scheduler,
    craft_format_exploit,
    craft_got_exploit,
    craft_stack_smash,
    craft_unlink_body,
    make_rwall_world,
    passwd_corrupted,
)
from repro.memory import ControlFlowHijack
from repro.models import (
    ghttpd_model,
    iis_model,
    nullhttpd_model,
    rpc_statd_model,
    rwall_model,
    sendmail_model,
    xterm_model,
)


class TestSendmailAgreement:
    def _execute(self, variant):
        app = Sendmail(variant)
        for flag in craft_got_exploit(app):
            app.tTflag(flag)
        try:
            app.call_setuid()
            return False
        except ControlFlowHijack:
            return True
        except ValueError:
            return False

    def test_vulnerable_agrees(self):
        executed = self._execute(SendmailVariant.VULNERABLE)
        modeled = sendmail_model.build_model().is_compromised_by(
            sendmail_model.exploit_input()
        )
        assert executed == modeled == True  # noqa: E712

    def test_patched_agrees(self):
        executed = self._execute(SendmailVariant.PATCHED)
        modeled = sendmail_model.build_model(patched=True).is_compromised_by(
            sendmail_model.exploit_input()
        )
        assert executed == modeled == False  # noqa: E712

    def test_guarded_agrees(self):
        executed = self._execute(SendmailVariant.GUARDED)
        modeled = sendmail_model.build_model(
            got_check=True
        ).is_compromised_by(sendmail_model.exploit_input())
        assert executed == modeled == False  # noqa: E712


class TestNullHttpdAgreement:
    def _execute(self, variant, content_len, safe_unlink=False):
        app = NullHttpd(variant, check_unlink=safe_unlink)
        body = craft_unlink_body(app, content_len=content_len)
        outcome = app.handle_post(content_len, body)
        if not outcome.accepted:
            return False
        try:
            app.free_post_data()
        except Exception:
            return False
        try:
            app.call_free()
            return False
        except ControlFlowHijack:
            return True

    @pytest.mark.parametrize(
        "variant,exploit,expected",
        [
            (NullHttpdVariant.V0_5, "5774", True),
            (NullHttpdVariant.V0_5, "6255", True),
            (NullHttpdVariant.V0_5_1, "5774", False),
            (NullHttpdVariant.V0_5_1, "6255", True),
            (NullHttpdVariant.FIXED, "5774", False),
            (NullHttpdVariant.FIXED, "6255", False),
        ],
    )
    def test_variant_exploit_matrix(self, variant, exploit, expected):
        inputs = {
            "5774": nullhttpd_model.exploit_input_5774(),
            "6255": nullhttpd_model.exploit_input_6255(),
        }[exploit]
        executed = self._execute(variant, inputs["content_len"])
        modeled = nullhttpd_model.build_model(variant).is_compromised_by(inputs)
        assert executed == modeled == expected

    def test_safe_unlink_agreement(self):
        executed = self._execute(NullHttpdVariant.V0_5, -800, safe_unlink=True)
        modeled = nullhttpd_model.build_model(
            NullHttpdVariant.V0_5, safe_unlink=True
        ).is_compromised_by(nullhttpd_model.exploit_input_5774())
        assert executed == modeled == False  # noqa: E712


class TestXtermAgreement:
    @pytest.mark.parametrize(
        "app_variant,model_recheck,expected",
        [
            (XtermVariant.VULNERABLE, False, True),
            (XtermVariant.PATCHED_NOFOLLOW, True, False),
            (XtermVariant.PATCHED_RECHECK, True, False),
        ],
    )
    def test_race_agreement(self, app_variant, model_recheck, expected):
        executed = build_race_scheduler(app_variant).explore().has_race
        modeled = xterm_model.build_model(
            recheck=model_recheck
        ).is_compromised_by(xterm_model.exploit_input())
        assert executed == modeled == expected


class TestRwallAgreement:
    @pytest.mark.parametrize(
        "app_variant,kwargs,expected",
        [
            (RwallVariant.VULNERABLE, {}, True),
            (RwallVariant.PATCHED_PERMS, {"utmp_root_only": True}, False),
            (RwallVariant.PATCHED_TYPECHECK, {"type_check": True}, False),
        ],
    )
    def test_corruption_agreement(self, app_variant, kwargs, expected):
        from repro.osmodel import User

        world = make_rwall_world(app_variant)
        mallory = User.regular("mallory", 1001)
        add_utmp_entry(world, mallory, "../etc/passwd")
        RwallDaemon(world).broadcast(b"own3d\n")
        executed = passwd_corrupted(world, b"own3d\n")
        modeled = rwall_model.build_model(**kwargs).is_compromised_by(
            rwall_model.exploit_input()
        )
        assert executed == modeled == expected


class TestIisAgreement:
    @pytest.mark.parametrize(
        "app_variant,model_patched,expected",
        [(IisVariant.VULNERABLE, False, True), (IisVariant.PATCHED, True, False)],
    )
    def test_escape_agreement(self, app_variant, model_patched, expected):
        request = iis_model.exploit_input()
        outcome = IisServer(app_variant).handle_cgi_request(request)
        executed = outcome.accepted and outcome.escaped_root
        modeled = iis_model.build_model(
            patched=model_patched
        ).is_compromised_by(request)
        assert executed == modeled == expected


class TestGhttpdAgreement:
    @pytest.mark.parametrize(
        "app_variant,model_kwargs,expected",
        [
            (GhttpdVariant.VULNERABLE, {}, True),
            (GhttpdVariant.PATCHED, {"length_check": True}, False),
            (GhttpdVariant.STACKGUARD, {"return_protection": True}, False),
            (GhttpdVariant.SPLITSTACK, {"return_protection": True}, False),
        ],
    )
    def test_smash_agreement(self, app_variant, model_kwargs, expected):
        app = Ghttpd(app_variant)
        executed = app.serve(craft_stack_smash(app)).hijacked
        modeled = ghttpd_model.build_model(**model_kwargs).is_compromised_by(
            ghttpd_model.exploit_input()
        )
        assert executed == modeled == expected


class TestStatdAgreement:
    @pytest.mark.parametrize(
        "app_variant,model_kwargs,expected",
        [
            (StatdVariant.VULNERABLE, {}, True),
            (StatdVariant.SANITIZED, {"sanitize": True}, False),
            (StatdVariant.PATCHED, {"sanitize": True}, False),
        ],
    )
    def test_format_agreement(self, app_variant, model_kwargs, expected):
        app = RpcStatd(app_variant)
        executed = app.notify(craft_format_exploit(app)).hijacked
        modeled = rpc_statd_model.build_model(
            **model_kwargs
        ).is_compromised_by(rpc_statd_model.exploit_input())
        assert executed == modeled == expected
