"""Every example script must run cleanly end to end.

Examples are part of the public deliverable; running them as
subprocesses catches import drift and API breakage the unit tests
might miss.
"""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

_EXAMPLES = sorted(script.name for script in _EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(_EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stdout[-2000:]}\n"
        f"{completed.stderr[-2000:]}"
    )
    assert completed.stdout  # every example prints its findings


def test_expected_examples_present():
    names = set(_EXAMPLES)
    assert {
        "quickstart.py",
        "analyze_sendmail.py",
        "discover_nullhttpd.py",
        "bugtraq_statistics.py",
        "defense_evaluation.py",
        "auto_analysis.py",
        "fault_injection_study.py",
        "verify_reproduction.py",
    } <= names
