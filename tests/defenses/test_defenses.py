"""Defense tests: catalog, bounds-checked copies, canaries, shadow
stack, format guards, heap audits."""

import pytest

from repro.core import ActivityKind, PfsmType
from repro.defenses import (
    BufferBoundsError,
    CanaryPolicy,
    DEFENSE_CATALOG,
    FormatDirectiveError,
    ShadowStack,
    TERMINATOR_CANARY,
    audit_free_list,
    defenses_for_activity,
    is_clean,
    neutralise,
    reject_directives,
    safe_append,
    safe_memcpy,
    safe_strcpy,
)
from repro.memory import AddressSpace, CallStack, Heap, strcpy, vsprintf


@pytest.fixture
def space():
    space = AddressSpace(size=1024 * 1024)
    space.map_region("buf", 0x100, 16)
    return space


class TestCatalog:
    def test_paper_defenses_present(self):
        assert "stackguard" in DEFENSE_CATALOG
        assert "split-stack" in DEFENSE_CATALOG
        assert "bounds-checked-copy" in DEFENSE_CATALOG
        assert "safe-unlink" in DEFENSE_CATALOG

    def test_citations(self):
        assert "[15]" in DEFENSE_CATALOG["stackguard"].citation
        assert "[16]" in DEFENSE_CATALOG["split-stack"].citation

    def test_types_are_figure8_types(self):
        for defense in DEFENSE_CATALOG.values():
            assert isinstance(defense.implements, PfsmType)
            assert isinstance(defense.attaches_to, ActivityKind)

    def test_defenses_for_activity(self):
        transfer = defenses_for_activity(ActivityKind.TRANSFER_CONTROL)
        names = {d.name for d in transfer}
        assert {"stackguard", "split-stack", "got-consistency-check"} <= names

    def test_every_buffer_chain_activity_covered(self):
        # Observation 1: each activity of the overflow chain has a defense.
        for activity in (ActivityKind.GET_INPUT, ActivityKind.COPY_TO_BUFFER,
                         ActivityKind.TRANSFER_CONTROL):
            assert defenses_for_activity(activity)


class TestBoundsChecked:
    def test_safe_strcpy_fits(self, space):
        safe_strcpy(space, 0x100, 16, b"hello", label="buf")
        assert space.read_cstring(0x100) == b"hello"
        assert not space.writes_outside("buf")

    def test_safe_strcpy_refuses_overflow(self, space):
        with pytest.raises(BufferBoundsError) as exc:
            safe_strcpy(space, 0x100, 16, b"A" * 16)
        assert exc.value.needed == 17
        assert exc.value.capacity == 16
        assert not space.writes_outside("buf")  # nothing written

    def test_safe_memcpy(self, space):
        safe_memcpy(space, 0x100, 16, b"abcd", 4)
        with pytest.raises(BufferBoundsError):
            safe_memcpy(space, 0x100, 16, b"A" * 32, 32)

    def test_safe_append_accumulates(self, space):
        used = safe_append(space, 0x100, 16, 0, b"abc")
        used = safe_append(space, 0x100, 16, used, b"de")
        assert used == 5
        assert space.read(0x100, 5) == b"abcde"

    def test_safe_append_refuses_at_capacity(self, space):
        used = safe_append(space, 0x100, 16, 0, b"A" * 16)
        with pytest.raises(BufferBoundsError):
            safe_append(space, 0x100, 16, used, b"B")


class TestCanaryPolicy:
    def test_terminator_default(self):
        assert CanaryPolicy().canary_value() == TERMINATOR_CANARY

    def test_random_deterministic_by_seed(self):
        a = CanaryPolicy(random_per_process=True, seed=9).canary_value()
        b = CanaryPolicy(random_per_process=True, seed=9).canary_value()
        assert a == b
        assert a != CanaryPolicy(random_per_process=True, seed=10).canary_value()

    def test_protect_frame_detects_overflow(self):
        space = AddressSpace(size=1024 * 1024)
        stack = CallStack(space, size=8192)
        policy = CanaryPolicy()
        frame = policy.protect_frame(stack, "f", 0x1000, {"buf": 16})
        strcpy(space, frame.local_address("buf"), b"A" * 40)
        assert not CanaryPolicy.check(stack)
        with pytest.raises(ValueError):
            stack.pop_frame()


class TestShadowStack:
    def test_recovers_from_smash(self):
        space = AddressSpace(size=1024 * 1024)
        stack = CallStack(space, size=8192)
        shadow = ShadowStack()
        frame = stack.push_frame("f", 0x1234, {"buf": 16})
        shadow.on_call(frame)
        space.write_word(frame.return_address_slot, 0x666)
        result = shadow.on_return(space, frame)
        assert result.returned_to == 0x1234
        assert result.tampering_detected

    def test_clean_return_no_tampering(self):
        space = AddressSpace(size=1024 * 1024)
        stack = CallStack(space, size=8192)
        shadow = ShadowStack()
        frame = stack.push_frame("f", 0x1234, {})
        shadow.on_call(frame)
        result = shadow.on_return(space, frame)
        assert result.returned_to == 0x1234
        assert not result.tampering_detected
        assert shadow.depth == 0

    def test_underflow(self):
        space = AddressSpace(size=1024 * 1024)
        stack = CallStack(space, size=8192)
        frame = stack.push_frame("f", 0x1234, {})
        with pytest.raises(RuntimeError):
            ShadowStack().on_return(space, frame)


class TestFormatGuard:
    def test_reject_directives(self):
        with pytest.raises(FormatDirectiveError) as exc:
            reject_directives(b"evil%n")
        assert "%n" in str(exc.value)

    def test_clean_passes(self):
        assert reject_directives(b"hostname") == b"hostname"

    def test_literal_percent_passes(self):
        assert reject_directives(b"100%%") == b"100%%"

    def test_neutralise_makes_input_inert(self):
        space = AddressSpace(size=1024 * 1024)
        inert = neutralise(b"evil%n")
        result = vsprintf(space, inert)
        assert not result.wrote_memory
        assert result.output == b"evil%n"

    def test_is_clean(self):
        assert is_clean(b"fine")
        assert not is_clean(b"%x")


class TestHeapAudit:
    def test_clean_audit(self):
        space = AddressSpace(size=1024 * 1024)
        heap = Heap(space, size=64 * 1024)
        a = heap.malloc(64)
        heap.malloc(16)
        heap.free(a)
        audits = audit_free_list(heap)
        assert len(audits) == 1
        assert audits[0].consistent

    def test_corruption_located(self):
        space = AddressSpace(size=1024 * 1024)
        heap = Heap(space, size=64 * 1024)
        a = heap.malloc(64)
        heap.malloc(16)
        heap.free(a)
        chunk = heap.chunk_for(a)
        # Corrupt the backward link (the walk itself follows fd).
        space.write_word(chunk.bk_address, 0xDEAD)
        (audit,) = audit_free_list(heap)
        assert not audit.consistent
        assert not audit.bk_forward_ok
        assert audit.bk == 0xDEAD

    def test_fd_corruption_detected_with_bounded_walk(self):
        space = AddressSpace(size=1024 * 1024)
        heap = Heap(space, size=64 * 1024)
        a = heap.malloc(64)
        heap.malloc(16)
        heap.free(a)
        chunk = heap.chunk_for(a)
        space.write_word(chunk.fd_address, 0xDEAD)
        audits = audit_free_list(heap)
        # The walk follows the corrupted fd into garbage, but the first
        # chunk's inconsistency is still reported.
        assert not audits[0].consistent
        assert audits[0].fd == 0xDEAD
