from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Data-driven primitive-FSM (pFSM) modeling of security "
        "vulnerabilities - reproduction of Chen et al., DSN 2003"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
