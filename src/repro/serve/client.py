"""A small synchronous client for the analysis service.

Used by the CLI (``repro query``), the test suite, and the serve
benchmark.  One client wraps one connection and is internally locked,
so sharing an instance across threads serializes its requests — for
concurrent load (and for coalescing to have anything to coalesce), give
each thread its own client.

Resilience contract
-------------------
Connection establishment retries inside a *total budget*
(``connect_timeout``, falling back to ``timeout``) with capped
exponential backoff and decorrelated jitter — a server that is still
binding its socket costs milliseconds, not an exit code.  Idempotent
requests (``query``/``ping``/``metrics`` — the server computes the same
answer for the same fingerprint) are retried up to ``retries`` times on
connection errors, reconnecting between attempts.  With ``hedge_after``
set, a query that has not answered within the hedge delay (a float in
seconds, or ``"p95"`` for a delay derived from this client's observed
latencies) is *also* sent on a second, fresh connection; the first
response wins.  Hedges trade duplicate server work for tail latency —
coalescing on the server makes the duplicate nearly free.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from collections import deque
from queue import Empty, Queue
from typing import Any, Dict, Optional, Union

from .protocol import MAX_LINE

__all__ = ["ServeClient", "wait_until_ready"]

#: Decorrelated-jitter backoff parameters for connection retries.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0

#: Hedge delay used before enough latency samples exist for a p95.
_HEDGE_FLOOR = 0.05


class ServeClient:
    """Blocking line-JSON client over one TCP connection."""

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 connect_timeout: Optional[float] = None,
                 retries: int = 2,
                 hedge_after: Optional[Union[float, str]] = None,
                 rng: Optional[random.Random] = None) -> None:
        """``connect_timeout`` is the *total budget* for establishing a
        connection — attempts retry with backoff inside it, so a server
        that is a beat behind its client connects on the second try
        instead of failing the command.  ``None`` falls back to
        ``timeout``.  ``retries`` bounds idempotent-request retries;
        ``hedge_after`` enables hedged queries (seconds, or ``"p95"``).
        """
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (timeout if connect_timeout is None
                                else connect_timeout)
        self.retries = max(0, retries)
        self.hedge_after = hedge_after
        self.connect_attempts = 0
        self.request_retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._latencies: "deque[float]" = deque(maxlen=64)
        self._serial = 0
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self._connect()

    # -- connection --------------------------------------------------------

    def _connect(self) -> None:
        """Establish the connection inside the total budget.

        Capped exponential backoff with decorrelated jitter: each sleep
        is uniform over ``[base, 3 * previous]``, capped — retries
        de-synchronize instead of stampeding a restarting server.  The
        first attempt always runs, so a zero budget degrades to the old
        single-attempt behaviour.
        """
        deadline = time.monotonic() + max(0.0, self.connect_timeout)
        sleep_s = _BACKOFF_BASE
        while True:
            self.connect_attempts += 1
            remaining = deadline - time.monotonic()
            attempt_timeout = min(self.timeout, remaining) \
                if remaining > 0 else self.timeout
            try:
                sock = socket.create_connection(
                    (self.host, self.port),
                    timeout=max(0.05, attempt_timeout))
            except OSError as exc:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ConnectionError(
                        f"could not connect to {self.host}:{self.port} "
                        f"within {self.connect_timeout:.1f}s "
                        f"({self.connect_attempts} attempts): {exc}"
                    ) from exc
                sleep_s = min(_BACKOFF_CAP,
                              self._rng.uniform(_BACKOFF_BASE,
                                                sleep_s * 3))
                time.sleep(min(sleep_s, remaining))
                continue
            sock.settimeout(self.timeout)
            self._sock = sock
            self._file = sock.makefile("rwb")
            return

    def _teardown(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        self._file = None
        self._sock = None

    # -- requests ----------------------------------------------------------

    def _request_locked(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange on the held connection."""
        started = time.monotonic()
        self._file.write(
            (json.dumps(payload, separators=(",", ":")) + "\n")
            .encode("utf-8"))
        self._file.flush()
        line = self._file.readline(MAX_LINE)
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        self._latencies.append(time.monotonic() - started)
        return response

    def request(self, payload: Dict[str, Any], *,
                idempotent: bool = True) -> Dict[str, Any]:
        """Send one request object, return its response object.

        Idempotent requests retry up to ``retries`` times on connection
        errors (including a mid-exchange drop — the request id is fixed
        before the first attempt, so the server sees a resend, not a new
        request).  A garbled response line desynchronizes the stream, so
        it reconnects too.
        """
        with self._lock:
            if payload.get("id") is None:
                self._serial += 1
                payload = dict(payload, id=self._serial)
            attempts = (self.retries + 1) if idempotent else 1
            last_error: Optional[BaseException] = None
            for attempt in range(attempts):
                if attempt:
                    self.request_retries += 1
                    self._teardown()
                    try:
                        self._connect()
                    except (OSError, ConnectionError) as exc:
                        last_error = exc
                        continue
                try:
                    return self._request_locked(payload)
                except (OSError, ConnectionError, ValueError) as exc:
                    last_error = exc
            assert last_error is not None
            raise last_error

    # -- hedging -----------------------------------------------------------

    def _hedge_delay(self) -> float:
        if isinstance(self.hedge_after, (int, float)):
            return max(0.0, float(self.hedge_after))
        ordered = sorted(self._latencies)
        if len(ordered) < 5:
            return _HEDGE_FLOOR
        return ordered[min(len(ordered) - 1,
                           int(0.95 * len(ordered)))]

    def _hedged_request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The primary request plus, after the hedge delay, a duplicate
        on a fresh one-shot connection.  First response wins; a losing
        primary finishes its exchange on its own thread (the connection
        lock keeps the stream consistent)."""
        if payload.get("id") is None:
            with self._lock:
                self._serial += 1
            payload = dict(payload, id=self._serial)
        delay = self._hedge_delay()
        results: "Queue[Any]" = Queue()

        def primary() -> None:
            try:
                results.put(("primary", self.request(payload)))
            except BaseException as exc:
                results.put(("primary", exc))

        runner = threading.Thread(target=primary, daemon=True,
                                  name="serve-client-primary")
        runner.start()
        try:
            origin, outcome = results.get(timeout=delay)
        except Empty:
            pass
        else:
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        self.hedges += 1

        def hedge() -> None:
            try:
                with socket.create_connection(
                        (self.host, self.port),
                        timeout=self.timeout) as sock:
                    sock.settimeout(self.timeout)
                    handle = sock.makefile("rwb")
                    handle.write(
                        (json.dumps(payload, separators=(",", ":"))
                         + "\n").encode("utf-8"))
                    handle.flush()
                    line = handle.readline(MAX_LINE)
                    if not line:
                        raise ConnectionError(
                            "server closed the hedge connection")
                    results.put(("hedge",
                                 json.loads(line.decode("utf-8"))))
            except BaseException as exc:
                results.put(("hedge", exc))

        threading.Thread(target=hedge, daemon=True,
                         name="serve-client-hedge").start()

        first_error: Optional[BaseException] = None
        for _ in range(2):
            origin, outcome = results.get(timeout=self.timeout + delay)
            if isinstance(outcome, BaseException):
                if first_error is None:
                    first_error = outcome
                continue
            if origin == "hedge":
                self.hedge_wins += 1
            return outcome
        assert first_error is not None
        raise first_error

    # -- operations --------------------------------------------------------

    def query(self, model: str, limit: int = 5,
              deadline_ms: Optional[float] = None,
              request_id: Any = None,
              trace: bool = False,
              traceparent: Optional[str] = None) -> Dict[str, Any]:
        """Hidden-path analysis of one model (see the protocol doc).

        ``traceparent`` joins an existing W3C trace; ``trace=True`` asks
        the server to return the reassembled per-stage timeline on the
        response (tracing must be enabled server-side for either to have
        an effect).  With ``hedge_after`` configured, a slow answer is
        raced by a duplicate on a second connection.
        """
        payload: Dict[str, Any] = {"op": "query", "model": model,
                                   "limit": limit, "id": request_id}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if trace:
            payload["trace"] = True
        if traceparent is not None:
            payload["traceparent"] = traceparent
        if self.hedge_after is not None:
            return self._hedged_request(payload)
        return self.request(payload)

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def metrics(self) -> Dict[str, Any]:
        """The server's counters/gauges/latency snapshot."""
        return self.request({"op": "metrics"})["metrics"]

    def resilience_stats(self) -> Dict[str, int]:
        """Client-side retry/hedge counters (the CLI's --json block)."""
        return {
            "connect_attempts": self.connect_attempts,
            "request_retries": self.request_retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
        }

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def wait_until_ready(host: str, port: int, timeout: float = 30.0,
                     interval: float = 0.05) -> bool:
    """Poll until the server answers a ping with state ``ready``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=5.0,
                             connect_timeout=0.0, retries=0) as client:
                if client.ping().get("state") == "ready":
                    return True
        except (OSError, ValueError):
            pass
        time.sleep(interval)
    return False
