"""A small synchronous client for the analysis service.

Used by the CLI (``repro query``), the test suite, and the serve
benchmark.  One client wraps one connection and is internally locked,
so sharing an instance across threads serializes its requests — for
concurrent load (and for coalescing to have anything to coalesce), give
each thread its own client.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Dict, Optional

from .protocol import MAX_LINE

__all__ = ["ServeClient", "wait_until_ready"]


class ServeClient:
    """Blocking line-JSON client over one TCP connection."""

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 connect_timeout: Optional[float] = None) -> None:
        """``connect_timeout`` bounds connection *establishment*
        separately from per-request I/O (``timeout``): a down server
        fails fast instead of hanging for the OS default.  ``None``
        falls back to ``timeout`` for both phases."""
        self.host = host
        self.port = port
        self._sock = socket.create_connection(
            (host, port),
            timeout=timeout if connect_timeout is None else connect_timeout)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._serial = 0

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return its response object."""
        with self._lock:
            if payload.get("id") is None:
                self._serial += 1
                payload = dict(payload, id=self._serial)
            self._file.write(
                (json.dumps(payload, separators=(",", ":")) + "\n")
                .encode("utf-8"))
            self._file.flush()
            line = self._file.readline(MAX_LINE)
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def query(self, model: str, limit: int = 5,
              deadline_ms: Optional[float] = None,
              request_id: Any = None,
              trace: bool = False,
              traceparent: Optional[str] = None) -> Dict[str, Any]:
        """Hidden-path analysis of one model (see the protocol doc).

        ``traceparent`` joins an existing W3C trace; ``trace=True`` asks
        the server to return the reassembled per-stage timeline on the
        response (tracing must be enabled server-side for either to have
        an effect).
        """
        payload: Dict[str, Any] = {"op": "query", "model": model,
                                   "limit": limit, "id": request_id}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if trace:
            payload["trace"] = True
        if traceparent is not None:
            payload["traceparent"] = traceparent
        return self.request(payload)

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def metrics(self) -> Dict[str, Any]:
        """The server's counters/gauges/latency snapshot."""
        return self.request({"op": "metrics"})["metrics"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def wait_until_ready(host: str, port: int, timeout: float = 30.0,
                     interval: float = 0.05) -> bool:
    """Poll until the server answers a ping with state ``ready``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=5.0) as client:
                if client.ping().get("state") == "ready":
                    return True
        except (OSError, ValueError):
            pass
        time.sleep(interval)
    return False
