"""The micro-batcher: single-flight coalescing + batched dispatch.

Three mechanisms stack between admission and the engine:

**Single-flight coalescing.**  Every query has a request fingerprint
(model key + limit + per-task ``sweep_task_fingerprint``s — see
:mod:`repro.serve.corpus`).  The first request with a given fingerprint
is the *leader*; identical requests arriving while the leader is in
flight attach to the leader's future instead of being admitted again —
they consume no queue depth and no compute, and every waiter receives
the leader's response (including its sheds; a coalesced request shares
its leader's fate).

**Cache fast path.**  A query whose every task key hits the tiered
cache is answered inline — it never touches the queue, so warm traffic
cannot crowd out cold traffic at admission.

**Batched, deduplicated dispatch.**  The batcher claims a batch from
the admission queue (up to ``max_batch`` requests or ``batch_window``
seconds, whichever first), expires overdue deadlines, dedupes the
union of their tasks by fingerprint key (two *different* requests that
share a pFSM×domain compute it once), and hands the remaining unique
tasks to the engine in one dispatch — the thread executor shares the
process-wide predicate cache; the process backend rides the warm
:mod:`repro.core.dist` pool, whose LPT chunker size-balances the batch
across workers.  One dispatch runs at a time: while it computes, new
identical requests coalesce and new distinct requests accumulate into
the next batch (or shed, once the queue fills — that is admission
control doing its job).
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import Any, Dict, List, Optional

from ..core.sweep import NO_CACHE, _run_tasks, shared_cache
from ..obs import DEFAULT as _OBS
from .admission import AdmissionQueue, AdmittedRequest
from .protocol import (
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_TIMEOUT,
    finding_payload,
)

__all__ = ["MicroBatcher"]

#: Token placeholder for "scheduled for compute in this batch".
_PENDING = object()


def _engine_compute(tasks: List[Any], keys: List[Optional[str]],
                    workers: int, backend: str) -> List[Any]:
    """The default compute function: one engine dispatch (runs on an
    executor thread, never the event loop)."""
    if backend in ("process", "queue"):
        # Worker processes keep their own predicate caches; the keys
        # let the dist scheduler memoize by fingerprint as well.
        return _run_tasks(tasks, workers, backend, cache=NO_CACHE,
                          keys=keys)
    return _run_tasks(tasks, workers, "thread", cache=shared_cache())


class MicroBatcher:
    """Coalesces, batches, and dispatches admitted queries.

    Construct and :meth:`start` on the event loop; submit from
    connection handlers; :meth:`stop` drains the backlog and returns
    once every admitted request has been resolved.
    """

    def __init__(
        self,
        cache: Any,
        stats: Any,
        *,
        max_depth: int = 64,
        batch_window: float = 0.01,
        max_batch: int = 16,
        workers: int = 2,
        backend: str = "thread",
        compute_fn: Any = None,
    ) -> None:
        self._cache = cache
        self._stats = stats
        self._queue = AdmissionQueue(max_depth)
        self._batch_window = batch_window
        self._max_batch = max(1, max_batch)
        self._workers = max(1, workers)
        self._backend = backend
        self._compute_fn = compute_fn or partial(
            _engine_compute, workers=self._workers, backend=backend,
        )
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        self._task: Optional["asyncio.Task[Any]"] = None
        self._serial = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the batch loop on the running event loop."""
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Close admission, drain the backlog, flush the cold store."""
        self._queue.close()
        if self._task is not None:
            await self._task
            self._task = None
        self._cache.flush()

    def queue_depth(self) -> int:
        return self._queue.depth()

    def inflight_count(self) -> int:
        return len(self._inflight)

    # -- the request path --------------------------------------------------

    async def submit(self, query: Any,
                     deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Resolve one expanded query to a response payload.

        Fast paths (coalesce, full cache hit) answer inline; otherwise
        the query is admitted (or refused) and awaited.  The returned
        dict is freshly owned by the caller.
        """
        loop = asyncio.get_running_loop()
        fingerprint = query.fingerprint

        leader = self._inflight.get(fingerprint)
        if leader is not None:
            self._stats.incr("coalesced")
            response = dict(await leader)
            response["coalesced"] = True
            return response

        cached = self._lookup_all(query)
        if cached is not None:
            self._stats.incr("requests.cached")
            cached["cached"] = True
            return cached

        now = loop.time()
        item = AdmittedRequest(
            query=query,
            future=loop.create_future(),
            enqueued_at=now,
            deadline_at=(now + deadline_ms / 1000.0)
            if deadline_ms is not None else None,
        )
        # No awaits between registering the leader and offering — the
        # single-flight map and the queue stay consistent.
        self._inflight[fingerprint] = item.future
        if not self._queue.offer(item):
            del self._inflight[fingerprint]
            self._stats.incr("shed.overload")
            return {
                "status": STATUS_OVERLOADED,
                "model": query.model_key,
                "error": f"admission queue full "
                         f"(depth {self._queue.max_depth})",
            }
        self._stats.incr("admitted")
        self._stats.gauge("queue.depth", self._queue.depth())
        return dict(await item.future)

    def _lookup_all(self, query: Any) -> Optional[Dict[str, Any]]:
        """The full response if *every* task key is cached, else None
        (recording tier hits only on full success — partial probes are
        re-counted at batch time)."""
        if not query.task_keys or any(k is None for k in query.task_keys):
            return None if query.task_keys else self._ok_response(query, [])
        findings = []
        tiers = []
        for key in query.task_keys:
            tier, finding = self._cache.lookup(key)
            if tier is None:
                return None
            tiers.append(tier)
            findings.append(finding)
        for tier in tiers:
            self._stats.incr(f"cache.{tier}_hits")
        return self._ok_response(query, findings)

    def _ok_response(self, query: Any, findings: List[Any]) -> Dict[str, Any]:
        present = [f for f in findings if f is not None]
        return {
            "status": STATUS_OK,
            "model": query.model_key,
            "model_name": query.model_name,
            "limit": query.limit,
            "vulnerable": bool(present),
            "findings": [finding_payload(f) for f in present],
            "cached": False,
            "coalesced": False,
        }

    def _resolve(self, item: AdmittedRequest,
                 response: Dict[str, Any]) -> None:
        # Drop the single-flight entry *before* resolving so a request
        # arriving after resolution starts fresh (and hits the cache).
        self._inflight.pop(item.query.fingerprint, None)
        if not item.future.done():
            item.future.set_result(response)

    # -- the batch loop ----------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                break
            batch = [first]
            window_end = loop.time() + self._batch_window
            while len(batch) < self._max_batch:
                remaining = window_end - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is None:
                    break
                batch.append(nxt)
            await self._process(batch)
            self._stats.gauge("queue.depth", self._queue.depth())
        self._cache.flush()

    async def _process(self, batch: List[AdmittedRequest]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[AdmittedRequest] = []
        for item in batch:
            if item.expired(now):
                self._stats.incr("shed.deadline")
                self._resolve(item, {
                    "status": STATUS_TIMEOUT,
                    "model": item.query.model_key,
                    "error": "deadline expired while queued",
                })
            else:
                live.append(item)
        if not live:
            return

        # Union the batch's tasks, deduped by fingerprint key; keyless
        # tasks get a unique token and always compute.
        resolved: Dict[Any, Any] = {}
        compute_tasks: List[Any] = []
        compute_tokens: List[Any] = []
        compute_keys: List[Optional[str]] = []
        for item in live:
            item.tokens = []
            for task, key in zip(item.query.tasks, item.query.task_keys):
                if key is None:
                    self._serial += 1
                    token: Any = ("!", self._serial)
                else:
                    token = key
                item.tokens.append(token)
                if token in resolved:
                    continue
                if key is not None:
                    tier, finding = self._cache.lookup(key)
                    if tier is not None:
                        self._stats.incr(f"cache.{tier}_hits")
                        resolved[token] = finding
                        continue
                    self._stats.incr("cache.misses")
                resolved[token] = _PENDING
                compute_tasks.append(task)
                compute_tokens.append(token)
                compute_keys.append(key)

        self._stats.incr("batches")
        self._stats.incr("batch.requests", len(live))
        self._stats.incr("batch.tasks", len(compute_tasks))
        if _OBS.enabled:
            _OBS.event("serve.batch", requests=len(live),
                       unique_tasks=len(compute_tasks),
                       queue_depth=self._queue.depth())

        if compute_tasks:
            try:
                findings = await loop.run_in_executor(
                    None, partial(self._compute_fn, compute_tasks,
                                  compute_keys),
                )
            except Exception as exc:  # engine failure, not protocol
                self._stats.incr("errors.compute")
                for item in live:
                    self._resolve(item, {
                        "status": "error",
                        "model": item.query.model_key,
                        "error": f"analysis failed: {exc!r}",
                    })
                return
            for token, key, finding in zip(compute_tokens, compute_keys,
                                           findings):
                resolved[token] = finding
                if key is not None:
                    self._cache.insert(key, finding)
            self._cache.flush()

        for item in live:
            findings = [resolved[token] for token in item.tokens]
            response = self._ok_response(item.query, findings)
            self._stats.incr("requests.computed")
            self._resolve(item, response)
