"""The micro-batcher: single-flight coalescing + batched dispatch.

Three mechanisms stack between admission and the engine:

**Single-flight coalescing.**  Every query has a request fingerprint
(model key + limit + per-task ``sweep_task_fingerprint``s — see
:mod:`repro.serve.corpus`).  The first request with a given fingerprint
is the *leader*; identical requests arriving while the leader is in
flight attach to the leader's future instead of being admitted again —
they consume no queue depth and no compute, and every waiter receives
the leader's response (including its sheds; a coalesced request shares
its leader's fate).

**Cache fast path.**  A query whose every task key hits the tiered
cache is answered inline — it never touches the queue, so warm traffic
cannot crowd out cold traffic at admission.

**Batched, deduplicated dispatch.**  The batcher claims a batch from
the admission queue (up to ``max_batch`` requests or ``batch_window``
seconds, whichever first), expires overdue deadlines, dedupes the
union of their tasks by fingerprint key (two *different* requests that
share a pFSM×domain compute it once), and hands the remaining unique
tasks to the engine in one dispatch — the thread executor shares the
process-wide predicate cache; the process backend rides the warm
:mod:`repro.core.dist` pool, whose LPT chunker cost-balances the batch
across workers.  One dispatch runs at a time: while it computes, new
identical requests coalesce and new distinct requests accumulate into
the next batch (or shed, once the queue fills — that is admission
control doing its job).

**Sub-predicate batch fusion.**  Before the thread executor dispatches,
compiled-strategy tasks sharing a domain (by content digest) are fused:
one pass over the shared domain evaluates every member's compiled
program per object, with one :class:`~repro.core.plan.NodeMemo`
carrying CSE sub-predicate verdicts *across* the member programs — two
models in one batch that share ``length_le(64) ∧ contains("%n")``
evaluate that conjunct once per object, not once per model.  Interval
fast-path tasks, opaque tasks, and singleton digests fall through to
the normal dispatch unchanged.
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import Any, Dict, List, Optional

from .. import faults as _faults
from ..core.sweep import NO_CACHE, _run_tasks, shared_cache
from ..obs import DEFAULT as _OBS
from ..obs.trace import TraceContext, emit_span, mint_span_id
from .admission import AdmissionQueue, AdmittedRequest
from .protocol import (
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_TIMEOUT,
    finding_payload,
)

__all__ = ["MicroBatcher"]

#: Token placeholder for "scheduled for compute in this batch".
_PENDING = object()


def _traced_compute(fn: Any, tasks: List[Any], keys: List[Optional[str]],
                    ctx: Any) -> Any:
    """Run the compute function with ``ctx`` as the executor thread's
    ambient trace context, so engine spans (``dist.run`` and below)
    chain under the batch span — restored before the thread returns to
    the pool."""
    previous = _OBS.set_trace(ctx)
    try:
        return fn(tasks, keys)
    finally:
        _OBS.set_trace(previous)


def _fusion_groups(tasks: List[Any]):
    """Fusable task groups: compiled-strategy tasks (program available,
    interval fast path not applicable) bucketed by domain content
    digest.  Returns ``(groups, programs)`` where groups are index
    lists of size >= 2 and ``programs`` maps task index to its compiled
    :class:`~repro.core.plan.ScanProgram`."""
    from ..core import dist, plan
    from ..core.sweep import _hidden_intervals, _range_backing

    programs: Dict[int, Any] = {}
    if not plan.is_enabled():
        return [], programs
    buckets: Dict[str, List[int]] = {}
    for index, task in enumerate(tasks):
        _model, _op, pfsm, domain, _limit = task
        if _range_backing(domain) is not None \
                and _hidden_intervals(pfsm) is not None:
            continue  # the closed-form scan is already O(limit)
        try:
            program = plan.program_for(pfsm)
        except Exception:
            program = None
        if program is None:
            continue
        digest = dist.domain_digest(domain)
        if digest is None:
            continue
        buckets.setdefault(digest, []).append(index)
        programs[index] = program
    return [group for group in buckets.values() if len(group) >= 2], \
        programs


def _fused_group_scan(tasks: List[Any], indexes: List[int],
                      programs: Dict[int, Any]) -> Dict[int, Any]:
    """One pass over a shared domain evaluating every member program
    per object.  A single shared :class:`~repro.core.plan.NodeMemo`
    carries CSE sub-predicate verdicts across the member programs; each
    member keeps its own identity memo and witness limit, so results
    are exactly what per-task scans would produce.

    Members whose program vectorizes over the domain's
    struct-of-arrays encoding resolve through one columnar mask pass
    each instead of joining the object loop — the batch shares a single
    :class:`~repro.core.columnar.Encoding`, whose digest-keyed mask
    cache lets member programs with common subpredicates reuse each
    other's column masks (``serve.batch.columnar_tasks``)."""
    from ..core import columnar, plan
    from ..core.sweep import SweepFinding

    resolved = shared_cache()
    memo = plan.NodeMemo()
    miss = object()
    members = []
    for index in indexes:
        model_name, operation_name, pfsm, _domain, limit = tasks[index]
        members.append({
            "index": index, "pfsm": pfsm, "model": model_name,
            "operation": operation_name, "program": programs[index],
            "limit": limit, "found": [], "verdicts": {}, "pinned": [],
            "columnar": False,
        })
    domain = tasks[indexes[0]][3]  # same content digest: any member's
    columnar_members = 0
    scalar_members = []
    for member in members:
        witnesses = columnar.scan_program(
            member["program"], domain, member["limit"])
        if witnesses is not None:
            member["found"] = witnesses
            member["columnar"] = True
            columnar_members += 1
        else:
            scalar_members.append(member)
    if _OBS.enabled and columnar_members:
        _OBS.incr("serve.batch.columnar_tasks", columnar_members)
        _OBS.incr("serve.batch.columnar_groups")
    open_members = [m for m in scalar_members if m["limit"] > 0]
    for candidate in domain:
        if not open_members:
            break
        ident = id(candidate)
        still = []
        for member in open_members:
            hidden = member["verdicts"].get(ident, miss)
            if hidden is miss:
                program = member["program"]
                if resolved is not None:
                    hidden = resolved.evaluate_digest(
                        program.digest, candidate, program.evaluate, memo)
                else:
                    hidden = program.evaluate(candidate, memo)
                member["verdicts"][ident] = hidden
                member["pinned"].append(candidate)
            if hidden:
                member["found"].append(candidate)
                if len(member["found"]) >= member["limit"]:
                    continue  # member filled: drop from the open set
            still.append(member)
        open_members = still
    results: Dict[int, Any] = {}
    for member in members:
        found = member["found"]
        if _OBS.enabled:
            with _OBS.span("sweep.task", model=member["model"],
                           operation=member["operation"],
                           pfsm=member["pfsm"].name) as span:
                span.set(witnesses=len(found), fused=True,
                         columnar=member["columnar"])
            strategy = "columnar" if member["columnar"] else "compiled"
            _OBS.incr("sweep.tasks.completed")
            _OBS.incr(f"sweep.scans.{strategy}")
            _OBS.incr(f"plan.strategy.{strategy}")
            judged = len(domain) if member["columnar"] \
                else len(member["verdicts"])
            _OBS.incr("sweep.objects.judged", judged)
            _OBS.incr("sweep.witnesses", len(found))
        results[member["index"]] = None if not found else SweepFinding(
            model_name=member["model"],
            operation_name=member["operation"],
            pfsm_name=member["pfsm"].name,
            activity=member["pfsm"].activity,
            witnesses=tuple(found),
        )
    if _OBS.enabled:
        hits, misses = memo.drain()
        if hits or misses:
            _OBS.incr("plan.cse.hits", hits)
            _OBS.incr("plan.cse.misses", misses)
    return results


def _engine_compute(tasks: List[Any], keys: List[Optional[str]],
                    workers: int, backend: str) -> List[Any]:
    """The default compute function: one engine dispatch (runs on an
    executor thread, never the event loop)."""
    if backend in ("process", "queue", "cluster"):
        # Worker processes keep their own predicate caches; the keys
        # let the dist scheduler memoize by fingerprint as well.
        # (cluster routes chunks through the ambient coordinator to
        # remote `repro worker` agents — same task payloads, same
        # deterministic reassembly.)
        return _run_tasks(tasks, workers, backend, cache=NO_CACHE,
                          keys=keys)
    groups, programs = _fusion_groups(tasks)
    if not groups:
        return _run_tasks(tasks, workers, "thread", cache=shared_cache())
    fused_total = sum(len(group) for group in groups)
    if _OBS.enabled:
        _OBS.incr("sweep.tasks.queued", fused_total)
        _OBS.incr("serve.batch.fused_groups", len(groups))
        _OBS.incr("serve.batch.fused_tasks", fused_total)
    resolved_by_index: Dict[int, Any] = {}
    for group in groups:
        resolved_by_index.update(_fused_group_scan(tasks, group, programs))
    leftover = [i for i in range(len(tasks)) if i not in resolved_by_index]
    if leftover:
        sub = _run_tasks([tasks[i] for i in leftover], workers, "thread",
                         cache=shared_cache())
        for index, finding in zip(leftover, sub):
            resolved_by_index[index] = finding
    return [resolved_by_index[i] for i in range(len(tasks))]


class MicroBatcher:
    """Coalesces, batches, and dispatches admitted queries.

    Construct and :meth:`start` on the event loop; submit from
    connection handlers; :meth:`stop` drains the backlog and returns
    once every admitted request has been resolved.
    """

    def __init__(
        self,
        cache: Any,
        stats: Any,
        *,
        max_depth: int = 64,
        batch_window: float = 0.01,
        max_batch: int = 16,
        workers: int = 2,
        backend: str = "thread",
        compute_fn: Any = None,
        breaker: Any = None,
    ) -> None:
        self._cache = cache
        self._stats = stats
        self._breaker = breaker
        self._queue = AdmissionQueue(max_depth)
        self._batch_window = batch_window
        self._max_batch = max(1, max_batch)
        self._workers = max(1, workers)
        self._backend = backend
        self._compute_fn = compute_fn or partial(
            _engine_compute, workers=self._workers, backend=backend,
        )
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        #: Trace contexts of coalesced requests, keyed by fingerprint —
        #: the batch span links to every one, so each coalesced trace
        #: still sees the batch that computed its answer.
        self._trace_links: Dict[str, List[Any]] = {}
        self._task: Optional["asyncio.Task[Any]"] = None
        self._serial = 0

    # -- guarded dispatch --------------------------------------------------

    def _guarded_compute(self, tasks: List[Any],
                         keys: List[Optional[str]]) -> List[Any]:
        """One batch dispatch through the circuit breaker (executor
        thread, never the event loop).

        Without a breaker this is a straight call.  With one, a primary
        dispatch failure is recorded and the batch re-runs on the inline
        thread path — same deterministic findings, degraded throughput —
        while an open breaker skips the primary entirely
        (``breaker.short_circuited``).  The ``serve.dispatch.crash``
        fault tap fires inside the guarded region so chaos tests drive
        the breaker without a genuinely broken backend.
        """
        breaker = self._breaker
        if breaker is None:
            if _faults.fire("serve.dispatch.crash") is not None:
                raise _faults.InjectedFault("serve.dispatch.crash")
            return self._compute_fn(tasks, keys)
        if breaker.allow():
            try:
                if _faults.fire("serve.dispatch.crash") is not None:
                    raise _faults.InjectedFault("serve.dispatch.crash")
                findings = self._compute_fn(tasks, keys)
            except Exception:
                breaker.record_failure()
                self._stats.incr("breaker.fallbacks")
                if _OBS.enabled:
                    _OBS.incr("serve.breaker.fallbacks")
                    _OBS.event("serve.breaker.fallback",
                               state=breaker.state, tasks=len(tasks))
                return _engine_compute(tasks, keys, self._workers,
                                       "thread")
            breaker.record_success()
            return findings
        self._stats.incr("breaker.short_circuited")
        if _OBS.enabled:
            _OBS.incr("serve.breaker.short_circuited")
        return _engine_compute(tasks, keys, self._workers, "thread")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the batch loop on the running event loop."""
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Close admission, drain the backlog, flush the cold store."""
        self._queue.close()
        if self._task is not None:
            await self._task
            self._task = None
        self._cache.flush()

    def queue_depth(self) -> int:
        return self._queue.depth()

    def inflight_count(self) -> int:
        return len(self._inflight)

    # -- the request path --------------------------------------------------

    async def submit(self, query: Any,
                     deadline_ms: Optional[float] = None,
                     ctx: Any = None) -> Dict[str, Any]:
        """Resolve one expanded query to a response payload.

        Fast paths (coalesce, full cache hit) answer inline; otherwise
        the query is admitted (or refused) and awaited.  ``ctx`` is the
        request's :class:`~repro.obs.trace.TraceContext` on a tracing
        server; the admission decision is emitted as a span under it.
        The returned dict is freshly owned by the caller.
        """
        loop = asyncio.get_running_loop()
        tracing = ctx is not None and _OBS.enabled
        admit_wall = _OBS._wall() if tracing else 0.0
        admit_at = loop.time() if tracing else 0.0

        def admission_span(outcome: str) -> None:
            if tracing:
                emit_span(_OBS, "serve.admission", ctx, admit_wall,
                          max(0.0, loop.time() - admit_at),
                          outcome=outcome, queue_depth=self._queue.depth())

        fingerprint = query.fingerprint
        register = getattr(self._cache, "register", None)
        if register is not None:
            register(query.model_key, query.task_keys)

        leader = self._inflight.get(fingerprint)
        if leader is not None:
            self._stats.incr("coalesced")
            if tracing:
                # Link this trace into the leader's batch span.
                self._trace_links.setdefault(fingerprint, []).append(ctx)
            admission_span("coalesced")
            response = dict(await leader)
            response["coalesced"] = True
            return response

        cached = self._lookup_all(query)
        if cached is not None:
            self._stats.incr("requests.cached")
            cached["cached"] = True
            admission_span("cached")
            return cached

        if _faults.fire("serve.admission.refuse") is not None:
            self._stats.incr("shed.injected")
            admission_span("injected_refusal")
            return {
                "status": STATUS_OVERLOADED,
                "model": query.model_key,
                "error": "admission refused (injected fault)",
            }

        now = loop.time()
        item = AdmittedRequest(
            query=query,
            future=loop.create_future(),
            enqueued_at=now,
            deadline_at=(now + deadline_ms / 1000.0)
            if deadline_ms is not None else None,
            ctx=ctx if tracing else None,
            wall_enqueued=admit_wall,
        )
        # No awaits between registering the leader and offering — the
        # single-flight map and the queue stay consistent.
        self._inflight[fingerprint] = item.future
        if not self._queue.offer(item):
            del self._inflight[fingerprint]
            self._stats.incr("shed.overload")
            admission_span("overloaded")
            return {
                "status": STATUS_OVERLOADED,
                "model": query.model_key,
                "error": f"admission queue full "
                         f"(depth {self._queue.max_depth})",
            }
        self._stats.incr("admitted")
        self._stats.gauge("queue.depth", self._queue.depth())
        admission_span("admitted")
        return dict(await item.future)

    def _lookup_all(self, query: Any) -> Optional[Dict[str, Any]]:
        """The full response if *every* task key is cached, else None
        (recording tier hits only on full success — partial probes are
        re-counted at batch time)."""
        if not query.task_keys or any(k is None for k in query.task_keys):
            return None if query.task_keys else self._ok_response(query, [])
        findings = []
        tiers = []
        for key in query.task_keys:
            tier, finding = self._cache.lookup(key)
            if tier is None:
                return None
            tiers.append(tier)
            findings.append(finding)
        for tier in tiers:
            self._stats.incr(f"cache.{tier}_hits")
        return self._ok_response(query, findings)

    def _ok_response(self, query: Any, findings: List[Any]) -> Dict[str, Any]:
        present = [f for f in findings if f is not None]
        return {
            "status": STATUS_OK,
            "model": query.model_key,
            "model_name": query.model_name,
            "limit": query.limit,
            "vulnerable": bool(present),
            "findings": [finding_payload(f) for f in present],
            "cached": False,
            "coalesced": False,
        }

    def _resolve(self, item: AdmittedRequest,
                 response: Dict[str, Any]) -> None:
        # Drop the single-flight entry *before* resolving so a request
        # arriving after resolution starts fresh (and hits the cache).
        self._inflight.pop(item.query.fingerprint, None)
        # Any link contexts not consumed by a batch span (timeout and
        # error paths) must not accumulate.
        self._trace_links.pop(item.query.fingerprint, None)
        if not item.future.done():
            item.future.set_result(response)

    # -- the batch loop ----------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                break
            batch = [first]
            window_end = loop.time() + self._batch_window
            while len(batch) < self._max_batch:
                remaining = window_end - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is None:
                    break
                batch.append(nxt)
            await self._process(batch)
            self._stats.gauge("queue.depth", self._queue.depth())
        self._cache.flush()

    async def _process(self, batch: List[AdmittedRequest]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[AdmittedRequest] = []
        for item in batch:
            expired = item.expired(now)
            wait_s = max(0.0, now - item.enqueued_at)
            self._stats.observe("queue_wait", wait_s)
            if item.ctx is not None and _OBS.enabled:
                emit_span(_OBS, "serve.queue_wait", item.ctx,
                          item.wall_enqueued, wait_s,
                          outcome="timeout" if expired else "dispatched")
            if expired:
                self._stats.incr("shed.deadline")
                self._resolve(item, {
                    "status": STATUS_TIMEOUT,
                    "model": item.query.model_key,
                    "error": "deadline expired while queued",
                })
            else:
                live.append(item)
        if not live:
            return
        # Batch-formation window: first admission to dispatch.
        self._stats.observe(
            "batch_window",
            max(0.0, now - min(item.enqueued_at for item in live)))

        # Union the batch's tasks, deduped by fingerprint key; keyless
        # tasks get a unique token and always compute.
        resolved: Dict[Any, Any] = {}
        compute_tasks: List[Any] = []
        compute_tokens: List[Any] = []
        compute_keys: List[Optional[str]] = []
        for item in live:
            item.tokens = []
            for task, key in zip(item.query.tasks, item.query.task_keys):
                if key is None:
                    self._serial += 1
                    token: Any = ("!", self._serial)
                else:
                    token = key
                item.tokens.append(token)
                if token in resolved:
                    continue
                if key is not None:
                    tier, finding = self._cache.lookup(key)
                    if tier is not None:
                        self._stats.incr(f"cache.{tier}_hits")
                        resolved[token] = finding
                        continue
                    self._stats.incr("cache.misses")
                resolved[token] = _PENDING
                compute_tasks.append(task)
                compute_tokens.append(token)
                compute_keys.append(key)

        self._stats.incr("batches")
        self._stats.incr("batch.requests", len(live))
        self._stats.incr("batch.tasks", len(compute_tasks))
        if _OBS.enabled:
            _OBS.event("serve.batch", requests=len(live),
                       unique_tasks=len(compute_tasks),
                       queue_depth=self._queue.depth())

        # The batch span serves every traced request in the batch: it
        # adopts the first traced request's trace and *links* to all of
        # them (plus every coalesced context), so each trace reassembles
        # with the batch — and the engine spans under it — attached.
        traced = [item for item in live if item.ctx is not None]
        batch_ctx = None
        batch_hex = None
        batch_wall = 0.0
        batch_started = 0.0
        if traced and _OBS.enabled:
            lead = traced[0].ctx
            batch_hex = mint_span_id()
            batch_ctx = TraceContext(lead.trace_id, batch_hex, lead.sampled)
            batch_wall = _OBS._wall()
            batch_started = loop.time()

        if compute_tasks:
            engine_started = loop.time()
            if batch_ctx is not None:
                call = partial(_traced_compute, self._guarded_compute,
                               compute_tasks, compute_keys, batch_ctx)
            else:
                call = partial(self._guarded_compute, compute_tasks,
                               compute_keys)
            try:
                findings = await loop.run_in_executor(None, call)
            except Exception as exc:  # engine failure, not protocol
                self._stats.incr("errors.compute")
                self._stats.observe("engine", loop.time() - engine_started)
                for item in live:
                    self._resolve(item, {
                        "status": "error",
                        "model": item.query.model_key,
                        "error": f"analysis failed: {exc!r}",
                    })
                return
            self._stats.observe("engine", loop.time() - engine_started)
            write_started = loop.time()
            write_wall = _OBS._wall() if batch_ctx is not None else 0.0
            for token, key, finding in zip(compute_tokens, compute_keys,
                                           findings):
                resolved[token] = finding
                if key is not None:
                    self._cache.insert(key, finding)
            self._cache.flush()
            write_s = loop.time() - write_started
            self._stats.observe("cache_write", write_s)
            if batch_ctx is not None:
                emit_span(_OBS, "serve.cache_write", batch_ctx,
                          write_wall, write_s, keys=len(compute_tasks))

        if batch_ctx is not None:
            links = [item.ctx for item in traced]
            for item in live:
                links.extend(
                    self._trace_links.pop(item.query.fingerprint, ()))
            emit_span(_OBS, "serve.batch", traced[0].ctx, batch_wall,
                      max(0.0, loop.time() - batch_started),
                      span_hex=batch_hex, parent_hex=traced[0].ctx.span_id,
                      links=links, requests=len(live),
                      unique_tasks=len(compute_tasks),
                      backend=self._backend)

        for item in live:
            findings = [resolved[token] for token in item.tokens]
            response = self._ok_response(item.query, findings)
            self._stats.incr("requests.computed")
            self._resolve(item, response)
