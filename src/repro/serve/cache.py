"""The tiered result cache: warm in-process memo → cold JSONL store.

Tier 1 *is* the scheduler's fingerprint memo
(:func:`repro.core.dist.memo_lookup` / :func:`~repro.core.dist.memo_store`)
— the service and any in-process ``sweep_models(mode="process")`` calls
share one warm tier, so a sweep run before the server started (or a
request served earlier) both count as warm.  Tier 2 is an optional
:class:`~repro.core.dist.ResultStore` JSONL file, loaded once at
startup and appended to as new keyed results are computed; a store
written by ``repro sweep --resume-from`` is directly servable, and a
store written by the server is directly resumable — same keys, same
records.

Store appends are buffered and flushed after each batch (and on drain),
so the serving path never does per-request file I/O.

Because cached findings are keyed by fingerprints that fold in every
predicate's behaviour (model fingerprint + per-task spec digests, both
validated against predicate mutation stamps — see
:func:`repro.core.dist.task_key`), a mutated model naturally misses.
:meth:`TieredResultCache.invalidate` additionally evicts everything a
model key ever :meth:`registered <TieredResultCache.register>`, for
explicit cache hygiene after a known mutation.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..core import dist

__all__ = ["TieredResultCache"]

#: Lookup outcome tier labels (also the stats counter suffixes).
TIER_MEMO = "memo"
TIER_STORE = "store"


class TieredResultCache:
    """Fingerprint-keyed finding cache over the two result tiers."""

    def __init__(self, store_path: Optional[str] = None,
                 stats: Optional[Any] = None) -> None:
        self.stats = stats
        self._store = (dist.ResultStore(store_path)
                       if store_path is not None else None)
        self._known: Dict[str, Any] = (self._store.load()
                                       if self._store is not None else {})
        self._buffer: List[Tuple[str, Any]] = []
        #: model key -> every task fingerprint key seen for it, so
        #: :meth:`invalidate` can evict a mutated model's entries.
        self._by_model: Dict[str, set] = {}
        self._lock = threading.Lock()

    @property
    def store_keys(self) -> int:
        """How many keys the cold tier held at load time (plus appends)."""
        with self._lock:
            return len(self._known)

    def lookup(self, key: Optional[str]) -> Tuple[Optional[str], Any]:
        """``(tier, finding)`` — tier ``"memo"``, ``"store"``, or ``None``
        on a miss.  Store hits are promoted into the memo so the next
        lookup is warm.  Does not touch stats (callers decide whether a
        probe counts)."""
        if key is None:
            return None, None
        hit, finding = dist.memo_lookup(key)
        if hit:
            return TIER_MEMO, finding
        with self._lock:
            if key in self._known:
                finding = self._known[key]
            else:
                return None, None
        dist.memo_store(key, finding)
        return TIER_STORE, finding

    def insert(self, key: str, finding: Any) -> None:
        """Install a freshly computed result into both tiers (the store
        append is buffered until :meth:`flush`)."""
        dist.memo_store(key, finding)
        with self._lock:
            if self._store is not None and key not in self._known:
                self._known[key] = finding
                self._buffer.append((key, finding))

    def register(self, model_key: str, task_keys: Any) -> None:
        """Remember which task fingerprint keys belong to ``model_key``
        (idempotent; ``None`` keys are skipped)."""
        keys = [k for k in task_keys if k is not None]
        if not keys:
            return
        with self._lock:
            self._by_model.setdefault(model_key, set()).update(keys)

    def invalidate(self, model_key: str) -> int:
        """Evict every registered entry for ``model_key`` from the warm
        memo, the in-memory store index, and the append buffer; returns
        how many keys were dropped from at least one tier.  (Records
        already persisted in the cold JSONL file are not rewritten —
        they become unreachable through this cache.)"""
        with self._lock:
            keys = self._by_model.pop(model_key, set())
            for key in keys:
                self._known.pop(key, None)
            if keys and self._buffer:
                self._buffer = [(k, f) for k, f in self._buffer
                                if k not in keys]
        for key in keys:
            dist.memo_discard(key)
        dropped = len(keys)
        if dropped and self.stats is not None:
            self.stats.incr("cache.invalidated", dropped)
        return dropped

    def flush(self) -> int:
        """Append buffered results to the cold store; returns how many
        records were written."""
        if self._store is None:
            return 0
        with self._lock:
            pending, self._buffer = self._buffer, []
        if not pending:
            return 0
        written = self._store.record_many(pending)
        if self.stats is not None:
            self.stats.incr("cache.flushed", written)
        return written
