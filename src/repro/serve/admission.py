"""Admission control: the bounded request queue.

The queue is the server's only buffer, and it is *bounded*: when the
batcher falls behind and the queue fills, :meth:`AdmissionQueue.offer`
refuses immediately and the caller answers ``overloaded`` — the client
gets an explicit refusal in microseconds instead of a response whose
latency grows without bound.  Depth is the knob that trades queueing
latency for shed rate.

Per-request deadlines ride on the queued item: an
:class:`AdmittedRequest` whose ``deadline_at`` passed while it waited is
shed (status ``timeout``) by the batcher at dequeue time, so a burst
cannot make old requests consume compute their clients have already
given up on.

The implementation is asyncio-native and single-consumer (the batcher),
multi-producer (connection handlers — all on the event loop thread).
``close()`` starts drain semantics: no further offers are accepted, and
``get`` returns ``None`` once the backlog is fully consumed.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["AdmittedRequest", "AdmissionQueue"]


@dataclass
class AdmittedRequest:
    """One admitted query waiting for (or undergoing) dispatch."""

    query: Any  # ExpandedQuery
    future: "asyncio.Future[Any]"
    enqueued_at: float  # loop.time() at admission
    deadline_at: Optional[float] = None  # loop.time() bound, or None
    #: Per-task result tokens, filled at batch-formation time.
    tokens: list = field(default_factory=list)
    #: Trace context of the owning request (None on untraced servers).
    ctx: Any = None
    #: Wall-clock admission time (span timestamps use wall time).
    wall_enqueued: float = 0.0

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now > self.deadline_at


class AdmissionQueue:
    """Bounded FIFO with refuse-on-full offers and closeable drain."""

    def __init__(self, max_depth: int) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self._items: "deque[Any]" = deque()
        self._closed = False
        self._event: Optional[asyncio.Event] = None

    def _signal(self) -> asyncio.Event:
        # Created lazily so the queue can be constructed off-loop.
        if self._event is None:
            self._event = asyncio.Event()
        return self._event

    def depth(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def offer(self, item: Any) -> bool:
        """Admit ``item`` or refuse (``False``) — full or closed queues
        never block the caller."""
        if self._closed or len(self._items) >= self.max_depth:
            return False
        self._items.append(item)
        self._signal().set()
        return True

    def get_nowait(self) -> Optional[Any]:
        """Pop the head if one is ready (``None`` otherwise)."""
        if self._items:
            item = self._items.popleft()
            if not self._items:
                self._signal().clear()
            return item
        return None

    async def get(self) -> Optional[Any]:
        """Await the next item; ``None`` means closed *and* drained.

        Cancellation-safe: an item is only removed atomically after the
        wait completes, so a timed-out waiter (``asyncio.wait_for``)
        never loses work.
        """
        while True:
            item = self.get_nowait()
            if item is not None:
                return item
            if self._closed:
                return None
            await self._signal().wait()
            # Loop: the event may have been set by close() or the item
            # may already be consumed in a race with get_nowait callers.

    def close(self) -> None:
        """Refuse all future offers; wake the consumer to drain."""
        self._closed = True
        self._signal().set()
