"""Always-on service statistics, mirrored into :mod:`repro.obs`.

The engine's telemetry registry is disabled by default (and per-command
in the CLI), but a serving process must answer ``/metrics`` whether or
not anyone attached a profiling sink.  :class:`ServeStats` therefore
keeps its own thread-safe counters/gauges and a bounded latency window
unconditionally — the per-request cost is a dict update under a lock —
and *additionally* forwards every movement to the default obs registry
under the ``serve.*`` namespace whenever that registry is enabled, so
``repro serve --profile``/``--trace-file`` see the service exactly like
any other instrumented subsystem.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Optional, Sequence

from ..obs import DEFAULT as _OBS
from ..obs.prometheus import Histogram

__all__ = ["LatencyWindow", "ServeStats", "STAGES"]

#: Per-stage latency histograms recorded by the serving path: total
#: request time, queueing, batch formation, engine dispatch, and cache
#: writeback.  Each stage is exposed as its own Prometheus family
#: (``repro_serve_stage_<name>_seconds``).
STAGES = ("request", "queue_wait", "batch_window", "engine", "cache_write")


class LatencyWindow:
    """A bounded sliding window of request latencies (seconds).

    Percentiles are computed on demand over the last ``maxlen`` samples
    — recording stays O(1) on the serving path, and the window bounds
    memory for arbitrarily long-lived servers.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._samples: "deque[float]" = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._count = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self._count += 1

    def percentile(self, pct: float) -> Optional[float]:
        """The ``pct``-th percentile (nearest-rank) in seconds, or
        ``None`` before the first sample."""
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return None
        rank = max(1, int(round(pct / 100.0 * len(data) + 0.5)))
        return data[min(rank, len(data)) - 1]

    def snapshot(self) -> Dict[str, Any]:
        """``count`` plus p50/p95/max over the window, in milliseconds."""
        with self._lock:
            data = sorted(self._samples)
            count = self._count

        def at(pct: float) -> Optional[float]:
            if not data:
                return None
            rank = max(1, int(round(pct / 100.0 * len(data) + 0.5)))
            return round(data[min(rank, len(data)) - 1] * 1000.0, 3)

        return {
            "count": count,
            "p50_ms": at(50),
            "p95_ms": at(95),
            "max_ms": round(data[-1] * 1000.0, 3) if data else None,
        }


class ServeStats:
    """Thread-safe counters/gauges + latency window for one server.

    ``buckets`` overrides the per-stage histogram bucket bounds (in
    seconds) — the Prometheus exposition's configurable replacement for
    the fixed p50/p95 gauges, which remain on the JSON snapshot.
    """

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._buckets = tuple(buckets) if buckets is not None else None
        self._histograms: Dict[str, Histogram] = {}
        self.latency = LatencyWindow()

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
        if _OBS.enabled:
            _OBS.incr(f"serve.{name}", n)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value
        if _OBS.enabled:
            _OBS.gauge(f"serve.{name}", value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, stage: str, seconds: float) -> None:
        """Record one duration into the stage's latency histogram."""
        histogram = self._histograms.get(stage)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    stage, Histogram(self._buckets))
        histogram.observe(seconds)

    def histograms(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot of every stage histogram (see
        :meth:`repro.obs.prometheus.Histogram.snapshot`)."""
        with self._lock:
            items = list(self._histograms.items())
        return {name: hist.snapshot() for name, hist in items}

    def record_latency(self, seconds: float) -> None:
        self.latency.record(seconds)
        self.observe("request", seconds)

    def snapshot(self) -> Dict[str, Any]:
        """Counters, gauges, latency percentiles, and the derived rates
        the admission/coalescing contract is judged by."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
        latency = self.latency.snapshot()
        queries = counters.get("requests.query", 0)
        coalesced = counters.get("coalesced", 0)
        cached = counters.get("requests.cached", 0)
        shed = sum(v for k, v in counters.items() if k.startswith("shed."))
        task_hits = (counters.get("cache.memo_hits", 0)
                     + counters.get("cache.store_hits", 0))
        task_lookups = task_hits + counters.get("cache.misses", 0)
        if _OBS.enabled:
            # An empty-at-snapshot window must reset the mirrored
            # gauges explicitly: skipping the write would leave the
            # previous snapshot's percentiles standing in obs gauges()
            # as if they were current.
            _OBS.gauge("serve.latency.p50_ms",
                       latency["p50_ms"] if latency["p50_ms"] is not None
                       else 0.0)
            _OBS.gauge("serve.latency.p95_ms",
                       latency["p95_ms"] if latency["p95_ms"] is not None
                       else 0.0)
        return {
            "counters": counters,
            "gauges": gauges,
            "latency": latency,
            "histograms": self.histograms(),
            "derived": {
                "coalesce_rate": coalesced / queries if queries else 0.0,
                "request_cache_hit_rate": cached / queries if queries
                else 0.0,
                "task_cache_hit_rate": task_hits / task_lookups
                if task_lookups else 0.0,
                "shed_total": shed,
            },
        }
