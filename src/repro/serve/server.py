"""The long-running analysis server: lifecycle, connections, drain.

A single asyncio event loop front-ends the engine.  Each connection
speaks the line-JSON protocol of :mod:`repro.serve.protocol` — except
that a first line starting with an HTTP method gets the thin HTTP
façade instead: ``GET /healthz`` (readiness: 200 while ``ready``, 503
otherwise; always includes liveness) and ``GET /metrics`` (the
counters/gauges/latency snapshot), so orchestration probes need no
custom client.

Lifecycle is a strict state machine::

    starting → ready → draining → stopped

``drain()`` (wired to SIGTERM/SIGINT by the CLI) is the graceful half
of the contract: the listener closes (no new connections), requests
arriving on open connections are answered with status ``draining``
(an explicit response, never a dropped byte), the admission queue is
closed and the batcher finishes every admitted request, the cold store
is flushed, and only then — after in-flight responses hit their
sockets and clients close, bounded by a grace period — does the server
stop.  ``zero dropped responses`` is the invariant the serve benchmark
measures.

Embedding: :class:`ServerThread` runs the whole thing on a daemon
thread for tests and benchmarks; ``repro serve`` runs it on the main
thread with signal handlers installed.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from ..core import dist
from ..obs import DEFAULT as _OBS
from ..obs.prometheus import render_exposition
from ..obs.sinks import JsonlSink
from ..obs.trace import (
    TailRules,
    TraceCollector,
    TraceContext,
    emit_span,
    mint_span_id,
    trace_timeline,
)
from .. import faults as _faults
from .batcher import MicroBatcher
from .breaker import CLOSED as BREAKER_CLOSED
from .breaker import HALF_OPEN as BREAKER_HALF_OPEN
from .breaker import OPEN as BREAKER_OPEN
from .breaker import CircuitBreaker
from .cache import TieredResultCache
from .corpus import AnalysisCorpus
from .protocol import (
    MAX_LINE,
    ProtocolError,
    SHED_STATUSES,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_OK,
    decode_request,
    encode_line,
)
from .stats import ServeStats

__all__ = ["ServeConfig", "AnalysisServer", "ServerThread",
           "STARTING", "READY", "DRAINING", "STOPPED"]

STARTING = "starting"
READY = "ready"
DRAINING = "draining"
STOPPED = "stopped"


@dataclass
class ServeConfig:
    """Every serving knob in one place (the CLI maps flags 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is announced
    max_depth: int = 64  # admission queue bound
    batch_window: float = 0.01  # seconds the batcher waits to coalesce
    max_batch: int = 16  # requests per dispatch
    workers: int = 2
    backend: str = "thread"  # thread | process | queue | cluster
    cluster_listen: Optional[str] = None  # HOST:PORT for cluster workers
    store_path: Optional[str] = None  # cold-tier JSONL (optional)
    max_limit: int = 1000  # witness-limit clamp per query
    drain_grace: float = 5.0  # seconds to wait for sockets to flush
    trace: bool = False  # end-to-end request tracing (repro.obs.trace)
    trace_sample: float = 1.0  # head-sampling rate for minted traces
    trace_slow_ms: Optional[float] = None  # tail-keep: retain slower traces
    trace_file: Optional[str] = None  # span JSONL for `repro trace export`
    latency_buckets: Optional[tuple] = None  # stage histogram bounds (s)
    breaker_window: int = 16  # dispatch outcomes in the breaker window
    breaker_threshold: float = 0.5  # failure fraction that trips it
    breaker_cooldown: float = 5.0  # seconds open before half-open probes


class AnalysisServer:
    """One corpus, one admission queue, one batcher, one event loop."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 corpus: Optional[AnalysisCorpus] = None) -> None:
        self.config = config or ServeConfig()
        self.corpus = corpus or AnalysisCorpus()
        self.stats = ServeStats(buckets=self.config.latency_buckets)
        self.cache = TieredResultCache(self.config.store_path,
                                       stats=self.stats)
        self.state = STARTING
        self.host = self.config.host
        self.port: Optional[int] = None
        self.batcher: Optional[MicroBatcher] = None
        #: The cluster fan-out fabric when ``backend == "cluster"`` —
        #: micro-batches dispatch through it to ``repro worker`` agents.
        self.coordinator: Optional[Any] = None
        #: Circuit breaker around the non-thread dispatch path; while it
        #: is not closed the server is ``degraded`` (inline fallback).
        self.breaker: Optional[CircuitBreaker] = None
        self.tracer: Optional[TraceCollector] = None
        self._trace_sink: Optional[JsonlSink] = None
        self._obs_owned = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._conn_tasks: Set["asyncio.Task[Any]"] = set()
        self._pending_responses = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, warm up, and report ready.  Must run on the loop that
        will serve."""
        self._stopped = asyncio.Event()
        if self.config.trace:
            # The collector reassembles per-request traces; the optional
            # JSONL sink persists raw spans for `repro trace export`.
            # The registry is enabled if nobody (e.g. the CLI profile
            # wrapper) did already — and restored on drain.
            self.tracer = TraceCollector(
                head_sample=self.config.trace_sample,
                tail=TailRules(slow_ms=self.config.trace_slow_ms),
            )
            sinks = [self.tracer]
            if self.config.trace_file:
                self._trace_sink = JsonlSink(self.config.trace_file)
                sinks.append(self._trace_sink)
            self._obs_owned = not _OBS.enabled
            _OBS.enable(*sinks)
        if self.config.backend in ("process", "queue"):
            # Pay fork/spawn cost before readiness, not inside the
            # first request.
            dist.prewarm(self.config.workers)
        elif self.config.backend == "cluster":
            # Cluster fan-out: start the coordinator before readiness
            # and install it as the process-ambient fabric, so every
            # micro-batch the engine dispatches with backend="cluster"
            # ships its chunks to `repro worker` agents.  Until a
            # worker joins, the coordinator executes chunks inline —
            # the server is usable alone and gains throughput as
            # workers connect.  Counters flow into self.stats, so the
            # /metrics exposition grows repro_serve_cluster_* families.
            from .. import cluster as _cluster
            host, port = ("127.0.0.1", 0)
            if self.config.cluster_listen:
                host, port = _cluster.parse_address(
                    self.config.cluster_listen, flag="cluster_listen")
            self.coordinator = _cluster.ClusterCoordinator(
                host, port, stats=self.stats)
            self.coordinator.start()
            _cluster.set_coordinator(self.coordinator)
        if self.config.backend != "thread":
            # Every non-thread backend dispatches into machinery that
            # can fail in correlated ways (poisoned pool, dead fabric);
            # the breaker turns a failure storm into inline degraded
            # service.  The thread backend *is* the fallback path, so
            # it gets no breaker.
            self.breaker = CircuitBreaker(
                window=self.config.breaker_window,
                threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
                on_transition=self._breaker_transition,
            )
        self.batcher = MicroBatcher(
            self.cache,
            self.stats,
            max_depth=self.config.max_depth,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
            workers=self.config.workers,
            backend=self.config.backend,
            breaker=self.breaker,
        )
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
            limit=MAX_LINE,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.state = READY
        if _OBS.enabled:
            _OBS.event("serve.started", host=self.host, port=self.port,
                       backend=self.config.backend,
                       store=bool(self.config.store_path))

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`drain` completes, then reap connections."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish admitted work,
        flush the store, release waiters."""
        if self.state in (DRAINING, STOPPED):
            return
        self.state = DRAINING
        self.stats.incr("lifecycle.drains")
        if _OBS.enabled:
            _OBS.event("serve.drain", phase="begin",
                       queue_depth=self.batcher.queue_depth()
                       if self.batcher else 0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.batcher is not None:
            await self.batcher.stop()  # runs the backlog dry, flushes
        # Let in-flight responses reach their sockets and clients hang
        # up on their own; the grace bound keeps shutdown finite even
        # against a client that never closes.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_grace
        while loop.time() < deadline:
            if self._pending_responses == 0 and not self._conn_tasks:
                break
            await asyncio.sleep(0.01)
        self.cache.flush()
        if self.coordinator is not None:
            # Tear down the fabric after the batcher ran dry: pending
            # dispatches have completed, so closing now strands no
            # chunk.  Clear the ambient handle only if it is still ours.
            from .. import cluster as _cluster
            if _cluster.get_coordinator() is self.coordinator:
                _cluster.set_coordinator(None)
            self.coordinator.close()
        self.state = STOPPED
        if _OBS.enabled:
            _OBS.event("serve.drain", phase="complete")
        if self.tracer is not None:
            # Detach tracing sinks (the collector object survives for
            # post-drain inspection) and restore the registry state we
            # found at start.
            _OBS.remove_sink(self.tracer)
            if self._trace_sink is not None:
                _OBS.remove_sink(self._trace_sink)
                self._trace_sink.close()
                self._trace_sink = None
            if self._obs_owned:
                _OBS.disable()
        if self._stopped is not None:
            self._stopped.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → drain (where the platform allows it)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loops

    # -- metrics -----------------------------------------------------------

    def _breaker_transition(self, old_state: str, new_state: str) -> None:
        """Breaker state changes become ServeStats counters (and so
        ``repro_serve_breaker_<state>_total`` Prometheus families)."""
        self.stats.incr(f"breaker.{new_state}")
        if _OBS.enabled:
            _OBS.incr(f"serve.breaker.{new_state}")
            _OBS.event("serve.breaker.transition",
                       old=old_state, new=new_state)

    @property
    def degraded(self) -> bool:
        """Is the primary dispatch path short-circuited (breaker not
        closed — batches run inline on threads)?"""
        return (self.breaker is not None
                and self.breaker.state != BREAKER_CLOSED)

    def metrics(self) -> Dict[str, Any]:
        snapshot = self.stats.snapshot()
        snapshot["state"] = self.state
        snapshot["queue_depth"] = (self.batcher.queue_depth()
                                   if self.batcher is not None else 0)
        snapshot["inflight"] = (self.batcher.inflight_count()
                                if self.batcher is not None else 0)
        snapshot["store_keys"] = self.cache.store_keys
        snapshot["config"] = {
            "max_depth": self.config.max_depth,
            "batch_window": self.config.batch_window,
            "max_batch": self.config.max_batch,
            "workers": self.config.workers,
            "backend": self.config.backend,
            "trace": self.config.trace,
        }
        if self.coordinator is not None:
            cluster = self.coordinator.snapshot()
            cluster["listen"] = "%s:%d" % self.coordinator.address
            snapshot["cluster"] = cluster
        if self.breaker is not None:
            snapshot["breaker"] = self.breaker.snapshot()
            snapshot["degraded"] = self.degraded
        faults_snapshot = _faults.snapshot()
        if faults_snapshot is not None:
            snapshot["faults"] = faults_snapshot
        if self.tracer is not None:
            snapshot["trace"] = self.tracer.stats()
        return snapshot

    def prometheus_metrics(self) -> str:
        """The ``GET /metrics`` body: Prometheus text format 0.0.4."""
        snapshot = self.stats.snapshot()
        gauges = dict(snapshot["gauges"])
        gauges["queue.depth"] = (self.batcher.queue_depth()
                                 if self.batcher is not None else 0)
        gauges["inflight"] = (self.batcher.inflight_count()
                              if self.batcher is not None else 0)
        gauges["store.keys"] = self.cache.store_keys
        gauges["up"] = 1.0 if self.state == READY else 0.0
        histograms = {
            f"stage.{name}.seconds": snap
            for name, snap in snapshot["histograms"].items()
        }
        labeled = [
            ("state", {"state": state},
             1.0 if state == self.state else 0.0)
            for state in (STARTING, READY, DRAINING, STOPPED)
        ]
        if self.breaker is not None:
            breaker = self.breaker.snapshot()
            gauges["breaker.failure_rate"] = breaker["failure_rate"]
            gauges["breaker.short_circuited"] = \
                breaker["short_circuited"]
            gauges["degraded"] = 1.0 if self.degraded else 0.0
            labeled.extend(
                ("breaker.state", {"state": state},
                 1.0 if state == breaker["state"] else 0.0)
                for state in (BREAKER_CLOSED, BREAKER_OPEN,
                              BREAKER_HALF_OPEN)
            )
        return render_exposition(
            counters=snapshot["counters"],
            gauges=gauges,
            histograms=histograms,
            labeled_gauges=labeled,
        )

    # -- connections -------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.stats.incr("connections")
        try:
            raw = await reader.readline()
            if not raw:
                return
            first = raw.decode("utf-8", "replace").rstrip("\r\n")
            if first.split(" ", 1)[0] in ("GET", "HEAD", "POST"):
                await self._serve_http(first, reader, writer)
                return
            line: Optional[str] = first
            while True:
                if line:
                    self._pending_responses += 1
                    try:
                        response = await self._dispatch(line)
                        writer.write(encode_line(response))
                        await writer.drain()
                    finally:
                        self._pending_responses -= 1
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", "replace").strip()
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            self.stats.incr("connections.aborted")
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, line: str) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self.stats.incr("errors.protocol")
            return {"id": None, "status": STATUS_ERROR, "error": str(exc)}
        rid = request.get("id")
        op = request["op"]
        if op == "ping":
            return {"id": rid, "status": STATUS_OK, "op": "ping",
                    "state": self.state}
        if op == "metrics":
            return {"id": rid, "status": STATUS_OK, "op": "metrics",
                    "metrics": self.metrics()}
        self.stats.incr("requests.query")
        tracer = self.tracer
        ctx: Optional[TraceContext] = None
        request_ctx: Optional[TraceContext] = None
        request_hex: Optional[str] = None
        wall_started = 0.0
        if tracer is not None:
            # Accept the client's context (trace joins an existing
            # distributed trace, sampled flag included) or mint one
            # under the collector's head-sampling rate.  The request
            # span's id is minted up front so stage spans can parent
            # under it before it is emitted.
            header = request.get("traceparent")
            ctx = TraceContext.from_traceparent(header) if header else None
            if ctx is None:
                ctx = TraceContext.mint(sampled=tracer.sample())
            request_hex = mint_span_id()
            request_ctx = TraceContext(ctx.trace_id, request_hex,
                                       ctx.sampled)
            wall_started = _OBS._wall()
            tracer.begin(ctx, model=request["model"], id=rid)
        response: Dict[str, Any]
        if self.state != READY:
            self.stats.incr("shed.draining")
            response = {"id": rid, "status": STATUS_DRAINING,
                        "error": "server is draining; no new work admitted"}
        else:
            try:
                query = self.corpus.expand(
                    request["model"],
                    min(request["limit"], self.config.max_limit),
                )
            except KeyError:
                self.stats.incr("errors.request")
                query = None
                response = {"id": rid, "status": STATUS_ERROR,
                            "error": f"unknown model {request['model']!r}",
                            "models": self.corpus.keys()}
            if query is not None:
                assert self.batcher is not None
                response = await self.batcher.submit(
                    query, request["deadline_ms"], ctx=request_ctx)
                response["id"] = rid
        elapsed = loop.time() - started
        response["elapsed_ms"] = round(elapsed * 1000.0, 3)
        if response["status"] == STATUS_OK:
            self.stats.record_latency(elapsed)
        if tracer is not None and ctx is not None:
            status = response["status"]
            emit_span(_OBS, "serve.request", ctx, wall_started, elapsed,
                      span_hex=request_hex, parent_hex=ctx.span_id,
                      model=request["model"], status=status,
                      cached=bool(response.get("cached")),
                      coalesced=bool(response.get("coalesced")))
            record = tracer.finish(
                ctx.trace_id,
                status=status,
                elapsed_ms=response["elapsed_ms"],
                shed=status in SHED_STATUSES,
                witness=bool(response.get("findings")),
            )
            response["trace_id"] = ctx.trace_id
            if record is not None:
                self.stats.incr("trace.kept")
                if request.get("trace"):
                    response["trace"] = trace_timeline(record)
            else:
                self.stats.incr("trace.dropped")
        return response

    async def _serve_http(self, first_line: str,
                          reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """The two-endpoint HTTP façade (one request per connection)."""
        while True:  # consume headers
            raw = await reader.readline()
            if not raw or raw in (b"\r\n", b"\n"):
                break
        parts = first_line.split()
        path = parts[1] if len(parts) > 1 else "/"
        content_type = "application/json"
        payload: Optional[bytes] = None
        if path.startswith("/healthz"):
            ready = self.state == READY
            code, reason = (200, "OK") if ready else (503, "Unavailable")
            body: Dict[str, Any] = {"state": self.state, "ready": ready,
                                    "live": self.state != STOPPED,
                                    "degraded": self.degraded}
        elif path.startswith("/metrics.json") or "format=json" in path:
            # The structured snapshot (same payload as the line-JSON
            # `metrics` op) stays addressable for humans and tests.
            code, reason, body = 200, "OK", self.metrics()
        elif path.startswith("/metrics"):
            code, reason = 200, "OK"
            payload = self.prometheus_metrics().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            code, reason, body = 404, "Not Found", {"error": "not found"}
        if payload is None:
            payload = json.dumps(body).encode("utf-8")
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + payload)
        await writer.drain()
        self.stats.incr("http.requests")


class ServerThread:
    """An :class:`AnalysisServer` running on a daemon thread.

    The embedding used by tests and the benchmark: ``start()`` blocks
    until the server is ready (host/port resolved), ``shutdown()``
    drains it from any thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 corpus: Optional[AnalysisCorpus] = None) -> None:
        self.server = AnalysisServer(config, corpus=corpus)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-serve")
        self._error: Optional[BaseException] = None

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced by start()/join()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.serve_until_stopped()

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not become ready in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error!r}")
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain and join; idempotent."""
        if self._loop is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop)
            try:
                future.result(timeout)
            except Exception:
                pass
        self._thread.join(timeout)
