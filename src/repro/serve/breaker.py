"""A circuit breaker for the serve engine's cluster/pool dispatch path.

The serving layer's non-thread backends (``process``/``queue``/
``cluster``) dispatch micro-batches into machinery that can break in
correlated ways — a poisoned process pool, a coordinator whose workers
all died, a fabric mid-partition.  Retrying every batch into a broken
backend turns one failure into a latency storm.  The breaker is the
standard three-state answer::

    closed ──(failure rate ≥ threshold over the rolling window)──▶ open
    open ──(cooldown elapsed)──▶ half-open
    half-open ──(probe succeeds)──▶ closed
    half-open ──(probe fails)──▶ open          (cooldown restarts)

While the breaker is not closed the batcher short-circuits to the
inline thread path (same deterministic results, degraded throughput),
``/healthz`` reports ``degraded: true``, and ``metrics()["breaker"]``
plus the ``repro_serve_breaker_*`` Prometheus families expose the state
machine.  All clock reads go through an injectable ``clock`` so tests
drive the cooldown deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Optional

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Rolling-window failure breaker with half-open probing.

    Parameters
    ----------
    window:
        How many recent dispatch outcomes the failure rate is computed
        over.
    threshold:
        Failure fraction (``[0, 1]``) over the window that trips the
        breaker.
    min_calls:
        Outcomes required in the window before the rate is meaningful —
        one early failure must not trip an idle server.
    cooldown:
        Seconds the breaker stays open before letting probes through.
    half_open_probes:
        Concurrent trial dispatches allowed while half-open.
    clock:
        Monotonic time source (tests inject a fake).
    on_transition:
        ``fn(old_state, new_state)`` hook — the server wires it to
        ``ServeStats`` counters.
    """

    def __init__(self, *, window: int = 16, threshold: float = 0.5,
                 min_calls: int = 4, cooldown: float = 5.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[
                     Callable[[str, str], None]] = None) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.window = max(1, window)
        self.threshold = threshold
        self.min_calls = max(1, min_calls)
        self.cooldown = cooldown
        self.half_open_probes = max(1, half_open_probes)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: "deque[bool]" = deque(maxlen=self.window)
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._opened_total = 0
        self._short_circuited = 0

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.cooldown:
            self._transition_locked(HALF_OPEN)
        return self._state

    def _transition_locked(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
            self._opened_total += 1
        if new_state == HALF_OPEN:
            self._probes_inflight = 0
        if new_state == CLOSED:
            self._outcomes.clear()
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)

    def _failure_rate_locked(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) \
            / len(self._outcomes)

    # -- the dispatch contract --------------------------------------------

    def allow(self) -> bool:
        """May this dispatch take the primary path?

        Closed: always.  Open: no (until the cooldown flips the breaker
        to half-open).  Half-open: up to ``half_open_probes`` trial
        dispatches at a time; the rest short-circuit.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and \
                    self._probes_inflight < self.half_open_probes:
                self._probes_inflight += 1
                return True
            self._short_circuited += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                # One healthy probe closes the breaker (the window is
                # reset so stale failures cannot re-trip it instantly).
                self._transition_locked(CLOSED)
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._transition_locked(OPEN)
                return
            self._outcomes.append(False)
            if self._state == CLOSED \
                    and len(self._outcomes) >= self.min_calls \
                    and self._failure_rate_locked() >= self.threshold:
                self._transition_locked(OPEN)

    # -- observability -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            state = self._state_locked()
            return {
                "state": state,
                "failure_rate": round(self._failure_rate_locked(), 4),
                "window": len(self._outcomes),
                "window_max": self.window,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "opened_total": self._opened_total,
                "short_circuited": self._short_circuited,
                "cooldown_remaining": (
                    max(0.0, self.cooldown
                        - (self._clock() - self._opened_at))
                    if state == OPEN else 0.0),
            }
