"""repro.serve — the long-running, batched analysis service.

The ROADMAP's serving step: instead of paying pool spin-up, corpus
construction, and predicate evaluation per CLI invocation, a resident
asyncio server keeps the engine warm and answers "does model X have a
hidden path?" queries over a line-delimited JSON protocol, with a thin
HTTP façade for ``/healthz`` and ``/metrics``.

The pipeline, front to back:

* :mod:`~repro.serve.protocol` — the wire format and status contract
  (explicit ``overloaded``/``timeout``/``draining`` refusals, never
  unbounded waits);
* :mod:`~repro.serve.admission` — the bounded request queue with
  per-request deadlines (admission control);
* :mod:`~repro.serve.batcher` — single-flight coalescing by request
  fingerprint plus micro-batched, task-deduplicated dispatch to the
  engine (thread executor or the warm :mod:`repro.core.dist` pool);
* :mod:`~repro.serve.cache` — the tiered result cache: the scheduler's
  in-process fingerprint memo (warm) over an optional JSONL
  :class:`~repro.core.dist.ResultStore` (cold, shared with
  ``repro sweep --resume-from``);
* :mod:`~repro.serve.server` — lifecycle (starting → ready → draining
  → stopped), graceful SIGTERM drain, the HTTP façade, and the
  :class:`~repro.serve.server.ServerThread` embedding;
* :mod:`~repro.serve.client` — the small synchronous client the CLI,
  tests, and ``benchmarks/bench_serve.py`` drive the server with;
* :mod:`~repro.serve.stats` — always-on service counters/gauges and
  latency percentiles, mirrored to :mod:`repro.obs` as ``serve.*``.

CLI: ``repro serve`` runs the server; ``repro query`` is the client.
"""

from .admission import AdmissionQueue, AdmittedRequest
from .batcher import MicroBatcher
from .breaker import CircuitBreaker
from .cache import TieredResultCache
from .client import ServeClient, wait_until_ready
from .corpus import MODEL_KEYS, AnalysisCorpus, ExpandedQuery
from .protocol import (
    ProtocolError,
    SHED_STATUSES,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_TIMEOUT,
    decode_request,
    encode_line,
)
from .server import (
    DRAINING,
    READY,
    STARTING,
    STOPPED,
    AnalysisServer,
    ServeConfig,
    ServerThread,
)
from .stats import LatencyWindow, ServeStats, STAGES

__all__ = [
    "AdmissionQueue",
    "AdmittedRequest",
    "MicroBatcher",
    "CircuitBreaker",
    "TieredResultCache",
    "ServeClient",
    "wait_until_ready",
    "MODEL_KEYS",
    "AnalysisCorpus",
    "ExpandedQuery",
    "ProtocolError",
    "SHED_STATUSES",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_TIMEOUT",
    "STATUS_DRAINING",
    "STATUS_ERROR",
    "decode_request",
    "encode_line",
    "AnalysisServer",
    "ServeConfig",
    "ServerThread",
    "STARTING",
    "READY",
    "DRAINING",
    "STOPPED",
    "LatencyWindow",
    "ServeStats",
    "STAGES",
]
