"""The wire protocol: line-delimited JSON requests and responses.

One request per line, one response per line, strictly in order on each
connection (concurrency comes from opening more connections — that is
what lets the micro-batcher coalesce across clients).  Three operations:

``query``
    ``{"op": "query", "id": 1, "model": "sendmail", "limit": 5,
    "deadline_ms": 250}`` — hidden-path analysis of one bundled model.
    ``limit`` bounds witnesses per pFSM; ``deadline_ms`` (optional)
    bounds *queueing*: a request still waiting for dispatch past its
    deadline is shed with status ``timeout`` instead of waiting
    unboundedly.  Compute is never preempted mid-scan.  On a tracing
    server, an optional ``traceparent`` (W3C-style string) joins the
    request to an existing distributed trace, and ``trace: true`` asks
    for the reassembled stage timeline in the response (see
    :mod:`repro.obs.trace`).
``ping``
    Liveness + lifecycle state (``ready`` / ``draining`` / ...).
``metrics``
    The same counters/gauges snapshot the HTTP ``/metrics`` façade
    serves.

Every response carries ``id`` (echoed verbatim) and ``status``:

* ``ok`` — the query ran (or was served from cache/coalesced onto an
  identical in-flight request; see the ``cached``/``coalesced`` flags);
* ``overloaded`` — admission control refused the request (queue full);
* ``timeout`` — the request's deadline expired while queued;
* ``draining`` — the server is shutting down and no longer admits work;
* ``error`` — malformed request or unknown model.

The three shed statuses are deliberate *responses*: the contract is
explicit refusal over unbounded latency.  Witness values travel in the
tagged-JSON codec of :mod:`repro.core.predspec`; values outside the
codec degrade to ``{"__repr__": ...}`` so a response can always be
rendered.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..core.predspec import encode_value

__all__ = [
    "ProtocolError",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_TIMEOUT",
    "STATUS_DRAINING",
    "STATUS_ERROR",
    "SHED_STATUSES",
    "KNOWN_OPS",
    "MAX_LINE",
    "decode_request",
    "encode_line",
    "encode_witness",
    "finding_payload",
]

#: Hard per-line bound — a connection sending more is malformed.
MAX_LINE = 1 << 20

STATUS_OK = "ok"
STATUS_OVERLOADED = "overloaded"
STATUS_TIMEOUT = "timeout"
STATUS_DRAINING = "draining"
STATUS_ERROR = "error"

#: Statuses that mean "explicitly refused", not "failed".
SHED_STATUSES = frozenset(
    {STATUS_OVERLOADED, STATUS_TIMEOUT, STATUS_DRAINING}
)

KNOWN_OPS = ("query", "ping", "metrics")


class ProtocolError(ValueError):
    """A request line that cannot be parsed into a valid request."""


def decode_request(line: str) -> Dict[str, Any]:
    """Parse and validate one request line into a normalized dict.

    Returns ``{"op", "id", ...}`` with op-specific fields (``model``,
    ``limit``, ``deadline_ms`` for queries) type-checked and defaulted.
    Raises :class:`ProtocolError` with a client-renderable message
    otherwise.
    """
    try:
        obj = json.loads(line)
    except ValueError:
        raise ProtocolError("request is not valid JSON")
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op", "query")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(KNOWN_OPS)}"
        )
    request: Dict[str, Any] = {"op": op, "id": obj.get("id")}
    if op != "query":
        return request
    model = obj.get("model")
    if not isinstance(model, str) or not model:
        raise ProtocolError("query requires a non-empty string 'model'")
    limit = obj.get("limit", 5)
    if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
        raise ProtocolError("'limit' must be a non-negative integer")
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or \
                not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise ProtocolError("'deadline_ms' must be a positive number")
    traceparent = obj.get("traceparent")
    if traceparent is not None:
        if not isinstance(traceparent, str) or len(traceparent) > 128:
            raise ProtocolError(
                "'traceparent' must be a string of at most 128 characters")
    trace = obj.get("trace", False)
    if not isinstance(trace, bool):
        raise ProtocolError("'trace' must be a boolean")
    request.update(model=model, limit=limit, deadline_ms=deadline_ms,
                   traceparent=traceparent, trace=trace)
    return request


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One response (or request) as a newline-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":"), default=str)
            + "\n").encode("utf-8")


def encode_witness(value: Any) -> Any:
    """A witness in tagged JSON, degrading to ``{"__repr__": ...}`` for
    values outside the codec (the response must always render)."""
    try:
        return encode_value(value)
    except ValueError:
        return {"__repr__": repr(value)}


def finding_payload(finding: Any) -> Dict[str, Any]:
    """The response form of one :class:`~repro.core.sweep.SweepFinding`."""
    return {
        "operation": finding.operation_name,
        "pfsm": finding.pfsm_name,
        "activity": finding.activity,
        "witnesses": [encode_witness(w) for w in finding.witnesses],
    }
