"""The served corpus: query keys, task expansion, request fingerprints.

A query names a model by its short key (the same keys the CLI has
always used — ``sendmail``, ``nullhttpd``, ...).  This module owns that
key → label mapping and turns ``(key, limit)`` into the engine's sweep
task shape once, memoizing the expansion: the corpus is fixed for the
server's lifetime, so task tuples, per-task fingerprint keys
(:func:`repro.core.dist.task_key`) and the request-level fingerprint are
all computed on first use and reused for every later request.

The request fingerprint folds the model key, the witness limit, the
model's predicate *mutation stamp* (every pFSM predicate's
``cache_key`` — see :func:`repro.core.dist._model_stamp`), and every
task's :func:`~repro.core.serialize.sweep_task_fingerprint` into one
digest — it is the single-flight coalescing identity in
:mod:`repro.serve.batcher`: two requests with the same fingerprint are
provably the same computation.  The expansion memo is validated against
the same stamp, so a model mutated in place (``Predicate.rebind``)
re-expands on the next request instead of serving the stale task keys —
and therefore stale cached findings — forever.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core import dist
from ..core.predspec import spec_digest

__all__ = ["MODEL_KEYS", "ExpandedQuery", "AnalysisCorpus"]

#: Short CLI/service keys for the modeled vulnerabilities (the paper's
#: seven Table 2 rows plus the additional named cases).
MODEL_KEYS: Dict[str, str] = {
    "sendmail": "Sendmail Signed Integer Overflow",
    "nullhttpd": "NULL HTTPD Heap Overflow",
    "rwall": "Rwall File Corruption",
    "iis": "IIS Filename Decoding Vulnerability",
    "xterm": "Xterm File Race Condition",
    "ghttpd": "GHTTPD Buffer Overflow on Stack",
    "rpc_statd": "rpc.statd Format String Vulnerability",
    "freebsd": "FreeBSD Signed Integer Buffer Overflow",
    "rsync": "rsync Signed Array Index",
    "wuftpd": "wu-ftpd SITE EXEC Format String",
    "icecast": "icecast print_client() Format String",
    "splitvt": "splitvt Format String Vulnerability",
    "pathhijack": "Setuid Utility PATH Hijack",
}


@dataclass(frozen=True)
class ExpandedQuery:
    """One model query lowered to engine terms, ready to dispatch."""

    model_key: str
    model_name: str
    limit: int
    #: ``(model_name, operation_name, pfsm, domain, limit)`` tuples.
    tasks: Tuple[Any, ...]
    #: Per-task fingerprint keys (``None`` = no stable identity).
    task_keys: Tuple[Optional[str], ...]
    #: The request-level single-flight / cache identity.
    fingerprint: str = field(compare=False)


def _stamp_term(stamp: Any) -> Any:
    """JSON-safe form of a model mutation stamp for digesting (``""``
    when the stamp could not be computed)."""
    if stamp is None:
        return ""
    return [[list(spec_key), list(impl_key) if impl_key else None]
            for spec_key, impl_key in stamp]


class AnalysisCorpus:
    """The fixed model/domain set one server instance answers over."""

    def __init__(
        self,
        models: Optional[Dict[str, Any]] = None,
        domains: Optional[Dict[str, Any]] = None,
        keys: Optional[Dict[str, str]] = None,
    ) -> None:
        if models is None or domains is None:
            from ..models import (
                all_extended_models,
                all_extended_pfsm_domains,
            )

            models = all_extended_models() if models is None else models
            domains = (all_extended_pfsm_domains() if domains is None
                       else domains)
        self._models = models
        self._domains = domains
        self._keys = dict(keys if keys is not None else MODEL_KEYS)
        #: ``(key, limit) -> (mutation stamp, expansion)`` — the stamp
        #: guards against serving a stale expansion of a mutated model.
        self._expanded: Dict[Tuple[str, int],
                             Tuple[Any, ExpandedQuery]] = {}
        self._lock = threading.Lock()

    def keys(self) -> List[str]:
        """Every servable model key, in registration order."""
        return list(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def expand(self, key: str, limit: int) -> ExpandedQuery:
        """The memoized task expansion of ``(key, limit)``, validated
        against the model's predicate mutation stamp (a rebound check
        re-expands instead of serving stale task keys).

        Raises :class:`KeyError` for unknown model keys.
        """
        label = self._keys.get(key)
        if label is None:
            raise KeyError(key)
        model = self._models[label]
        stamp = dist._model_stamp(model)
        memo_key = (key, limit)
        with self._lock:
            cached = self._expanded.get(memo_key)
        if cached is not None and stamp is not None and cached[0] == stamp:
            return cached[1]
        model_domains = self._domains.get(label, {})
        tasks: List[Any] = []
        task_keys: List[Optional[str]] = []
        for operation, pfsm in model.all_pfsms():
            domain = model_domains.get(pfsm.name)
            if domain is None:
                continue
            task = (model.name, operation.name, pfsm, domain, limit)
            tasks.append(task)
            task_keys.append(dist.task_key(model, task))
        fingerprint = spec_digest(
            ["serve.query", key, limit, _stamp_term(stamp),
             [k if k is not None else "" for k in task_keys]]
        )
        expanded = ExpandedQuery(
            model_key=key,
            model_name=model.name,
            limit=limit,
            tasks=tuple(tasks),
            task_keys=tuple(task_keys),
            fingerprint=fingerprint,
        )
        with self._lock:
            self._expanded[memo_key] = (stamp, expanded)
        return expanded

    def invalidate(self, key: str) -> int:
        """Drop every memoized expansion of model ``key``; returns how
        many ``(key, limit)`` entries were evicted.  The stamp check in
        :meth:`expand` makes this automatic for in-place predicate
        mutations; this hook covers wholesale model replacement."""
        with self._lock:
            stale = [memo_key for memo_key in self._expanded
                     if memo_key[0] == key]
            for memo_key in stale:
                del self._expanded[memo_key]
        return len(stale)
