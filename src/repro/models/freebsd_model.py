"""FreeBSD #5493 (Table 1, row 2) as a pFSM model.

One operation, two pFSMs — the boundary-condition anchoring the Table 1
analyst used lives in pFSM2:

* pFSM1 (Object Type Check): the supplied length must be interpretable
  as a small non-negative count, not a sign-flipped huge ``size_t``.
* pFSM2 (Content and Attribute Check): ``0 <= len <= MAX_REQUEST``; the
  implementation checks only ``len <= MAX_REQUEST``, so negative
  lengths flow into the unsigned copy and cross into the credential
  word.
"""

from __future__ import annotations

from typing import Dict

from ..apps.freebsd_syscall import MAX_REQUEST
from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    in_range,
    less_equal,
    named_predicate,
)

__all__ = ["build_model", "exploit_input", "benign_input", "pfsm_domains",
           "operation_domains"]

OPERATION = "Copy the user request into the kernel buffer"

#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_non_wrapping = attr(
    "length",
    named_predicate("non_wrapping_length",
                    lambda n: 0 <= n < 2**31,
                    "length reads the same as signed and as size_t"),
)


def build_model(patched: bool = False) -> VulnerabilityModel:
    """The #5493 model; ``patched`` installs the two-sided bound."""
    spec_bound = attr("length", in_range(0, MAX_REQUEST))
    impl_bound = spec_bound if patched else attr(
        "length", less_equal(MAX_REQUEST)
    )
    return (
        ModelBuilder(
            "FreeBSD System Call Signed Integer Buffer Overflow",
            bugtraq_ids=[5493],
            final_consequence="adjacent kernel state (ucred) overwritten",
        )
        .operation(OPERATION, obj="the length argument")
        .pfsm(
            "pFSM1",
            activity="receive the length argument from user space",
            object_name="length",
            spec=_non_wrapping,
            impl=None,
            check_type=PfsmType.OBJECT_TYPE,
        )
        .pfsm(
            "pFSM2",
            activity="bound the copy by the buffer size",
            object_name="length",
            spec=spec_bound,
            impl=impl_bound,
            action="copyin(data, length as size_t)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .build()
    )


def exploit_input() -> Dict[str, int]:
    """A negative length: passes the signed check, wraps unsigned."""
    return {"length": -1}


def benign_input() -> Dict[str, int]:
    """A well-formed request."""
    return {"length": 32}


def pfsm_domains() -> Dict[str, Domain]:
    """Boundary probes around 0, MAX_REQUEST, and the sign edges."""
    lengths = Domain.of(-(2**31), -800, -1, 0, 1, 32, MAX_REQUEST,
                        MAX_REQUEST + 1, 2**31 - 1).map(
        lambda n: {"length": n}, description="length records"
    )
    return {"pFSM1": lengths, "pFSM2": lengths}


def operation_domains() -> Dict[str, Domain]:
    """Input domain for the single operation."""
    return {OPERATION: pfsm_domains()["pFSM1"]}
