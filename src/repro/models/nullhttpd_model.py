"""Figure 4: the NULL HTTPD heap overflow as a three-operation,
four-pFSM cascade.

Operation 1 — *Read postdata from socket to PostData* (object: the
request):

* pFSM1 (Content and Attribute Check): ``contentLen >= 0``.  Version
  0.5 performs no check (the known #5774); 0.5.1 installs it.
* pFSM2 (Content and Attribute Check): ``length(input) <=
  size(PostData)``.  *Neither* 0.5 nor 0.5.1 enforces this — the recv
  loop's ``||``-for-``&&`` bug (#6255, the paper's discovery).  The
  fixed loop makes the implementation match the spec.

Propagation gate — an overflow reaches the free chunk B after PostData:
``B->fd`` and ``B->bk`` now hold attacker values.

Operation 2 — *Allocate and free the buffer PostData* (object: the
free-chunk links):

* pFSM3 (Reference Consistency Check): free-chunk links unchanged.
  GNU libc 2003 performs no check, so ``free(PostData)`` executes
  ``B->fd->bk = B->bk`` with attacker operands.

Propagation gate — the unlink write lands on the GOT entry of
``free()``.

Operation 3 — *Manipulate the GOT entry of free* (object:
``addr_free``):

* pFSM4 (Reference Consistency Check): ``addr_free`` unchanged since
  load; no implementation check, so the next ``free()`` call executes
  Mcode.
"""

from __future__ import annotations

from typing import Dict

from ..apps.nullhttpd import NullHttpdVariant
from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    greater_equal,
    named_predicate,
    truthy,
)
from ..memory import Int32

__all__ = [
    "build_model",
    "exploit_input_5774",
    "exploit_input_6255",
    "benign_input",
    "pfsm_domains",
    "operation_domains",
]

OPERATION_1 = "Read postdata from socket to PostData"
OPERATION_2 = "Allocate and free the buffer PostData"
OPERATION_3 = "Manipulate the GOT entry of free"

#: The constant slack the server adds to contentLen (source line 1).
SLACK = 1024


def _buffer_size(content_len: int) -> int:
    """The size calloc actually receives (32-bit signed arithmetic)."""
    return (Int32(content_len) + SLACK).value


#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_fits_buffer = named_predicate(
    "fits_buffer",
    lambda obj: obj["input_len"] <= _buffer_size(obj["content_len"]),
    "length(input) <= size(PostData)",
)


def _carry_links(result) -> Dict[str, bool]:
    """Gate 1: copying past the buffer overwrites B->fd/B->bk."""
    obj = result.final_object
    overflowed = obj["input_len"] > _buffer_size(obj["content_len"])
    return {"links_unchanged": not overflowed}


def _carry_addr_free(result) -> Dict[str, bool]:
    """Gate 2: the unlink of corrupted links rewrites addr_free."""
    return {"addr_free_unchanged": result.final_object["links_unchanged"]}


def build_model(
    variant: NullHttpdVariant = NullHttpdVariant.V0_5,
    safe_unlink: bool = False,
    check_got: bool = False,
) -> VulnerabilityModel:
    """The Figure 4 model for a given server variant.

    ``safe_unlink`` gives pFSM3 a correct implementation (the hardened
    allocator); ``check_got`` does the same for pFSM4.
    """
    spec_len = attr("content_len", greater_equal(0)).renamed("contentLen >= 0")
    if variant is NullHttpdVariant.V0_5:
        impl_len = None  # 0.5 never checks contentLen
    else:
        impl_len = spec_len
    if variant is NullHttpdVariant.FIXED:
        impl_fit = _fits_buffer  # && loop: copy never exceeds the buffer
    else:
        impl_fit = None  # || loop: everything gets copied (#6255)

    links_spec = attr(
        "links_unchanged", truthy("B->fd and B->bk unchanged")
    )
    addr_free_spec = attr(
        "addr_free_unchanged", truthy("addr_free unchanged since load")
    )
    return (
        ModelBuilder(
            "NULL HTTPD Heap Overflow",
            bugtraq_ids=[5774, 6255],
            final_consequence="Mcode is executed",
        )
        .operation(OPERATION_1, obj="the POST request")
        .pfsm(
            "pFSM1",
            activity="read contentLen; calloc PostData[1024+contentLen]",
            object_name="contentLen",
            spec=spec_len,
            impl=impl_len,
            action="calloc PostData[1024+contentLen]",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .pfsm(
            "pFSM2",
            activity="read from the socket into PostData",
            object_name="input",
            spec=_fits_buffer,
            impl=impl_fit,
            action="copy input to PostData",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate(
            "B->fd = &addr_free - (offset of field bk); B->bk = Mcode",
            carry=_carry_links,
        )
        .operation(OPERATION_2, obj="the free-chunk links of B")
        .pfsm(
            "pFSM3",
            activity="free(PostData): consolidate and unlink chunk B",
            object_name="B->fd, B->bk",
            spec=links_spec,
            impl=links_spec if safe_unlink else None,
            action="execute B->fd->bk = B->bk",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .gate(
            ".GOT entry of function free points to Mcode",
            carry=_carry_addr_free,
        )
        .operation(OPERATION_3, obj="addr_free")
        .pfsm(
            "pFSM4",
            activity="execute addr_free when function free is called",
            object_name="addr_free",
            spec=addr_free_spec,
            impl=addr_free_spec if check_got else None,
            action="call the function referred by addr_free",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input_5774() -> Dict[str, int]:
    """The known exploit: negative contentLen shrinks the buffer to 224
    bytes while at least 1024 bytes arrive."""
    return {"content_len": -800, "input_len": 1024}


def exploit_input_6255() -> Dict[str, int]:
    """The discovered exploit: correct contentLen, over-long body; the
    ``||`` loop copies past the buffer."""
    return {"content_len": 100, "input_len": 2048}


def benign_input() -> Dict[str, int]:
    """A well-formed POST."""
    return {"content_len": 300, "input_len": 300}


def pfsm_domains() -> Dict[str, Domain]:
    """Candidate-object domains per pFSM."""
    requests = Domain.records(
        content_len=Domain.of(-800, -1, 0, 100, 300, 4096),
        input_len=Domain.of(0, 100, 224, 240, 1024, 1140, 2048),
    )
    links = Domain.of({"links_unchanged": True}, {"links_unchanged": False})
    got = Domain.of({"addr_free_unchanged": True}, {"addr_free_unchanged": False})
    return {"pFSM1": requests, "pFSM2": requests, "pFSM3": links, "pFSM4": got}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {
        OPERATION_1: domains["pFSM1"],
        OPERATION_2: domains["pFSM3"],
        OPERATION_3: domains["pFSM4"],
    }
