"""Figure 8 and Table 2: the three generic pFSM types and the
classification grid over every studied vulnerability.

Section 6 asks: "Are there a few pFSMs which allow us to model the bulk
if not all of the studied data?" and answers with three — Object Type
Check, Content and Attribute Check, Reference Consistency Check.  This
module provides:

* constructors for the three generic pFSM shapes (:func:`object_type_check`,
  :func:`content_attribute_check`, :func:`reference_consistency_check`);
* :func:`generic_operation` — the Figure 8 "typical operation P"
  encompassing all three predicates;
* :func:`table2_grid` — the reproduction of Table 2: every pFSM of
  every prebuilt model, classified by its generic type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import (
    Operation,
    PfsmType,
    Predicate,
    PrimitiveFSM,
    VulnerabilityModel,
)

__all__ = [
    "object_type_check",
    "content_attribute_check",
    "reference_consistency_check",
    "generic_operation",
    "Table2Cell",
    "table2_grid",
    "TABLE2_EXPECTED",
]


def object_type_check(
    name: str,
    object_name: str,
    is_expected_type: Predicate,
    impl: Optional[Predicate] = None,
    activity: str = "",
) -> PrimitiveFSM:
    """An OBJECT TYPE CHECK pFSM (left of Figure 8): is the input object
    of the type the operation is defined on?"""
    return PrimitiveFSM(
        name=name,
        activity=activity or f"verify the type of {object_name}",
        object_name=object_name,
        spec_accepts=is_expected_type,
        impl_accepts=impl,
        check_type=PfsmType.OBJECT_TYPE,
    )


def content_attribute_check(
    name: str,
    object_name: str,
    meets_guarantee: Predicate,
    impl: Optional[Predicate] = None,
    activity: str = "",
) -> PrimitiveFSM:
    """A CONTENT/ATTRIBUTE CHECK pFSM (middle of Figure 8): do the
    content and attributes of the object meet the security guarantee?"""
    return PrimitiveFSM(
        name=name,
        activity=activity or f"verify content/attributes of {object_name}",
        object_name=object_name,
        spec_accepts=meets_guarantee,
        impl_accepts=impl,
        check_type=PfsmType.CONTENT_ATTRIBUTE,
    )


def reference_consistency_check(
    name: str,
    object_name: str,
    binding_preserved: Predicate,
    impl: Optional[Predicate] = None,
    activity: str = "",
) -> PrimitiveFSM:
    """A REFERENCE CONSISTENCY CHECK pFSM (right of Figure 8): is the
    binding between the object and its reference preserved from check
    time to use time?"""
    return PrimitiveFSM(
        name=name,
        activity=activity or f"verify the reference binding of {object_name}",
        object_name=object_name,
        spec_accepts=binding_preserved,
        impl_accepts=impl,
        check_type=PfsmType.REFERENCE_CONSISTENCY,
    )


def generic_operation(
    type_pred: Predicate,
    content_pred: Predicate,
    consistency_pred: Predicate,
    secure: bool = True,
    name: str = "Operation P",
) -> Operation:
    """The Figure 8 "typical operation P" encompassing all three generic
    predicates, in check order.  ``secure=False`` drops every
    implementation check (all three hidden paths open)."""
    impl = (lambda p: p) if secure else (lambda _p: None)
    return Operation(
        name,
        "the object of operation P",
        [
            object_type_check("TYPE", "object", type_pred, impl(type_pred)),
            content_attribute_check(
                "CONTENT", "object", content_pred, impl(content_pred)
            ),
            reference_consistency_check(
                "CONSISTENCY", "object", consistency_pred,
                impl(consistency_pred),
            ),
        ],
    )


@dataclass(frozen=True)
class Table2Cell:
    """One cell of the Table 2 grid: a pFSM of a studied vulnerability,
    with its generic type and the question it asks."""

    vulnerability: str
    pfsm_name: str
    check_type: PfsmType
    question: str


#: The expected Table 2 layout, straight from the paper: vulnerability →
#: {pFSM name → generic type}.
TABLE2_EXPECTED: Dict[str, Dict[str, PfsmType]] = {
    "Sendmail Signed Integer Overflow": {
        "pFSM1": PfsmType.OBJECT_TYPE,
        "pFSM2": PfsmType.CONTENT_ATTRIBUTE,
        "pFSM3": PfsmType.REFERENCE_CONSISTENCY,
    },
    "NULL HTTPD Heap Overflow": {
        "pFSM1": PfsmType.CONTENT_ATTRIBUTE,
        "pFSM2": PfsmType.CONTENT_ATTRIBUTE,
        "pFSM3": PfsmType.REFERENCE_CONSISTENCY,
        "pFSM4": PfsmType.REFERENCE_CONSISTENCY,
    },
    "Rwall File Corruption": {
        "pFSM1": PfsmType.CONTENT_ATTRIBUTE,
        "pFSM2": PfsmType.OBJECT_TYPE,
    },
    "IIS Filename Decoding Vulnerability": {
        "pFSM1": PfsmType.CONTENT_ATTRIBUTE,
    },
    "Xterm File Race Condition": {
        "pFSM1": PfsmType.CONTENT_ATTRIBUTE,
        "pFSM2": PfsmType.REFERENCE_CONSISTENCY,
    },
    "GHTTPD Buffer Overflow on Stack": {
        "pFSM1": PfsmType.CONTENT_ATTRIBUTE,
        "pFSM2": PfsmType.REFERENCE_CONSISTENCY,
    },
    "rpc.statd Format String Vulnerability": {
        "pFSM1": PfsmType.CONTENT_ATTRIBUTE,
        "pFSM2": PfsmType.REFERENCE_CONSISTENCY,
    },
}


def table2_grid(
    models: Dict[str, VulnerabilityModel]
) -> List[Table2Cell]:
    """Classify every pFSM of the given models by its generic type.

    ``models`` maps the Table 2 row label to the built model; the cells
    come from the models' own ``check_type`` annotations, so the grid is
    derived, not hard-coded.
    """
    cells: List[Table2Cell] = []
    for label, model in models.items():
        for _operation, pfsm in model.all_pfsms():
            if pfsm.check_type is None:
                continue
            cells.append(
                Table2Cell(
                    vulnerability=label,
                    pfsm_name=pfsm.name,
                    check_type=pfsm.check_type,
                    question=pfsm.spec_accepts.description,
                )
            )
    return cells
