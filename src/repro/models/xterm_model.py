"""Figure 5: the xterm log-file race condition as two pFSMs.

Object: the log-file reference ``/usr/tom/x`` at the moment xterm logs
for user Tom.

* pFSM1 (Content and Attribute Check): Tom must have write permission
  to the file, and the file must not (already) be a symbolic link to
  something else.  The paper notes this check is *secure* — "the reject
  condition of the predicate matches the implementation" — so pFSM1's
  implementation equals its spec.
* pFSM2 (Reference Consistency Check): the binding between the checked
  path and the opened file must persist until the open completes; Tom
  must not be able to interpose a symlink in the window.  The
  implementation performs no such check — the hidden path is the race.

The executable counterpart (interleaving enumeration over a real
simulated filesystem) lives in :mod:`repro.apps.xterm`; this model is
the figure's predicate-level abstraction, with the window condition as
an object attribute.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    named_predicate,
)

__all__ = [
    "build_model",
    "exploit_input",
    "benign_input",
    "pfsm_domains",
    "operation_domains",
]

OPERATION = "Writing the log file of user Tom"

#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_permission_ok = named_predicate(
    "permission_ok",
    lambda obj: obj["has_write_permission"] and not obj["is_symlink_at_check"],
    "Tom has write permission and the file is not a symbolic link",
)

_binding_preserved = attr(
    "symlink_created_in_window",
    named_predicate("no_symlink_in_window",
                    lambda created: not created,
                    "no symlink interposed before the open completes"),
).renamed("the filename still refers to the checked file")


def build_model(recheck: bool = False) -> VulnerabilityModel:
    """The Figure 5 model.

    ``recheck`` installs pFSM2's specification as its implementation —
    the no-follow / re-verify fix.
    """
    return (
        ModelBuilder(
            "xterm Log File Race Condition",
            final_consequence="Tom appends his own data to /etc/passwd",
        )
        .operation(OPERATION, obj="the log file /usr/tom/x")
        .pfsm(
            "pFSM1",
            activity="get the filename of Tom's log file; check permission",
            object_name="/usr/tom/x",
            spec=_permission_ok,
            impl=_permission_ok,  # secure: implementation matches spec
            action="proceed to open the log file",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .pfsm(
            "pFSM2",
            activity="open /usr/tom/x with write permission",
            object_name="the file reference",
            spec=_binding_preserved,
            impl=_binding_preserved if recheck else None,
            action="write Tom's messages through the opened handle",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, bool]:
    """Tom's race: legitimate permissions, symlink swapped in the
    check-to-open window."""
    return {
        "has_write_permission": True,
        "is_symlink_at_check": False,
        "symlink_created_in_window": True,
    }


def benign_input() -> Dict[str, bool]:
    """An ordinary logging call."""
    return {
        "has_write_permission": True,
        "is_symlink_at_check": False,
        "symlink_created_in_window": False,
    }


def pfsm_domains() -> Dict[str, Domain]:
    """All eight boolean combinations, for both pFSMs."""
    states = Domain(
        [
            {
                "has_write_permission": permission,
                "is_symlink_at_check": symlink,
                "symlink_created_in_window": window,
            }
            for permission in (True, False)
            for symlink in (True, False)
            for window in (True, False)
        ],
        description="log-file reference states",
    )
    return {"pFSM1": states, "pFSM2": states}


def operation_domains() -> Dict[str, Domain]:
    """Input domain for the single operation."""
    return {OPERATION: pfsm_domains()["pFSM1"]}
