"""GHTTPD Log() stack buffer overflow (#5960) — the stack-smash model
of the paper's extended report [21], summarised in Table 2.

Operation 1 — *Log the request line* (object: the request message):

* pFSM1 (Content and Attribute Check): ``size(message) <= 200`` (the
  buffer's capacity).  The implementation performs no length check.

Propagation gate — an over-long message walks up the frame and replaces
the saved return address.

Operation 2 — *Return from Log()* (object: the return address):

* pFSM2 (Reference Consistency Check): the return address must be
  unchanged; the bare 2002 build performs no check (StackGuard or a
  split stack would provide the IMPL_REJ arm).
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    length_le,
    truthy,
)

__all__ = [
    "build_model",
    "exploit_input",
    "benign_input",
    "pfsm_domains",
    "operation_domains",
    "LOG_BUFFER_SIZE",
]

LOG_BUFFER_SIZE = 200

OPERATION_1 = "Log the request line into temp[200]"
OPERATION_2 = "Return from Log()"

_fits = attr("message", length_le(LOG_BUFFER_SIZE)).renamed(
    "size(message) <= 200"
)

_return_intact = attr(
    "return_address_unchanged",
    truthy("the return address is unchanged"),
)


def _carry_return_state(result) -> Dict[str, bool]:
    """Gate: an overflowing copy reaches the return-address slot."""
    message = result.final_object["message"]
    return {"return_address_unchanged": len(message) <= LOG_BUFFER_SIZE}


def build_model(
    length_check: bool = False, return_protection: bool = False
) -> VulnerabilityModel:
    """The #5960 model; either elementary activity can be given its
    correct implementation."""
    return (
        ModelBuilder(
            "GHTTPD Log() Function Buffer Overflow",
            bugtraq_ids=[5960],
            final_consequence="control transfers to the injected code",
        )
        .operation(OPERATION_1, obj="the request message")
        .pfsm(
            "pFSM1",
            activity="copy the request line into the 200-byte buffer",
            object_name="message",
            spec=_fits,
            impl=_fits if length_check else None,
            action="strcpy(temp, message)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate(
            "the saved return address now holds an attacker word",
            carry=_carry_return_state,
        )
        .operation(OPERATION_2, obj="the return address")
        .pfsm(
            "pFSM2",
            activity="return through the saved return address",
            object_name="return address",
            spec=_return_intact,
            impl=_return_intact if return_protection else None,
            action="ret",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, bytes]:
    """An over-long request line."""
    return {"message": b"GET /" + b"A" * 300 + b" HTTP/1.0"}


def benign_input() -> Dict[str, bytes]:
    """An ordinary request line."""
    return {"message": b"GET /index.html HTTP/1.0"}


def pfsm_domains() -> Dict[str, Domain]:
    """Message-length probes around the 200-byte boundary."""
    messages = Domain.byte_strings([0, 1, 100, 199, 200, 201, 240, 512]).map(
        lambda m: {"message": m}, description="request messages"
    )
    states = Domain.of(
        {"return_address_unchanged": True},
        {"return_address_unchanged": False},
    )
    return {"pFSM1": messages, "pFSM2": states}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {OPERATION_1: domains["pFSM1"], OPERATION_2: domains["pFSM2"]}
