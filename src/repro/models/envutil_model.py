"""The PATH-hijack environment error as a pFSM model — covering Figure
1's Environment Error category beyond the five studied classes.

* Operation 1, pFSM1 (Content and Attribute Check): the environment's
  ``PATH`` must contain only trusted system directories before a
  privileged spawn; the vulnerable utility inherits it unchecked.
* Gate: an attacker-controlled PATH entry shadows the helper binary.
* Operation 2, pFSM2 (Reference Consistency Check): the binding between
  the helper's *name* ("date") and the *binary the loader resolved*
  must be the intended system binary; the bare implementation executes
  whatever resolution produced.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    named_predicate,
    truthy,
)
from ..osmodel.environment import TRUSTED_PATH

__all__ = ["build_model", "exploit_input", "benign_input", "pfsm_domains",
           "operation_domains"]

OPERATION_1 = "Inherit the caller's environment for the privileged spawn"
OPERATION_2 = "Execute the resolved helper binary as root"

#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_trusted_path = attr(
    "path_entries",
    named_predicate(
        "trusted_path_entries",
        lambda entries: all(entry in TRUSTED_PATH for entry in entries),
        "every PATH entry is a trusted system directory",
    ),
)

_intended_binary = attr(
    "resolved_is_intended",
    truthy("the resolved binary is the intended system binary"),
)


def _carry_resolution(result) -> Dict[str, bool]:
    """Gate: an untrusted leading PATH entry shadows the helper."""
    entries = result.final_object["path_entries"]
    shadowed = any(entry not in TRUSTED_PATH for entry in entries)
    return {"resolved_is_intended": not shadowed}


def build_model(sanitize_path: bool = False, verify_binary: bool = False
                ) -> VulnerabilityModel:
    """The environment-error model with the two standard fixes."""
    return (
        ModelBuilder(
            "Setuid Utility PATH Hijack (Environment Error)",
            final_consequence="the attacker's binary runs with uid 0",
        )
        .operation(OPERATION_1, obj="the caller's environment")
        .pfsm(
            "pFSM1",
            activity="accept the ambient PATH for command resolution",
            object_name="PATH",
            spec=_trusted_path,
            impl=_trusted_path if sanitize_path else None,
            action="resolve 'date' through PATH",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate("an attacker directory shadows the system binary",
              carry=_carry_resolution)
        .operation(OPERATION_2, obj="the resolved binary")
        .pfsm(
            "pFSM2",
            activity="execute the resolved binary with root privilege",
            object_name="the helper binary",
            spec=_intended_binary,
            impl=_intended_binary if verify_binary else None,
            action="system('date')",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, tuple]:
    """A PATH with the attacker's directory first."""
    return {"path_entries": ("/tmp/evil", "/bin", "/usr/bin")}


def benign_input() -> Dict[str, tuple]:
    """The standard trusted PATH."""
    return {"path_entries": ("/bin", "/usr/bin")}


def pfsm_domains() -> Dict[str, Domain]:
    """PATH shapes plus resolution states."""
    paths = Domain.of(
        ("/bin", "/usr/bin"),
        ("/bin",),
        ("/tmp/evil", "/bin"),
        ("/home/mallory/bin", "/usr/bin"),
        (".", "/bin"),
    ).map(lambda entries: {"path_entries": entries},
          description="PATH layouts")
    states = Domain.of({"resolved_is_intended": True},
                       {"resolved_is_intended": False})
    return {"pFSM1": paths, "pFSM2": states}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {OPERATION_1: domains["pFSM1"], OPERATION_2: domains["pFSM2"]}
