"""Figure 3: the Sendmail Debugging Function Signed Integer Overflow
(#3163) as a two-operation, three-pFSM cascade.

Operation 1 — *Write debug level i to tTvect[x]* (object: the input
integer):

* pFSM1 (Object Type Check): the strings ``str_x``/``str_i`` must
  represent 32-bit integers; anything beyond 2³¹ must be rejected.  The
  implementation performs no check (IMPL_REJ marked ``?`` in the
  figure), and the accepted strings are converted by ``atoi`` — where
  oversized values wrap.
* pFSM2 (Content and Attribute Check): the index must satisfy
  ``0 <= x <= 100``; the implementation checks only ``x <= 100``, so
  negative indexes ride the hidden path into ``tTvect[x] = i``.

Propagation gate — a negative ``x`` reaching the write primitive lets
the attacker aim ``tTvect + x`` at the GOT entry of ``setuid()``.

Operation 2 — *Manipulate the GOT entry of setuid* (object:
``addr_setuid``):

* pFSM3 (Reference Consistency Check): ``addr_setuid`` must be
  unchanged since program initialisation; Sendmail performs no such
  check (``IMPL_ACPT = -♦-``), so the call jumps to Mcode.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    in_range,
    less_equal,
    named_predicate,
    truthy,
)
from ..memory import Int32, atoi

__all__ = [
    "build_model",
    "exploit_input",
    "wrapping_exploit_input",
    "benign_input",
    "pfsm_domains",
    "operation_domains",
]

#: The array bound in tTflag().
TTVECT_BOUND = 100

OPERATION_1 = "Write debug level i to tTvect[x]"
OPERATION_2 = "Manipulate the GOT entry of setuid"


def _fits_int32(text: str) -> bool:
    try:
        return Int32.in_range(int(text))
    except (TypeError, ValueError):
        return False


#: pFSM1's specification: both strings represent 32-bit integers.
#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_represents_int32 = named_predicate(
    "represents_int32",
    lambda obj: _fits_int32(obj["str_x"]) and _fits_int32(obj["str_i"]),
    "str_x and str_i represent 32-bit integers (|value| < 2^31)",
)


def _convert(obj: Dict[str, str]) -> Dict[str, int]:
    """Activity 1's action: convert str_i and str_x to integers i and x
    (with atoi's wrapping, as in the original)."""
    return {"x": atoi(obj["str_x"]).value, "i": atoi(obj["str_i"]).value}


def _carry_addr_setuid(result) -> Dict[str, bool]:
    """The gate: a hidden-path write with negative x lands on
    addr_setuid, leaving it changed."""
    x = result.final_object["x"]
    return {"addr_setuid_unchanged": not x < 0}


def build_model(patched: bool = False, got_check: bool = False
                ) -> VulnerabilityModel:
    """The Figure 3 model.

    ``patched`` installs the derived predicate (``0 <= x <= 100``) as
    pFSM2's implementation — the Observation 3 fix.  ``got_check``
    installs pFSM3's consistency check instead (the GUARDED application
    variant): the later elementary activity also foils.
    """
    if patched:
        impl_index = attr("x", in_range(0, TTVECT_BOUND))
    else:
        impl_index = attr("x", less_equal(TTVECT_BOUND))
    return (
        ModelBuilder(
            "Sendmail Debugging Function Signed Integer Overflow",
            bugtraq_ids=[3163],
            final_consequence="Execute Mcode",
        )
        .operation(OPERATION_1, obj="the input integer")
        .pfsm(
            "pFSM1",
            activity="get text strings str_x and str_i; convert to integers",
            object_name="str_x, str_i",
            spec=_represents_int32,
            impl=None,  # no check: the ? transition of the figure
            action="convert str_i and str_x to integer i and x",
            transform=_convert,
            check_type=PfsmType.OBJECT_TYPE,
        )
        .pfsm(
            "pFSM2",
            activity="write i to tTvect[x]",
            object_name="x",
            spec=attr("x", in_range(0, TTVECT_BOUND)),
            impl=impl_index,
            action="tTvect[x] = i",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate(
            ".GOT entry of function setuid (addr_setuid) points to Mcode",
            carry=_carry_addr_setuid,
        )
        .operation(OPERATION_2, obj="addr_setuid")
        .pfsm(
            "pFSM3",
            activity="execute code referred by addr_setuid",
            object_name="addr_setuid",
            spec=attr(
                "addr_setuid_unchanged",
                truthy("addr_setuid unchanged since load"),
            ),
            # IMPL_ACPT = -♦- in the figure; GUARDED installs the check.
            impl=attr(
                "addr_setuid_unchanged",
                truthy("addr_setuid unchanged since load"),
            ) if got_check else None,
            action="call the function referred by addr_setuid",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, str]:
    """The published exploit's shape: a negative index reaching back
    from tTvect to addr_setuid (the exact offset is layout-specific;
    the model needs only x < 0)."""
    return {"str_x": "-3772", "str_i": "120"}


def wrapping_exploit_input() -> Dict[str, str]:
    """A variant that also rides pFSM1's hidden path: the decimal string
    exceeds 2^31 and wraps negative through atoi."""
    return {"str_x": str(2**32 - 3772), "str_i": "120"}


def benign_input() -> Dict[str, str]:
    """A legitimate debug flag."""
    return {"str_x": "7", "str_i": "1"}


def pfsm_domains() -> Dict[str, Domain]:
    """Candidate-object domains per pFSM, for hidden-path search."""
    pairs = Domain.records(
        str_x=Domain.integer_strings(),
        str_i=Domain.of("1", "120"),
    )
    indexes = Domain.integer_probes().map(
        lambda x: {"x": x, "i": 120}, description="index records"
    )
    states = Domain.of(
        {"addr_setuid_unchanged": True}, {"addr_setuid_unchanged": False}
    )
    return {"pFSM1": pairs, "pFSM2": indexes, "pFSM3": states}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation, for Lemma part 1 checks."""
    return {
        OPERATION_1: pfsm_domains()["pFSM1"],
        OPERATION_2: pfsm_domains()["pFSM3"],
    }
