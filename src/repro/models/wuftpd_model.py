"""wu-ftpd #1387 (the format-trio's input-validation anchor) as a pFSM
model — structurally the rpc.statd model with the FTP command surface
in front.

* Operation 1, pFSM1 (Content and Attribute Check): SITE EXEC arguments
  must carry no format directives; the implementation passes them to
  ``lreply`` unfiltered.
* Gate: a %n in the arguments rewrites a chosen word.
* Operation 2, pFSM2 (Reference Consistency Check): the return address
  must be unchanged on return from lreply; no check exists.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    named_predicate,
    truthy,
)
from ..memory import contains_directives

__all__ = ["build_model", "exploit_input", "benign_input", "pfsm_domains",
           "operation_domains"]

OPERATION_1 = "Format the SITE EXEC arguments through lreply"
OPERATION_2 = "Return from lreply"

#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_no_directives = attr(
    "args",
    named_predicate("args_no_directives",
                    lambda a: not contains_directives(a),
                    "the arguments contain no format directives"),
)

_return_intact = attr(
    "return_address_unchanged",
    truthy("the return address is unchanged"),
)


def _carry_return_state(result) -> Dict[str, bool]:
    """Gate: %n in the arguments means the write fired."""
    return {"return_address_unchanged": b"%n" not in result.final_object["args"]}


def build_model(sanitize: bool = False, return_protection: bool = False
                ) -> VulnerabilityModel:
    """The #1387 model with optional fixes at either activity."""
    return (
        ModelBuilder(
            "wu-ftpd SITE EXEC Remote Format String",
            bugtraq_ids=[1387],
            final_consequence="control transfers to the injected code",
        )
        .operation(OPERATION_1, obj="the SITE EXEC arguments")
        .pfsm(
            "pFSM1",
            activity="pass the arguments to lreply as the format",
            object_name="args",
            spec=_no_directives,
            impl=_no_directives if sanitize else None,
            action="vsprintf(reply, args, ...)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate("%n stores the output length through an attacker word",
              carry=_carry_return_state)
        .operation(OPERATION_2, obj="the return address")
        .pfsm(
            "pFSM2",
            activity="return through the saved return address",
            object_name="return address",
            spec=_return_intact,
            impl=_return_intact if return_protection else None,
            action="ret",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, bytes]:
    """A %n payload in the SITE EXEC arguments."""
    return {"args": b"AAAA\x10\x11\x01\x00%70000x%n"}


def benign_input() -> Dict[str, bytes]:
    """Ordinary SITE EXEC arguments."""
    return {"args": b"/bin/ls -l"}


def pfsm_domains() -> Dict[str, Domain]:
    """Argument probes with and without directives."""
    args = Domain.of(
        b"/bin/ls", b"hello world", b"100%%", b"%x%x", b"%n",
        b"AAAA%70000x%n",
    ).map(lambda a: {"args": a}, description="SITE EXEC arguments")
    states = Domain.of({"return_address_unchanged": True},
                       {"return_address_unchanged": False})
    return {"pFSM1": args, "pFSM2": states}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {OPERATION_1: domains["pFSM1"], OPERATION_2: domains["pFSM2"]}
