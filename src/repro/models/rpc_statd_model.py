"""rpc.statd remote format string (#1480) — the format-string model of
the paper's extended report [21], summarised in Table 2.

Operation 1 — *Log the notification* (object: the remotely supplied
filename):

* pFSM1 (Content and Attribute Check): the filename must not contain
  format directives (%n, %x, %d, ...).  statd passes the filename as
  the format argument with no filtering.

Propagation gate — a ``%n`` directive writes the printed-byte count
through an attacker-chosen pointer; aimed at the saved return address,
it redirects control.

Operation 2 — *Return from the logging function* (object: the return
address):

* pFSM2 (Reference Consistency Check): the return address must be
  unchanged; no implementation check exists.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    named_predicate,
    truthy,
)
from ..memory import contains_directives

__all__ = [
    "build_model",
    "exploit_input",
    "benign_input",
    "pfsm_domains",
    "operation_domains",
]

OPERATION_1 = "Log the SM_NOTIFY filename via syslog"
OPERATION_2 = "Return from the logging function"

#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_no_directives = attr(
    "filename",
    named_predicate(
        "filename_no_directives",
        lambda name: not contains_directives(name),
        "the filename contains no format directives (%n, %x, %d, ...)",
    ),
)

_return_intact = attr(
    "return_address_unchanged",
    truthy("the return address is unchanged"),
)


def _carry_return_state(result) -> Dict[str, bool]:
    """Gate: a %n in the format string rewrites a chosen word — the
    model abstracts 'the return address survives' as 'no write directive
    was interpreted'."""
    filename = result.final_object["filename"]
    wrote = b"%n" in filename
    return {"return_address_unchanged": not wrote}


def build_model(
    sanitize: bool = False, return_protection: bool = False
) -> VulnerabilityModel:
    """The #1480 model with optional fixes at either activity."""
    return (
        ModelBuilder(
            "Multiple Linux Vendor rpc.statd Remote Format String",
            bugtraq_ids=[1480],
            final_consequence="control transfers to the injected code",
        )
        .operation(OPERATION_1, obj="the remotely supplied filename")
        .pfsm(
            "pFSM1",
            activity="pass the filename to syslog as the format argument",
            object_name="filename",
            spec=_no_directives,
            impl=_no_directives if sanitize else None,
            action="vsprintf(buffer, filename, ...)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate(
            "%n stores the output length through an attacker word",
            carry=_carry_return_state,
        )
        .operation(OPERATION_2, obj="the return address")
        .pfsm(
            "pFSM2",
            activity="return through the saved return address",
            object_name="return address",
            spec=_return_intact,
            impl=_return_intact if return_protection else None,
            action="ret",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, bytes]:
    """A classic %n payload shape."""
    return {"filename": b"AAAA\x10\x11\x01\x00%69632x%n"}


def benign_input() -> Dict[str, bytes]:
    """A legitimate statmon filename."""
    return {"filename": b"/var/statmon/sm/client7"}


def pfsm_domains() -> Dict[str, Domain]:
    """Filename probes with and without directives."""
    filenames = Domain.of(
        b"/var/statmon/sm/client7",
        b"hostname.example.com",
        b"100%% legit",
        b"%x%x%x%x",
        b"%n",
        b"AAAA%69632x%n",
        b"%s%s%s",
        b"%08x.%08x",
    ).map(lambda name: {"filename": name}, description="notify filenames")
    states = Domain.of(
        {"return_address_unchanged": True},
        {"return_address_unchanged": False},
    )
    return {"pFSM1": filenames, "pFSM2": states}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {OPERATION_1: domains["pFSM1"], OPERATION_2: domains["pFSM2"]}
