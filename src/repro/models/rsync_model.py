"""rsync #3958 (Table 1, row 3) as a pFSM model.

Two operations — the Access Validation anchoring the Table 1 analyst
used lives in the second:

* Operation 1, pFSM1 (Content and Attribute Check): the opcode must be
  a valid table index (``0 <= opcode < TABLE_SIZE``); the implementation
  checks only the upper bound.
* Gate: a negative opcode makes the table fetch read from the
  attacker-filled request buffer.
* Operation 2, pFSM2 (Reference Consistency Check): the fetched word
  must be a registered handler pointer; the implementation dispatches
  through whatever it fetched.
"""

from __future__ import annotations

from typing import Dict

from ..apps.rsync_daemon import TABLE_SIZE
from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    in_range,
    less_equal,
    truthy,
)

__all__ = ["build_model", "exploit_input", "benign_input", "pfsm_domains",
           "operation_domains"]

OPERATION_1 = "Select the protocol handler by opcode"
OPERATION_2 = "Dispatch through the fetched handler pointer"

_pointer_registered = attr(
    "pointer_registered",
    truthy("the fetched pointer names a registered handler"),
)


def _carry_pointer(result) -> Dict[str, bool]:
    """Gate: a negative opcode fetches from attacker-controlled bytes."""
    opcode = result.final_object["opcode"]
    return {"pointer_registered": opcode >= 0}


def build_model(patched: bool = False, guarded: bool = False
                ) -> VulnerabilityModel:
    """The #3958 model.

    ``patched`` installs the two-sided opcode bound (fixing operation
    1); ``guarded`` installs the handler-pointer consistency check
    (fixing operation 2) — either forecloses (Lemma part 2).
    """
    spec_opcode = attr("opcode", in_range(0, TABLE_SIZE - 1))
    impl_opcode = spec_opcode if patched else attr(
        "opcode", less_equal(TABLE_SIZE - 1)
    )
    return (
        ModelBuilder(
            "rsync Signed Array Index Remote Code Execution",
            bugtraq_ids=[3958],
            final_consequence="control transfers to the attacker's code",
        )
        .operation(OPERATION_1, obj="the remotely supplied opcode")
        .pfsm(
            "pFSM1",
            activity="use the opcode as the handler-table index",
            object_name="opcode",
            spec=spec_opcode,
            impl=impl_opcode,
            action="pointer = handlers[opcode]",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate("the table fetch lands in the attacker's request bytes",
              carry=_carry_pointer)
        .operation(OPERATION_2, obj="the handler pointer")
        .pfsm(
            "pFSM2",
            activity="execute the code referred to by the pointer",
            object_name="pointer",
            spec=_pointer_registered,
            impl=_pointer_registered if guarded else None,
            action="call pointer",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, int]:
    """A negative opcode reaching back into the request buffer."""
    return {"opcode": -16}


def benign_input() -> Dict[str, int]:
    """A legitimate protocol opcode."""
    return {"opcode": 3}


def pfsm_domains() -> Dict[str, Domain]:
    """Opcode boundary probes plus pointer states."""
    opcodes = Domain.of(-16, -1, 0, 3, TABLE_SIZE - 1, TABLE_SIZE, 100).map(
        lambda n: {"opcode": n}, description="opcode records"
    )
    pointers = Domain.of({"pointer_registered": True},
                         {"pointer_registered": False})
    return {"pFSM1": opcodes, "pFSM2": pointers}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {OPERATION_1: domains["pFSM1"], OPERATION_2: domains["pFSM2"]}
