"""Figure 7: IIS decodes filenames superfluously after applying security
checks (Bugtraq #2708).

Object: the percent-encoded CGI filepath, relative to
``/wwwroot/scripts``.

* pFSM1 (Content and Attribute Check): the *executed* file must reside
  under ``/wwwroot/scripts`` — equivalently, the fully decoded path
  must not contain ``../``.  The implementation checks a *different*
  predicate: "no ``../`` after the **first** decoding".  Because a
  second decode runs after the check, ``..%252f`` (→ ``..%2f`` →
  ``../``) is spec-rejected but impl-accepted — the inconsistency the
  paper draws as the transition from the reject state to the accept
  state.

This is the one case study where the implementation *does* check
something (IMPL_REJ exists) but checks the wrong predicate — the model
therefore has a non-trivial ``impl_accepts`` rather than a missing one.
"""

from __future__ import annotations

from typing import Dict

from ..apps.iis import IisServer
from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    named_predicate,
)

__all__ = [
    "build_model",
    "exploit_input",
    "benign_input",
    "pfsm_domains",
    "operation_domains",
]

OPERATION = "Execute the requested CGI program"

#: Registered by name so sweep tasks over this model carry a stable
#: cross-process identity (see repro.core.predspec).
_spec = named_predicate(
    "iis_spec_safe",
    IisServer.spec_safe,
    "the target file resides in /wwwroot/scripts "
    "(no '../' in the fully decoded path)",
)

_impl = named_predicate(
    "iis_first_decode_clean",
    IisServer.impl_accepts,
    "no '../' after the first decoding",
)


def build_model(patched: bool = False) -> VulnerabilityModel:
    """The Figure 7 model.

    ``patched`` makes the implementation check the fully decoded path —
    the predicate the spec actually requires.
    """
    return (
        ModelBuilder(
            "IIS Decodes Filenames Superfluously after Applying Security Checks",
            bugtraq_ids=[2708],
            final_consequence=(
                "execute arbitrary programs, even those out of "
                "/wwwroot/scripts (Nimda's vector)"
            ),
        )
        .operation(OPERATION, obj="the CGI filepath")
        .pfsm(
            "pFSM1",
            activity="decode the filename; check it; decode a second time",
            object_name="filepath",
            spec=_spec,
            impl=_spec if patched else _impl,
            action="execute the target CGI program",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .build()
    )


def exploit_input() -> str:
    """The Nimda-style double-encoded traversal."""
    return "..%252fwinnt/system32/cmd.exe"


def benign_input() -> str:
    """A legitimate script request."""
    return "tools/query.exe"


def pfsm_domains() -> Dict[str, Domain]:
    """Encoded-path probes: clean, directly traversing, singly encoded,
    doubly encoded, and mixed."""
    return {
        "pFSM1": Domain.of(
            "tools/query.exe",
            "a/b/c.exe",
            "../winnt/system32/cmd.exe",
            "..%2fwinnt/system32/cmd.exe",
            "..%252fwinnt/system32/cmd.exe",
            "..%25252fwinnt/system32/cmd.exe",
            "%2e%2e/winnt/cmd.exe",
            "..%255cwinnt/cmd.exe",
        )
    }


def operation_domains() -> Dict[str, Domain]:
    """Input domain for the single operation."""
    return {OPERATION: pfsm_domains()["pFSM1"]}
