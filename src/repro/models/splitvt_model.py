"""splitvt #2210 (the format-trio's access-validation anchor) as a pFSM
model.

* Operation 1, pFSM1 (Content and Attribute Check): the window title
  must carry no format directives; none are filtered.
* Gate: a %n in the title rewrites a screen-handler pointer — an object
  outside the user's access domain.
* Operation 2, pFSM2 (Reference Consistency Check): the handler pointer
  must still name a registered handler at dispatch time; the bare
  implementation dispatches unconditionally.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    named_predicate,
    truthy,
)
from ..memory import contains_directives

__all__ = ["build_model", "exploit_input", "benign_input", "pfsm_domains",
           "operation_domains"]

OPERATION_1 = "Render the user-controlled window title"
OPERATION_2 = "Dispatch the screen refresh through the handler pointer"

#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_no_directives = attr(
    "title",
    named_predicate("title_no_directives",
                    lambda t: not contains_directives(t),
                    "the title contains no format directives"),
)

_handler_intact = attr(
    "handler_registered",
    truthy("the handler pointer names a registered handler"),
)


def _carry_handler_state(result) -> Dict[str, bool]:
    """Gate: a %n in the title rewrote the handler slot."""
    return {"handler_registered":
            b"%n" not in result.final_object["title"]}


def build_model(sanitize: bool = False, guarded: bool = False
                ) -> VulnerabilityModel:
    """The #2210 model with optional fixes at either activity."""
    return (
        ModelBuilder(
            "splitvt Format String Vulnerability",
            bugtraq_ids=[2210],
            final_consequence=(
                "the refresh dispatches to code outside the user's "
                "access domain"
            ),
        )
        .operation(OPERATION_1, obj="the window title")
        .pfsm(
            "pFSM1",
            activity="pass the title to the formatter",
            object_name="title",
            spec=_no_directives,
            impl=_no_directives if sanitize else None,
            action="vsprintf(out, title, ...)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate("%n rewrites a screen-handler pointer",
              carry=_carry_handler_state)
        .operation(OPERATION_2, obj="the handler pointer")
        .pfsm(
            "pFSM2",
            activity="call the handler on the next refresh",
            object_name="handler pointer",
            spec=_handler_intact,
            impl=_handler_intact if guarded else None,
            action="call handlers[slot]",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, bytes]:
    """A %n title aimed at the handler table."""
    return {"title": b"AAAA\x20\x11\x01\x00%70000x%n"}


def benign_input() -> Dict[str, bytes]:
    """An ordinary window title."""
    return {"title": b"session 1: vi notes.txt"}


def pfsm_domains() -> Dict[str, Domain]:
    """Titles with and without directives, plus handler states."""
    titles = Domain.of(
        b"plain title", b"100%%", b"%x", b"%n", b"AAAA%70000x%n",
    ).map(lambda t: {"title": t}, description="window titles")
    states = Domain.of({"handler_registered": True},
                       {"handler_registered": False})
    return {"pFSM1": titles, "pFSM2": states}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {OPERATION_1: domains["pFSM1"], OPERATION_2: domains["pFSM2"]}
