"""icecast #2264 (the format-trio's boundary-condition anchor) as a
pFSM model.

* Operation 1, pFSM1 (Content and Attribute Check): the *rendered*
  reply must fit the 256-byte buffer — equivalently, the client string
  must not contain expanding directives.  No implementation check.
* Gate: an expanded reply longer than the buffer walks over the saved
  return address.
* Operation 2, pFSM2 (Reference Consistency Check): return address
  unchanged; no implementation check.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    named_predicate,
    truthy,
)
from ..memory import AddressSpace, vsprintf

__all__ = ["build_model", "exploit_input", "benign_input", "pfsm_domains",
           "operation_domains", "rendered_length", "CLIENT_BUFFER_SIZE"]

CLIENT_BUFFER_SIZE = 256

OPERATION_1 = "Format the client string into the reply buffer"
OPERATION_2 = "Return from print_client"

_scratch = AddressSpace(size=1 << 20)


def rendered_length(client_info: bytes) -> int:
    """Length of the formatted reply (what the buffer must hold)."""
    return len(vsprintf(_scratch, client_info, args=(),
                        vararg_base=0x1000).output)


#: Registered by name so sweep tasks over this model pickle across
#: process boundaries (see repro.core.predspec).
_fits_after_expansion = attr(
    "client_info",
    named_predicate("fits_after_expansion",
                    lambda info: rendered_length(info) <= CLIENT_BUFFER_SIZE,
                    "rendered reply fits the 256-byte buffer"),
)

_return_intact = attr(
    "return_address_unchanged",
    truthy("the return address is unchanged"),
)


def _carry_return_state(result) -> Dict[str, bool]:
    """Gate: an over-long expansion reaches the return slot."""
    info = result.final_object["client_info"]
    return {"return_address_unchanged":
            rendered_length(info) <= CLIENT_BUFFER_SIZE}


def build_model(expansion_check: bool = False,
                return_protection: bool = False) -> VulnerabilityModel:
    """The #2264 model with optional fixes at either activity."""
    return (
        ModelBuilder(
            "icecast print_client() Format String",
            bugtraq_ids=[2264],
            final_consequence="control transfers to the injected code",
        )
        .operation(OPERATION_1, obj="the client identification string")
        .pfsm(
            "pFSM1",
            activity="expand directives while formatting the reply",
            object_name="client_info",
            spec=_fits_after_expansion,
            impl=_fits_after_expansion if expansion_check else None,
            action="strcpy(buf, rendered)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate("the expanded reply overwrites the saved return address",
              carry=_carry_return_state)
        .operation(OPERATION_2, obj="the return address")
        .pfsm(
            "pFSM2",
            activity="return through the saved return address",
            object_name="return address",
            spec=_return_intact,
            impl=_return_intact if return_protection else None,
            action="ret",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
        )
        .build()
    )


def exploit_input() -> Dict[str, bytes]:
    """A tiny input expanding past the buffer."""
    return {"client_info": b"%300x" + b"\xef\xbe\xad\xde"}


def benign_input() -> Dict[str, bytes]:
    """An ordinary client identification."""
    return {"client_info": b"client-007 mp3 stream"}


def pfsm_domains() -> Dict[str, Domain]:
    """Client strings around the expansion boundary, plus return states."""
    infos = Domain.of(
        b"short", b"A" * 200, b"A" * 255, b"A" * 257,
        b"%100x", b"%256x", b"%300x", b"%500d",
    ).map(lambda info: {"client_info": info},
          description="client strings")
    states = Domain.of({"return_address_unchanged": True},
                       {"return_address_unchanged": False})
    return {"pFSM1": infos, "pFSM2": states}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {OPERATION_1: domains["pFSM1"], OPERATION_2: domains["pFSM2"]}
