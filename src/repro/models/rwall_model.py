"""Figure 6: Solaris rwall arbitrary file corruption as two operations.

Operation 1 — *Write to /etc/utmp* (object: the requesting user):

* pFSM1 (Content and Attribute Check): only root may edit
  ``/etc/utmp``.  The shipped configuration leaves the file
  world-writable, so the implementation accepts regular users — the
  hidden path through which the attacker adds the entry
  ``../etc/passwd``.

Propagation gate — the malicious entry is now among the "terminals" the
daemon will write to.

Operation 2 — *Rwall daemon writes messages* (object: the utmp entry):

* pFSM2 (Object Type Check): the entry must name a terminal device
  (e.g. ``pts/25``); a non-terminal like ``../etc/passwd`` must be
  rejected.  The daemon performs no file-type check, so the message —
  the attacker's new password file — is written to ``/etc/passwd``.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    Domain,
    ModelBuilder,
    PfsmType,
    VulnerabilityModel,
    attr,
    named_predicate,
    truthy,
)
from ..osmodel import normalize_path

__all__ = [
    "build_model",
    "exploit_input",
    "benign_input",
    "pfsm_domains",
    "operation_domains",
    "entry_is_terminal",
]

OPERATION_1 = "Write to /etc/utmp"
OPERATION_2 = "Rwall daemon writes messages"

#: Terminal devices of the modeled host (matches repro.apps.rwalld's world).
_KNOWN_TERMINALS = frozenset({"/dev/pts/25", "/dev/pts/26"})


def entry_is_terminal(entry: str) -> bool:
    """Does a utmp entry (resolved relative to /dev) name a terminal?"""
    return normalize_path(f"/dev/{entry}") in _KNOWN_TERMINALS


_is_root = attr("is_root", truthy("the user has root privilege"))

#: Registered by name so sweep tasks over this model carry a stable
#: cross-process identity (see repro.core.predspec).
_terminal_entry = attr(
    "entry", named_predicate("entry_is_terminal", entry_is_terminal,
                             "the entry names a terminal device")
).renamed("the target file is a terminal")


def _carry_entry(result) -> Dict[str, str]:
    """The gate: the written entry becomes the daemon's target."""
    return {"entry": result.final_object["entry"]}


def build_model(
    utmp_root_only: bool = False, type_check: bool = False
) -> VulnerabilityModel:
    """The Figure 6 model.

    ``utmp_root_only`` fixes pFSM1 (correct utmp permissions);
    ``type_check`` fixes pFSM2 (the daemon verifies terminal-ness).
    """
    return (
        ModelBuilder(
            "Solaris Rwall Arbitrary File Corruption",
            final_consequence=(
                "rwall daemon writes user messages to the regular file "
                "/etc/passwd"
            ),
        )
        .operation(OPERATION_1, obj="the /etc/utmp file")
        .pfsm(
            "pFSM1",
            activity="user request of writing /etc/utmp",
            object_name="the requesting user",
            spec=_is_root,
            impl=_is_root if utmp_root_only else None,  # world-writable utmp
            action="open /etc/utmp for the user; add the entry",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
        )
        .gate('"../etc/passwd" entry added to the file /etc/utmp',
              carry=_carry_entry)
        .operation(OPERATION_2, obj="the utmp entry")
        .pfsm(
            "pFSM2",
            activity="get a file from /etc/utmp; write the user message",
            object_name="the target file",
            spec=_terminal_entry,
            impl=_terminal_entry if type_check else None,  # no type check
            action="write user message to the terminal or file",
            check_type=PfsmType.OBJECT_TYPE,
        )
        .build()
    )


def exploit_input() -> Dict[str, object]:
    """A regular user planting the password-file entry."""
    return {"is_root": False, "entry": "../etc/passwd"}


def benign_input() -> Dict[str, object]:
    """Root maintaining utmp with a genuine terminal."""
    return {"is_root": True, "entry": "pts/25"}


def pfsm_domains() -> Dict[str, Domain]:
    """Candidate objects: user/entry combinations and bare entries."""
    requests = Domain(
        [
            {"is_root": is_root, "entry": entry}
            for is_root in (True, False)
            for entry in ("pts/25", "pts/26", "../etc/passwd", "../etc/shadow")
        ],
        description="utmp write requests",
    )
    entries = Domain(
        [
            {"entry": entry}
            for entry in ("pts/25", "pts/26", "../etc/passwd", "../etc/shadow")
        ],
        description="utmp entries",
    )
    return {"pFSM1": requests, "pFSM2": entries}


def operation_domains() -> Dict[str, Domain]:
    """Input domains per operation."""
    domains = pfsm_domains()
    return {OPERATION_1: domains["pFSM1"], OPERATION_2: domains["pFSM2"]}
