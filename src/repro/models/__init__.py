"""Prebuilt paper models: one module per figure/case study.

Each module exports ``build_model`` (with fix parameters mirroring the
paper's prescribed checks), ``exploit_input``/``benign_input``, and the
``pfsm_domains``/``operation_domains`` used by hidden-path analysis and
Lemma verification.  :mod:`repro.models.generic` holds the Figure 8
templates and the Table 2 grid.
"""

from . import (
    envutil_model,
    freebsd_model,
    generic,
    icecast_model,
    splitvt_model,
    ghttpd_model,
    iis_model,
    nullhttpd_model,
    rpc_statd_model,
    rsync_model,
    rwall_model,
    sendmail_model,
    wuftpd_model,
    xterm_model,
)
from .generic import (
    TABLE2_EXPECTED,
    Table2Cell,
    content_attribute_check,
    generic_operation,
    object_type_check,
    reference_consistency_check,
    table2_grid,
)

__all__ = [
    "envutil_model",
    "freebsd_model",
    "rsync_model",
    "wuftpd_model",
    "icecast_model",
    "splitvt_model",
    "all_extended_models",
    "all_extended_exploit_inputs",
    "all_extended_benign_inputs",
    "all_extended_operation_domains",
    "all_extended_pfsm_domains",
    "generic",
    "ghttpd_model",
    "iis_model",
    "nullhttpd_model",
    "rpc_statd_model",
    "rwall_model",
    "sendmail_model",
    "xterm_model",
    "TABLE2_EXPECTED",
    "Table2Cell",
    "content_attribute_check",
    "generic_operation",
    "object_type_check",
    "reference_consistency_check",
    "table2_grid",
    "all_paper_models",
    "all_exploit_inputs",
    "all_benign_inputs",
    "all_operation_domains",
    "all_pfsm_domains",
]


def all_paper_models():
    """The Table 2 row label → built (vulnerable) model mapping."""
    return {
        "Sendmail Signed Integer Overflow": sendmail_model.build_model(),
        "NULL HTTPD Heap Overflow": nullhttpd_model.build_model(),
        "Rwall File Corruption": rwall_model.build_model(),
        "IIS Filename Decoding Vulnerability": iis_model.build_model(),
        "Xterm File Race Condition": xterm_model.build_model(),
        "GHTTPD Buffer Overflow on Stack": ghttpd_model.build_model(),
        "rpc.statd Format String Vulnerability": rpc_statd_model.build_model(),
    }


def all_exploit_inputs():
    """Row label → the exploit input driving its model end to end."""
    return {
        "Sendmail Signed Integer Overflow": sendmail_model.exploit_input(),
        "NULL HTTPD Heap Overflow": nullhttpd_model.exploit_input_5774(),
        "Rwall File Corruption": rwall_model.exploit_input(),
        "IIS Filename Decoding Vulnerability": iis_model.exploit_input(),
        "Xterm File Race Condition": xterm_model.exploit_input(),
        "GHTTPD Buffer Overflow on Stack": ghttpd_model.exploit_input(),
        "rpc.statd Format String Vulnerability": rpc_statd_model.exploit_input(),
    }


def all_benign_inputs():
    """Row label → a benign input that must not compromise its model."""
    return {
        "Sendmail Signed Integer Overflow": sendmail_model.benign_input(),
        "NULL HTTPD Heap Overflow": nullhttpd_model.benign_input(),
        "Rwall File Corruption": rwall_model.benign_input(),
        "IIS Filename Decoding Vulnerability": iis_model.benign_input(),
        "Xterm File Race Condition": xterm_model.benign_input(),
        "GHTTPD Buffer Overflow on Stack": ghttpd_model.benign_input(),
        "rpc.statd Format String Vulnerability": rpc_statd_model.benign_input(),
    }


def all_operation_domains():
    """Row label → operation input domains (for Lemma part 1)."""
    return {
        "Sendmail Signed Integer Overflow": sendmail_model.operation_domains(),
        "NULL HTTPD Heap Overflow": nullhttpd_model.operation_domains(),
        "Rwall File Corruption": rwall_model.operation_domains(),
        "IIS Filename Decoding Vulnerability": iis_model.operation_domains(),
        "Xterm File Race Condition": xterm_model.operation_domains(),
        "GHTTPD Buffer Overflow on Stack": ghttpd_model.operation_domains(),
        "rpc.statd Format String Vulnerability": rpc_statd_model.operation_domains(),
    }


def all_pfsm_domains():
    """Row label → pFSM object domains (for hidden-path reports)."""
    return {
        "Sendmail Signed Integer Overflow": sendmail_model.pfsm_domains(),
        "NULL HTTPD Heap Overflow": nullhttpd_model.pfsm_domains(),
        "Rwall File Corruption": rwall_model.pfsm_domains(),
        "IIS Filename Decoding Vulnerability": iis_model.pfsm_domains(),
        "Xterm File Race Condition": xterm_model.pfsm_domains(),
        "GHTTPD Buffer Overflow on Stack": ghttpd_model.pfsm_domains(),
        "rpc.statd Format String Vulnerability": rpc_statd_model.pfsm_domains(),
    }


def all_extended_models():
    """The paper's seven Table 2 models plus the three additional named
    vulnerabilities (#5493, #3958, #1387) modeled in this reproduction.

    Kept separate from :func:`all_paper_models` so the Table 2 grid
    comparison stays exactly the paper's seven rows.
    """
    models = all_paper_models()
    models.update({
        "FreeBSD Signed Integer Buffer Overflow": freebsd_model.build_model(),
        "rsync Signed Array Index": rsync_model.build_model(),
        "wu-ftpd SITE EXEC Format String": wuftpd_model.build_model(),
        "icecast print_client() Format String": icecast_model.build_model(),
        "splitvt Format String Vulnerability": splitvt_model.build_model(),
        "Setuid Utility PATH Hijack": envutil_model.build_model(),
    })
    return models


def all_extended_exploit_inputs():
    """Exploit inputs for the extended model set."""
    inputs = all_exploit_inputs()
    inputs.update({
        "FreeBSD Signed Integer Buffer Overflow": freebsd_model.exploit_input(),
        "rsync Signed Array Index": rsync_model.exploit_input(),
        "wu-ftpd SITE EXEC Format String": wuftpd_model.exploit_input(),
        "icecast print_client() Format String": icecast_model.exploit_input(),
        "splitvt Format String Vulnerability": splitvt_model.exploit_input(),
        "Setuid Utility PATH Hijack": envutil_model.exploit_input(),
    })
    return inputs


def all_extended_benign_inputs():
    """Benign inputs for the extended model set."""
    inputs = all_benign_inputs()
    inputs.update({
        "FreeBSD Signed Integer Buffer Overflow": freebsd_model.benign_input(),
        "rsync Signed Array Index": rsync_model.benign_input(),
        "wu-ftpd SITE EXEC Format String": wuftpd_model.benign_input(),
        "icecast print_client() Format String": icecast_model.benign_input(),
        "splitvt Format String Vulnerability": splitvt_model.benign_input(),
        "Setuid Utility PATH Hijack": envutil_model.benign_input(),
    })
    return inputs


def all_extended_operation_domains():
    """Operation domains for the extended model set."""
    domains = all_operation_domains()
    domains.update({
        "FreeBSD Signed Integer Buffer Overflow":
            freebsd_model.operation_domains(),
        "rsync Signed Array Index": rsync_model.operation_domains(),
        "wu-ftpd SITE EXEC Format String": wuftpd_model.operation_domains(),
        "icecast print_client() Format String": icecast_model.operation_domains(),
        "splitvt Format String Vulnerability": splitvt_model.operation_domains(),
        "Setuid Utility PATH Hijack": envutil_model.operation_domains(),
    })
    return domains


def all_extended_pfsm_domains():
    """pFSM domains for the extended model set."""
    domains = all_pfsm_domains()
    domains.update({
        "FreeBSD Signed Integer Buffer Overflow":
            freebsd_model.pfsm_domains(),
        "rsync Signed Array Index": rsync_model.pfsm_domains(),
        "wu-ftpd SITE EXEC Format String": wuftpd_model.pfsm_domains(),
        "icecast print_client() Format String": icecast_model.pfsm_domains(),
        "splitvt Format String Vulnerability": splitvt_model.pfsm_domains(),
        "Setuid Utility PATH Hijack": envutil_model.pfsm_domains(),
    })
    return domains
