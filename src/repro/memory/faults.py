"""Memory fault injection and detection-coverage measurement.

The paper closes Section 6 observing that "very few techniques are
available to protect other reference inconsistencies, such as
inconsistency of function pointers, entries in GOT tables, and links to
free memory chunks on the heap."  A reference-consistency check is only
as good as its *detection coverage*: the fraction of corruptions of the
guarded state it actually notices.

This module injects controlled corruptions — single-bit flips, byte
writes, word overwrites — into chosen regions of a simulated process
and measures which of the process's consistency predicates (GOT
integrity, return-address integrity, canary, heap free-list links)
fire.  Injection campaigns are seeded and reproducible.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .address_space import AddressSpace, Region

__all__ = [
    "FaultKind",
    "FaultRecord",
    "FaultInjector",
    "CoverageReport",
    "measure_detection_coverage",
]


class FaultKind(enum.Enum):
    """Supported corruption primitives."""

    BIT_FLIP = "flip one bit"
    BYTE_SET = "overwrite one byte"
    WORD_SET = "overwrite one aligned word"


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault."""

    kind: FaultKind
    address: int
    before: bytes
    after: bytes

    @property
    def effective(self) -> bool:
        """Did the injection actually change memory?"""
        return self.before != self.after


class FaultInjector:
    """Seeded injector over an address space."""

    def __init__(self, space: AddressSpace, seed: int = 0) -> None:
        self.space = space
        self._rng = random.Random(seed)
        self.log: List[FaultRecord] = []

    # -- primitives ---------------------------------------------------------

    def flip_bit(self, address: int, bit: Optional[int] = None) -> FaultRecord:
        """Flip one bit of one byte (random bit when unspecified)."""
        bit = self._rng.randrange(8) if bit is None else bit
        before = self.space.read(address, 1)
        value = before[0] ^ (1 << bit)
        self.space.write_byte(address, value, label="fault")
        record = FaultRecord(FaultKind.BIT_FLIP, address, before,
                             bytes([value]))
        self.log.append(record)
        return record

    def set_byte(self, address: int, value: Optional[int] = None
                 ) -> FaultRecord:
        """Overwrite one byte (random value when unspecified)."""
        value = self._rng.randrange(256) if value is None else value
        before = self.space.read(address, 1)
        self.space.write_byte(address, value, label="fault")
        record = FaultRecord(FaultKind.BYTE_SET, address, before,
                             bytes([value]))
        self.log.append(record)
        return record

    def set_word(self, address: int, value: Optional[int] = None
                 ) -> FaultRecord:
        """Overwrite one 32-bit word (random value when unspecified)."""
        value = self._rng.getrandbits(32) if value is None else value
        before = self.space.read(address, 4)
        self.space.write_word(address, value, label="fault")
        record = FaultRecord(FaultKind.WORD_SET, address, before,
                             self.space.read(address, 4))
        self.log.append(record)
        return record

    # -- campaigns --------------------------------------------------------------

    def random_fault_in(self, region: Region,
                        kind: Optional[FaultKind] = None) -> FaultRecord:
        """Inject one random fault somewhere inside a region."""
        kind = kind or self._rng.choice(list(FaultKind))
        if kind is FaultKind.WORD_SET:
            slots = (region.size - 4) // 4 + 1
            address = region.start + 4 * self._rng.randrange(max(slots, 1))
        else:
            address = region.start + self._rng.randrange(region.size)
        if kind is FaultKind.BIT_FLIP:
            return self.flip_bit(address)
        if kind is FaultKind.BYTE_SET:
            return self.set_byte(address)
        return self.set_word(address)


@dataclass
class CoverageReport:
    """Outcome of a detection-coverage campaign."""

    campaign: str
    injected: int = 0
    effective: int = 0
    detected: int = 0
    missed_faults: List[FaultRecord] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Detected fraction of *effective* faults (an injection that
        wrote back the same bytes cannot be detected and is excluded)."""
        if self.effective == 0:
            return 1.0
        return self.detected / self.effective

    def __str__(self) -> str:
        return (f"{self.campaign}: {self.detected}/{self.effective} "
                f"effective faults detected ({self.coverage:.0%}; "
                f"{self.injected} injected)")


def measure_detection_coverage(
    campaign: str,
    make_target: Callable[[], Tuple[AddressSpace, Region,
                                    Callable[[], bool]]],
    trials: int = 100,
    seed: int = 0,
    kind: Optional[FaultKind] = None,
) -> CoverageReport:
    """Run an injection campaign and measure predicate coverage.

    ``make_target`` builds a *fresh* target per trial and returns
    ``(space, region_to_corrupt, consistent)`` where ``consistent()``
    is the predicate under test (True = state believed intact).  A
    fault is *detected* when the predicate reports inconsistency after
    the injection.
    """
    report = CoverageReport(campaign=campaign)
    for trial in range(trials):
        space, region, consistent = make_target()
        injector = FaultInjector(space, seed=seed * 10007 + trial)
        record = injector.random_fault_in(region, kind=kind)
        report.injected += 1
        if not record.effective:
            continue
        report.effective += 1
        if not consistent():
            report.detected += 1
        else:
            report.missed_faults.append(record)
    return report
