"""A simulated process: address space + code + GOT + stack + heap.

Application models (``repro.apps``) run inside a :class:`Process`.  The
process wires the pieces the paper's exploits traverse:

* a read-only *code* region holding legitimate function entry points,
* a writable region holding attacker shellcode (``Mcode``) once planted,
* the GOT, loaded at startup with the symbols the application calls,
* a downward-growing stack and a dlmalloc-style heap.

The process also exposes the three generic predicates of Figure 8 as
memory-level queries (type/content checks live with the data; the
reference-consistency checks live here), so FSM models can bind their
pFSM conditions to live process state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from .address_space import AddressSpace
from .got import GlobalOffsetTable
from .heap import Heap
from .stack import CallStack

__all__ = ["Process", "MCODE_MAGIC"]

#: Recognisable first word of planted attacker code, used by harnesses to
#: confirm control-flow arrival.
MCODE_MAGIC = 0x4D434F44  # "MCOD"


@dataclass(frozen=True)
class _Layout:
    """Default region sizes for a simulated process."""

    code_size: int = 64 * 1024
    scratch_size: int = 64 * 1024
    heap_size: int = 1024 * 1024
    stack_size: int = 256 * 1024


class Process:
    """A minimal process image for exploit execution.

    Parameters
    ----------
    symbols:
        Library symbols to load into the GOT at startup (each gets a
        distinct legitimate entry point in the code region).
    check_unlink:
        Enable the hardened allocator (safe unlink).
    """

    def __init__(
        self,
        symbols: Iterable[str] = ("setuid", "free", "exit"),
        check_unlink: bool = False,
        layout: Optional[_Layout] = None,
    ) -> None:
        layout = layout or _Layout()
        self.space = AddressSpace()
        cursor = 0x1000
        self.code = self.space.map_region("code", cursor, layout.code_size,
                                          writable=False)
        cursor = self.code.end
        # The GOT sits below the data/BSS globals, matching the ELF layout
        # the Sendmail exploit relies on: a *negative* array index from a
        # global like tTvect reaches the GOT.
        self.got = GlobalOffsetTable(self.space, base=cursor)
        cursor = self.got.region.end
        self.scratch = self.space.map_region("scratch", cursor,
                                             layout.scratch_size)
        cursor = self.scratch.end
        self.heap = Heap(self.space, base=cursor, size=layout.heap_size,
                         check_unlink=check_unlink)
        cursor = self.heap.region.end
        self.stack = CallStack(self.space, base=cursor + layout.stack_size,
                               size=layout.stack_size)

        self._function_entries: Dict[str, int] = {}
        entry = self.code.start + 0x100
        for symbol in symbols:
            self._function_entries[symbol] = entry
            self.got.load_symbol(symbol, entry)
            entry += 0x40
        self._mcode_address: Optional[int] = None
        self._scratch_cursor = self.scratch.start

    # -- attacker facilities ------------------------------------------------

    def plant_mcode(self) -> int:
        """Place attacker code in the scratch region; returns its address.

        The paper calls this ``Mcode`` — the malicious payload both GOT
        exploits ultimately jump to.
        """
        address = self._alloc_scratch(64)
        self.space.write_word(address, MCODE_MAGIC, label="mcode")
        self._mcode_address = address
        return address

    @property
    def mcode_address(self) -> Optional[int]:
        """Address of planted attacker code, if any."""
        return self._mcode_address

    def is_mcode(self, address: int) -> bool:
        """True when ``address`` points at the planted payload."""
        return (
            self._mcode_address is not None
            and address == self._mcode_address
            and self.space.read_word(address) == MCODE_MAGIC
        )

    # -- utility ----------------------------------------------------------------

    def _alloc_scratch(self, size: int) -> int:
        address = self._scratch_cursor
        if address + size > self.scratch.end:
            raise MemoryError("scratch region exhausted")
        self._scratch_cursor += size
        return address

    def place_global(self, name: str, size: int) -> int:
        """Reserve a pseudo-global (e.g. Sendmail's ``tTvect``) in the
        scratch region and return its address."""
        return self._alloc_scratch(size)

    def function_entry(self, symbol: str) -> int:
        """Legitimate entry point of a loaded library function."""
        return self._function_entries[symbol]

    # -- reference-consistency predicates (Figure 8, third pFSM type) -----------

    def got_consistent(self, symbol: str) -> bool:
        """Is the GOT entry for ``symbol`` unchanged since load?"""
        return self.got.is_consistent(symbol)

    def return_address_consistent(self) -> bool:
        """Is the innermost frame's return address unchanged?"""
        return self.stack.return_address_intact()

    def heap_links_consistent(self) -> bool:
        """Are all free-chunk links on the heap intact?"""
        return self.heap.links_intact()
