"""Call-stack model with in-memory return addresses.

The stack buffer overflow chain (GHTTPD #5960 in the paper's Table 2, and
the classic #6157/#5960/#4479 decomposition of Observation 1) needs a
stack whose frames hold local buffers *below* a saved return address in
real simulated memory, so an unchecked ``strcpy`` into a local buffer can
reach and replace the return word.

Layout (addresses grow upward in our space; the stack grows downward,
matching x86):

    higher addresses
        [ caller's frame ... ]
        [ return address ]        <- frame.return_address_slot
        [ saved frame pointer ]
        [ local buffer N ]
        [ ... ]
        [ local buffer 0 ]        <- lowest local, closest overflow source
    lower addresses

A ``strcpy`` into a local buffer with an over-long payload therefore walks
upward through the saved frame pointer into the return address, exactly
the smash the paper models with its Reference Consistency pFSM ("Is the
return address unchanged?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .address_space import AddressSpace, WORD_SIZE

__all__ = ["StackFrame", "CallStack", "StackSmashed"]


class StackSmashed(Exception):
    """Raised on return when the saved return address was overwritten and
    no protection rejected it — control transfers to the attacker word."""

    def __init__(self, function: str, hijacked_target: int, legitimate: int) -> None:
        super().__init__(
            f"return from {function} to {hijacked_target:#x} "
            f"(saved return address was {legitimate:#x})"
        )
        self.function = function
        self.hijacked_target = hijacked_target
        self.legitimate = legitimate


@dataclass
class StackFrame:
    """One activation record carved from the stack region."""

    function: str
    base: int  # lowest address of the frame (top of used stack)
    size: int
    return_address_slot: int
    saved_return_address: int
    locals: Dict[str, int] = field(default_factory=dict)
    local_sizes: Dict[str, int] = field(default_factory=dict)
    canary_slot: Optional[int] = None
    canary_value: Optional[int] = None

    def local_address(self, name: str) -> int:
        """Address of a named local buffer."""
        return self.locals[name]

    def local_size(self, name: str) -> int:
        """Declared size of a named local buffer."""
        return self.local_sizes[name]


class CallStack:
    """A downward-growing call stack in the simulated address space.

    Parameters
    ----------
    space:
        Backing address space.
    base:
        *Highest* address of the stack region (the stack grows down from
        here).  Chosen automatically if None.
    size:
        Total stack capacity in bytes.
    """

    REGION_NAME = "stack"

    def __init__(
        self, space: AddressSpace, base: Optional[int] = None, size: int = 64 * 1024
    ) -> None:
        self.space = space
        if base is None:
            start = space.find_free_range(size)
        else:
            start = base - size
        self.region = space.map_region(self.REGION_NAME, start, size)
        self._top = self.region.end  # grows downward
        self.frames: List[StackFrame] = []

    # -- frame management ---------------------------------------------------

    def push_frame(
        self,
        function: str,
        return_address: int,
        local_buffers: Optional[Dict[str, int]] = None,
        canary: Optional[int] = None,
    ) -> StackFrame:
        """Enter ``function``: lay out return address, optional canary,
        saved frame pointer, and named local buffers (dict of name ->
        size, declared first = placed highest, i.e. C declaration order).
        """
        local_buffers = dict(local_buffers or {})
        locals_size = sum(local_buffers.values())
        frame_size = (
            WORD_SIZE  # return address
            + WORD_SIZE  # saved frame pointer
            + (WORD_SIZE if canary is not None else 0)
            + locals_size
        )
        # Word-align.
        frame_size = (frame_size + WORD_SIZE - 1) // WORD_SIZE * WORD_SIZE
        new_top = self._top - frame_size
        if new_top < self.region.start:
            raise OverflowError(f"stack overflow entering {function}")

        cursor = self._top - WORD_SIZE
        return_slot = cursor
        self.space.write_word(return_slot, return_address, label=self.REGION_NAME)

        canary_slot = None
        if canary is not None:
            cursor -= WORD_SIZE
            canary_slot = cursor
            self.space.write_word(canary_slot, canary, label=self.REGION_NAME)

        cursor -= WORD_SIZE  # saved frame pointer slot (value irrelevant)
        self.space.write_word(cursor, 0xDEADBEEF, label=self.REGION_NAME)

        locals_map: Dict[str, int] = {}
        sizes_map: Dict[str, int] = {}
        for name, buf_size in local_buffers.items():
            cursor -= buf_size
            locals_map[name] = cursor
            sizes_map[name] = buf_size

        frame = StackFrame(
            function=function,
            base=new_top,
            size=frame_size,
            return_address_slot=return_slot,
            saved_return_address=return_address,
            locals=locals_map,
            local_sizes=sizes_map,
            canary_slot=canary_slot,
            canary_value=canary,
        )
        self._top = new_top
        self.frames.append(frame)
        return frame

    @property
    def current_frame(self) -> StackFrame:
        """The innermost frame."""
        if not self.frames:
            raise IndexError("no active frames")
        return self.frames[-1]

    # -- predicates (the pFSM checks) ------------------------------------------

    def return_address_intact(self, frame: Optional[StackFrame] = None) -> bool:
        """Reference Consistency Check for the return address: is the
        in-memory word still the saved value?"""
        frame = frame or self.current_frame
        return (
            self.space.read_word(frame.return_address_slot)
            == frame.saved_return_address
        )

    def canary_intact(self, frame: Optional[StackFrame] = None) -> bool:
        """StackGuard's proxy predicate: is the canary word unchanged?
        True also when the frame has no canary (nothing to violate)."""
        frame = frame or self.current_frame
        if frame.canary_slot is None:
            return True
        return self.space.read_word(frame.canary_slot) == frame.canary_value

    # -- control flow --------------------------------------------------------------

    def pop_frame(self, check_canary: bool = True) -> int:
        """Return from the innermost function.

        * Canary present and clobbered (and ``check_canary``): the process
          aborts — modeled as ``ValueError`` — foiling the exploit
          (IMPL_REJ of the reference-consistency pFSM).
        * Return address clobbered, no protection: control transfers to
          the attacker word — :class:`StackSmashed` (the hidden
          IMPL_ACPT transition).
        * Otherwise: the legitimate return address is returned.
        """
        frame = self.frames.pop()
        self._top = frame.base + frame.size
        if check_canary and not self.canary_intact(frame):
            raise ValueError(
                f"stack smashing detected in {frame.function}: canary clobbered"
            )
        stored = self.space.read_word(frame.return_address_slot)
        if stored != frame.saved_return_address:
            raise StackSmashed(frame.function, stored, frame.saved_return_address)
        return stored
