"""A dlmalloc-style heap with doubly-linked free chunks and the unlink
write primitive.

Figure 4 of the paper turns on GNU libc's free-chunk bookkeeping: free
chunks carry forward (``fd``) and backward (``bk``) links *inside the
chunk itself*, and consolidating a freed buffer with an adjacent free
chunk executes the unlink macro::

    B->fd->bk = B->bk
    B->bk->fd = B->fd

When a heap overflow has replaced ``B->fd`` and ``B->bk`` with attacker
values, the first assignment becomes an arbitrary 4-byte write — the
paper's attacker sets ``B->fd = &addr_free - (offset of field bk)`` and
``B->bk = Mcode`` so the GOT entry of ``free()`` ends up pointing at the
malicious code.

This module reproduces that machinery faithfully enough that the exploit
*executes*: the free list is threaded through simulated memory (a
sentinel bin plus per-chunk ``fd``/``bk`` words), consolidation reads the
links back from memory, and the unlink writes go through the address
space where they can land on a GOT entry.

Simplifications relative to 2003 glibc, none of which affect the modeled
behaviour: a single free bin instead of size-segregated bins; forward
(next-chunk) consolidation only; the in-use flag lives in bit 0 of the
chunk's own size word rather than the successor's ``PREV_INUSE`` bit.

Chunk layout (offsets from the chunk start)::

    +0   size word (chunk size | IN_USE bit)
    +4   (reserved, matches dlmalloc's prev_size slot)
    +8   user data ...          when free: fd link
    +12  user data ...          when free: bk link
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .address_space import AddressSpace

__all__ = [
    "Heap",
    "HeapChunk",
    "HeapError",
    "HeapCorruptionDetected",
    "CHUNK_HEADER_SIZE",
    "FD_OFFSET",
    "BK_OFFSET",
    "MIN_CHUNK_SIZE",
]

#: Bytes of per-chunk metadata preceding user data.
CHUNK_HEADER_SIZE = 8
#: Offset of the forward link within a free chunk.
FD_OFFSET = 8
#: Offset of the backward link within a free chunk (the paper's
#: "offset of field bk").
BK_OFFSET = 12
#: Smallest chunk: header + room for fd/bk.
MIN_CHUNK_SIZE = 16

_IN_USE = 0x1
_SIZE_MASK = ~0x7 & 0xFFFFFFFF


class HeapError(Exception):
    """Allocator usage or state error (double free, bad pointer, OOM)."""


class HeapCorruptionDetected(Exception):
    """Raised by the safe-unlink integrity check when free-list links do
    not satisfy ``fd->bk == chunk and bk->fd == chunk`` — the defense the
    paper's pFSM3 (Figure 4) calls for but 2003 glibc lacked."""


def _align(size: int) -> int:
    return (size + 7) // 8 * 8


@dataclass(frozen=True)
class HeapChunk:
    """A bookkeeping view of one chunk; all state of record is in memory."""

    address: int  # chunk start (header)
    size: int  # total size including header

    @property
    def user_address(self) -> int:
        """Address returned to callers of malloc."""
        return self.address + CHUNK_HEADER_SIZE

    @property
    def user_size(self) -> int:
        """Usable bytes."""
        return self.size - CHUNK_HEADER_SIZE

    @property
    def fd_address(self) -> int:
        """Address of the forward-link word (valid when free)."""
        return self.address + FD_OFFSET

    @property
    def bk_address(self) -> int:
        """Address of the backward-link word (valid when free)."""
        return self.address + BK_OFFSET


class Heap:
    """First-fit allocator over a region of the simulated address space.

    Parameters
    ----------
    space:
        Backing address space.
    base:
        Region start; chosen automatically if None.
    size:
        Region capacity in bytes.
    check_unlink:
        When true, ``free`` runs the safe-unlink integrity check before
        consolidating (the hardened allocator; foils the Figure 4
        exploit).  Default false, matching the 2003 implementation.
    """

    REGION_NAME = "heap"

    def __init__(
        self,
        space: AddressSpace,
        base: Optional[int] = None,
        size: int = 1024 * 1024,
        check_unlink: bool = False,
    ) -> None:
        self.space = space
        if base is None:
            base = space.find_free_range(size, align=8)
        self.region = space.map_region(self.REGION_NAME, base, size)
        self.check_unlink = check_unlink
        # Sentinel bin: a pseudo-chunk whose fd/bk delimit the circular
        # free list.  Lives at the region start, in memory.
        self._bin = base
        space.write_word(self._bin + FD_OFFSET, self._bin, label=self.REGION_NAME)
        space.write_word(self._bin + BK_OFFSET, self._bin, label=self.REGION_NAME)
        self._wilderness = base + MIN_CHUNK_SIZE
        self._allocated: dict[int, int] = {}  # user_address -> chunk size

    # -- raw word helpers ------------------------------------------------

    def _read_size_word(self, chunk_address: int) -> int:
        return self.space.read_word(chunk_address)

    def _chunk_size(self, chunk_address: int) -> int:
        return self._read_size_word(chunk_address) & _SIZE_MASK

    def _chunk_in_use(self, chunk_address: int) -> bool:
        return bool(self._read_size_word(chunk_address) & _IN_USE)

    def _write_header(self, chunk_address: int, size: int, in_use: bool) -> None:
        word = (size & _SIZE_MASK) | (_IN_USE if in_use else 0)
        self.space.write_word(chunk_address, word, label=self.REGION_NAME)

    # -- free-list plumbing (threaded through memory) ----------------------

    def _fd(self, chunk_address: int) -> int:
        return self.space.read_word(chunk_address + FD_OFFSET)

    def _bk(self, chunk_address: int) -> int:
        return self.space.read_word(chunk_address + BK_OFFSET)

    def _link_after_bin(self, chunk_address: int) -> None:
        """Insert a chunk at the head of the circular free list."""
        head = self._fd(self._bin)
        self.space.write_word(
            chunk_address + FD_OFFSET, head, label=self.REGION_NAME
        )
        self.space.write_word(
            chunk_address + BK_OFFSET, self._bin, label=self.REGION_NAME
        )
        self.space.write_word(self._bin + FD_OFFSET, chunk_address,
                              label=self.REGION_NAME)
        self.space.write_word(head + BK_OFFSET, chunk_address,
                              label=self.REGION_NAME)

    def _unlink(self, chunk_address: int) -> None:
        """The dlmalloc unlink macro, executed against memory.

        With intact links this removes the chunk from the free list.
        With attacker-corrupted links, ``fd->bk = bk`` is an arbitrary
        write — the Figure 4 primitive.
        """
        fd = self._fd(chunk_address)
        bk = self._bk(chunk_address)
        if self.check_unlink:
            fd_bk = self.space.read_word(fd + BK_OFFSET)
            bk_fd = self.space.read_word(bk + FD_OFFSET)
            if fd_bk != chunk_address or bk_fd != chunk_address:
                raise HeapCorruptionDetected(
                    f"corrupted double-linked list at chunk {chunk_address:#x}: "
                    f"fd->bk={fd_bk:#x} bk->fd={bk_fd:#x}"
                )
        # B->fd->bk = B->bk
        self.space.write_word(fd + BK_OFFSET, bk, label="unlink")
        # B->bk->fd = B->fd
        self.space.write_word(bk + FD_OFFSET, fd, label="unlink")

    def free_list(self, max_hops: int = 1024) -> List[int]:
        """Chunk addresses on the free list, walked through memory.

        ``max_hops`` bounds the walk because corrupted links may cycle.
        """
        chunks: List[int] = []
        cursor = self._fd(self._bin)
        hops = 0
        while cursor != self._bin and hops < max_hops:
            chunks.append(cursor)
            try:
                cursor = self._fd(cursor)
            except Exception:
                # A corrupted link walked off the address space — the
                # walk ends where a real traversal would fault.
                break
            hops += 1
        return chunks

    # -- allocation interface ------------------------------------------------

    def malloc(self, request: int) -> int:
        """Allocate ``request`` usable bytes; returns the user address.

        Note that ``request`` is interpreted as C ``size_t`` does *not*
        happen here — callers model their own size arithmetic (NULL
        HTTPD computes ``contentLen + 1024`` in a signed int before
        calling the allocator, which is exactly where its bug lives).
        """
        if request < 0:
            raise HeapError(f"malloc of negative size {request}")
        size = max(_align(request + CHUNK_HEADER_SIZE), MIN_CHUNK_SIZE)
        chunk = self._take_from_free_list(size) or self._extend_wilderness(size)
        self._write_header(chunk.address, chunk.size, in_use=True)
        self._allocated[chunk.user_address] = chunk.size
        return chunk.user_address

    def calloc(self, count: int, element_size: int) -> int:
        """Allocate and zero ``count * element_size`` bytes."""
        total = count * element_size
        address = self.malloc(total)
        if total > 0:
            self.space.write(address, b"\x00" * total, label=self.REGION_NAME)
        return address

    def _take_from_free_list(self, size: int) -> Optional[HeapChunk]:
        for chunk_address in self.free_list():
            chunk_size = self._chunk_size(chunk_address)
            if chunk_size >= size:
                self._unlink(chunk_address)
                remainder = chunk_size - size
                if remainder >= MIN_CHUNK_SIZE:
                    split_address = chunk_address + size
                    self._write_header(split_address, remainder, in_use=False)
                    self._link_after_bin(split_address)
                    chunk_size = size
                return HeapChunk(chunk_address, chunk_size)
        return None

    def _extend_wilderness(self, size: int) -> HeapChunk:
        address = self._wilderness
        if address + size > self.region.end:
            raise HeapError("out of heap memory")
        self._wilderness += size
        return HeapChunk(address, size)

    def free(self, user_address: int) -> None:
        """Release an allocation, consolidating forward.

        If the physically-next chunk is free it is unlinked from the free
        list first — reading its ``fd``/``bk`` from memory.  A preceding
        overflow that reached into that chunk's links turns this step
        into the arbitrary write of Figure 4.
        """
        if user_address not in self._allocated:
            raise HeapError(f"free of unallocated pointer {user_address:#x}")
        chunk_address = user_address - CHUNK_HEADER_SIZE
        if not self._chunk_in_use(chunk_address):
            raise HeapError(f"double free at {user_address:#x}")
        del self._allocated[user_address]
        size = self._chunk_size(chunk_address)

        next_address = chunk_address + size
        if (
            next_address + MIN_CHUNK_SIZE <= self._wilderness
            and not self._chunk_in_use(next_address)
        ):
            next_size = self._chunk_size(next_address)
            self._unlink(next_address)
            size += next_size

        self._write_header(chunk_address, size, in_use=False)
        self._link_after_bin(chunk_address)

    # -- inspection ------------------------------------------------------------

    def allocation_size(self, user_address: int) -> int:
        """Usable size of a live allocation (for overflow detection)."""
        return self._allocated[user_address] - CHUNK_HEADER_SIZE

    def allocations(self) -> Iterator[int]:
        """User addresses of live allocations."""
        return iter(self._allocated)

    def chunk_for(self, user_address: int) -> HeapChunk:
        """Bookkeeping view of the chunk backing ``user_address``."""
        chunk_address = user_address - CHUNK_HEADER_SIZE
        return HeapChunk(chunk_address, self._chunk_size(chunk_address))

    def next_physical_chunk(self, user_address: int) -> Optional[HeapChunk]:
        """The chunk physically following an allocation, if any — 'chunk
        B' in Figure 4's heap layout."""
        chunk = self.chunk_for(user_address)
        next_address = chunk.address + chunk.size
        if next_address >= self._wilderness:
            return None
        return HeapChunk(next_address, self._chunk_size(next_address))

    def describe_layout(self, max_chunks: int = 32) -> str:
        """Textual heap map — the left panel of the paper's Figure 4a.

        Walks the chunks physically from the first allocation to the
        wilderness edge, annotating size, in-use state, and (for free
        chunks) the fd/bk links read from memory.
        """
        lines = ["heap layout (physical order):"]
        cursor = self.region.start + MIN_CHUNK_SIZE  # past the bin sentinel
        shown = 0
        while cursor < self._wilderness and shown < max_chunks:
            size = self._chunk_size(cursor)
            if size < MIN_CHUNK_SIZE:
                lines.append(f"  {cursor:#x}: corrupt size word "
                             f"({self._read_size_word(cursor):#x})")
                break
            if self._chunk_in_use(cursor):
                lines.append(f"  {cursor:#x}: chunk size={size} IN USE")
            else:
                lines.append(
                    f"  {cursor:#x}: chunk size={size} free "
                    f"fd={self._fd(cursor):#x} bk={self._bk(cursor):#x}"
                )
            cursor += size
            shown += 1
        lines.append(f"  {self._wilderness:#x}: wilderness")
        return "\n".join(lines)

    def links_intact(self) -> bool:
        """Global Reference Consistency Check over the free list: every
        free chunk satisfies ``fd->bk == chunk and bk->fd == chunk``.

        This is pFSM3 of Figure 4 ("Are free-chunk links unchanged?") as
        a whole-heap predicate.
        """
        for chunk_address in self.free_list():
            try:
                fd = self._fd(chunk_address)
                bk = self._bk(chunk_address)
                if self.space.read_word(fd + BK_OFFSET) != chunk_address:
                    return False
                if self.space.read_word(bk + FD_OFFSET) != chunk_address:
                    return False
            except Exception:
                return False
        return True
