"""A printf interpreter with ``%n`` — the format-string write primitive.

Format string vulnerabilities (the paper's #1480 rpc.statd, #1387 wu-ftpd,
#2210 splitvt, #2264 icecast) arise when attacker input is passed as the
*format* argument: directives like ``%x`` walk the argument list (leaking
stack words) and ``%n`` stores the number of bytes printed so far through
the next argument word — which, for a format string on the stack, the
attacker controls.  That store is how rpc.statd's return address gets
redirected.

The interpreter models the C varargs convention on a 32-bit stack: when
the caller supplies fewer arguments than the format consumes, subsequent
arguments are read from the simulated stack memory at ``vararg_base`` —
which is also where the format string's own bytes sit, closing the loop
the real exploit uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from .address_space import AddressSpace, WORD_SIZE

__all__ = [
    "FormatDirective",
    "FormatResult",
    "parse_directives",
    "contains_directives",
    "vsprintf",
]

#: Conversion characters the interpreter understands.
_CONVERSIONS = "dioxXucsn%"


@dataclass(frozen=True)
class FormatDirective:
    """One parsed ``%`` directive."""

    text: str  # the full directive, e.g. "%08x"
    conversion: str  # the conversion character, e.g. "x"
    width: int = 0

    @property
    def is_write(self) -> bool:
        """True for ``%n`` — the directive that writes memory."""
        return self.conversion == "n"


@dataclass
class FormatResult:
    """Outcome of interpreting a format string."""

    output: bytes
    writes: List[int] = field(default_factory=list)  # addresses written by %n
    words_consumed: int = 0

    @property
    def wrote_memory(self) -> bool:
        """True when any ``%n`` store occurred."""
        return bool(self.writes)


def parse_directives(fmt: bytes) -> List[FormatDirective]:
    """Extract all ``%`` directives from a format string.

    This is the Content/Attribute Check of the paper's Table 2 row for
    rpc.statd ("Does the filename contain format directives?") made
    executable: a sanitizer rejects input when this list is non-empty.
    """
    directives: List[FormatDirective] = []
    index = 0
    length = len(fmt)
    while index < length:
        if fmt[index : index + 1] != b"%":
            index += 1
            continue
        start = index
        index += 1
        width_digits = b""
        while index < length and fmt[index : index + 1] in b"0123456789.-+# ":
            if fmt[index : index + 1].isdigit():
                width_digits += fmt[index : index + 1]
            index += 1
        # length modifiers
        while index < length and fmt[index : index + 1] in b"hlLqjzt":
            index += 1
        if index >= length:
            break
        conversion = chr(fmt[index])
        index += 1
        if conversion in _CONVERSIONS:
            directives.append(
                FormatDirective(
                    text=fmt[start:index].decode("latin-1"),
                    conversion=conversion,
                    width=int(width_digits) if width_digits else 0,
                )
            )
    return [d for d in directives if d.conversion != "%"]


def contains_directives(fmt: bytes) -> bool:
    """True when the string holds any conversion directive (excluding
    the literal ``%%``)."""
    return bool(parse_directives(fmt))


def vsprintf(
    space: AddressSpace,
    fmt: bytes,
    args: Sequence[Union[int, bytes]] = (),
    vararg_base: Optional[int] = None,
) -> FormatResult:
    """Interpret ``fmt`` with C varargs semantics.

    Parameters
    ----------
    space:
        Address space for ``%s`` dereferences and ``%n`` stores.
    fmt:
        The format string (possibly attacker-controlled — the bug).
    args:
        Explicitly supplied arguments, consumed first.
    vararg_base:
        Stack address from which *excess* argument words are fetched,
        modeling a varargs walk past the supplied arguments.  Required
        for the classic exploit where ``%n`` pops an attacker word.
        When None, excess fetches read as zero and ``%n`` through them
        faults at address 0 — also a faithful outcome (a crash).
    """
    output = bytearray()
    writes: List[int] = []
    arg_index = 0

    def next_word() -> int:
        nonlocal arg_index
        if arg_index < len(args):
            value = args[arg_index]
            arg_index += 1
            if isinstance(value, bytes):
                raise TypeError("string argument consumed as integer word")
            return value & 0xFFFFFFFF
        # Walk the stack past the supplied arguments.
        offset = arg_index - len(args)
        arg_index += 1
        if vararg_base is None:
            return 0
        return space.read_word(vararg_base + offset * WORD_SIZE)

    def next_string() -> bytes:
        nonlocal arg_index
        if arg_index < len(args):
            value = args[arg_index]
            arg_index += 1
            if isinstance(value, bytes):
                return value
            return space.read_cstring(value & 0xFFFFFFFF)
        return space.read_cstring(next_word())

    index = 0
    length = len(fmt)
    while index < length:
        byte = fmt[index : index + 1]
        if byte != b"%":
            output += byte
            index += 1
            continue
        # Re-parse this single directive.
        sub = parse_directives(fmt[index:])
        literal_percent = fmt[index : index + 2] == b"%%"
        if literal_percent:
            output += b"%"
            index += 2
            continue
        if not sub or not fmt[index:].startswith(sub[0].text.encode("latin-1")):
            output += byte
            index += 1
            continue
        directive = sub[0]
        index += len(directive.text)
        if directive.conversion in "dioxXuc":
            word = next_word()
            if directive.conversion in "di":
                if word >= 1 << 31:
                    word -= 1 << 32
                rendered = str(word)
            elif directive.conversion == "o":
                rendered = format(word, "o")
            elif directive.conversion in "xX":
                rendered = format(word, directive.conversion)
            elif directive.conversion == "u":
                rendered = str(word)
            else:  # c
                rendered = chr(word & 0xFF)
            rendered = rendered.rjust(directive.width)
            output += rendered.encode("latin-1")
        elif directive.conversion == "s":
            output += next_string()
        elif directive.conversion == "n":
            target = next_word()
            space.write_word(target, len(output), label="format-%n")
            writes.append(target)
    return FormatResult(
        output=bytes(output), writes=writes, words_consumed=arg_index
    )
