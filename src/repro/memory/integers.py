"""C integer semantics for exploit modeling.

The vulnerabilities studied in the paper (notably Sendmail #3163, FreeBSD
#5493, rsync #3958, and NULL HTTPD's negative ``contentLen``) hinge on the
difference between mathematical integers and fixed-width two's-complement
machine integers.  This module provides value types that reproduce C's
wraparound, truncation, and signed/unsigned reinterpretation exactly, so
application models can exhibit the same overflow behaviour as the original
C code.

The types are immutable value objects: arithmetic returns new instances and
never raises on overflow (C semantics for unsigned; the de-facto wraparound
semantics of the 2003-era compilers the paper's applications were built
with for signed).
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "CInt",
    "Int8",
    "Int16",
    "Int32",
    "Int64",
    "UInt8",
    "UInt16",
    "UInt32",
    "UInt64",
    "int32",
    "uint32",
    "int16",
    "uint16",
    "int8",
    "uint8",
    "int64",
    "uint64",
    "atoi",
    "strtol",
]

_IntLike = Union[int, "CInt"]


class CInt:
    """A fixed-width two's-complement integer with C arithmetic.

    Subclasses fix :attr:`BITS` and :attr:`SIGNED`.  All arithmetic wraps
    modulo ``2**BITS`` and reinterprets the result in the type's range, as
    a C compiler of the paper's era would.
    """

    BITS: int = 32
    SIGNED: bool = True

    __slots__ = ("_value",)

    def __init__(self, value: _IntLike = 0) -> None:
        self._value = self._wrap(int(value))

    # -- range helpers -------------------------------------------------

    @classmethod
    def _mask(cls) -> int:
        return (1 << cls.BITS) - 1

    @classmethod
    def min_value(cls) -> int:
        """Smallest representable value of this type."""
        return -(1 << (cls.BITS - 1)) if cls.SIGNED else 0

    @classmethod
    def max_value(cls) -> int:
        """Largest representable value of this type."""
        if cls.SIGNED:
            return (1 << (cls.BITS - 1)) - 1
        return (1 << cls.BITS) - 1

    @classmethod
    def _wrap(cls, raw: int) -> int:
        raw &= cls._mask()
        if cls.SIGNED and raw >= 1 << (cls.BITS - 1):
            raw -= 1 << cls.BITS
        return raw

    @classmethod
    def in_range(cls, value: int) -> bool:
        """True when ``value`` is representable without wrapping."""
        return cls.min_value() <= value <= cls.max_value()

    @classmethod
    def would_overflow(cls, value: int) -> bool:
        """True when converting ``value`` changes its mathematical value."""
        return not cls.in_range(value)

    # -- value access --------------------------------------------------

    @property
    def value(self) -> int:
        """The represented value as a Python int."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return self._value != 0

    # -- conversions ---------------------------------------------------

    def cast(self, target: type) -> "CInt":
        """Reinterpret/truncate this value as another C integer type.

        Mirrors a C cast: the bit pattern is truncated to the target width
        and reinterpreted under the target's signedness.
        """
        return target(self._value)

    def as_unsigned(self) -> int:
        """The raw bit pattern read as an unsigned integer."""
        return self._value & self._mask()

    def to_bytes_le(self) -> bytes:
        """Little-endian byte representation (the paper's x86 context)."""
        return self.as_unsigned().to_bytes(self.BITS // 8, "little")

    @classmethod
    def from_bytes_le(cls, data: bytes) -> "CInt":
        """Build a value from little-endian bytes (must match width)."""
        if len(data) != cls.BITS // 8:
            raise ValueError(
                f"{cls.__name__} needs {cls.BITS // 8} bytes, got {len(data)}"
            )
        return cls(int.from_bytes(data, "little"))

    # -- arithmetic (wrapping) ------------------------------------------

    def _coerce(self, other: _IntLike) -> int:
        if isinstance(other, CInt):
            return other._value
        return int(other)

    def __add__(self, other: _IntLike) -> "CInt":
        return type(self)(self._value + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other: _IntLike) -> "CInt":
        return type(self)(self._value - self._coerce(other))

    def __rsub__(self, other: _IntLike) -> "CInt":
        return type(self)(self._coerce(other) - self._value)

    def __mul__(self, other: _IntLike) -> "CInt":
        return type(self)(self._value * self._coerce(other))

    __rmul__ = __mul__

    def __floordiv__(self, other: _IntLike) -> "CInt":
        divisor = self._coerce(other)
        if divisor == 0:
            raise ZeroDivisionError("C integer division by zero")
        # C division truncates toward zero, unlike Python floor division.
        quotient = abs(self._value) // abs(divisor)
        if (self._value < 0) != (divisor < 0):
            quotient = -quotient
        return type(self)(quotient)

    def __mod__(self, other: _IntLike) -> "CInt":
        divisor = self._coerce(other)
        if divisor == 0:
            raise ZeroDivisionError("C integer modulo by zero")
        remainder = abs(self._value) % abs(divisor)
        if self._value < 0:
            remainder = -remainder
        return type(self)(remainder)

    def __neg__(self) -> "CInt":
        return type(self)(-self._value)

    def __lshift__(self, other: _IntLike) -> "CInt":
        return type(self)(self._value << self._coerce(other))

    def __rshift__(self, other: _IntLike) -> "CInt":
        # Arithmetic shift for signed, logical for unsigned (C behaviour).
        if self.SIGNED:
            return type(self)(self._value >> self._coerce(other))
        return type(self)(self.as_unsigned() >> self._coerce(other))

    def __and__(self, other: _IntLike) -> "CInt":
        return type(self)(self.as_unsigned() & (self._coerce(other) & self._mask()))

    def __or__(self, other: _IntLike) -> "CInt":
        return type(self)(self.as_unsigned() | (self._coerce(other) & self._mask()))

    def __xor__(self, other: _IntLike) -> "CInt":
        return type(self)(self.as_unsigned() ^ (self._coerce(other) & self._mask()))

    def __invert__(self) -> "CInt":
        return type(self)(~self._value)

    # -- comparisons (by represented value) ------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (CInt, int)):
            return self._value == self._coerce(other)  # type: ignore[arg-type]
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: _IntLike) -> bool:
        return self._value < self._coerce(other)

    def __le__(self, other: _IntLike) -> bool:
        return self._value <= self._coerce(other)

    def __gt__(self, other: _IntLike) -> bool:
        return self._value > self._coerce(other)

    def __ge__(self, other: _IntLike) -> bool:
        return self._value >= self._coerce(other)

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._value})"


class Int8(CInt):
    """Signed 8-bit integer (C ``char``)."""

    BITS = 8
    SIGNED = True


class UInt8(CInt):
    """Unsigned 8-bit integer (C ``unsigned char``)."""

    BITS = 8
    SIGNED = False


class Int16(CInt):
    """Signed 16-bit integer (C ``short``)."""

    BITS = 16
    SIGNED = True


class UInt16(CInt):
    """Unsigned 16-bit integer (C ``unsigned short``)."""

    BITS = 16
    SIGNED = False


class Int32(CInt):
    """Signed 32-bit integer (C ``int`` on the paper's platforms)."""

    BITS = 32
    SIGNED = True


class UInt32(CInt):
    """Unsigned 32-bit integer (C ``unsigned int`` / ``size_t``)."""

    BITS = 32
    SIGNED = False


class Int64(CInt):
    """Signed 64-bit integer (C ``long long``)."""

    BITS = 64
    SIGNED = True


class UInt64(CInt):
    """Unsigned 64-bit integer (C ``unsigned long long``)."""

    BITS = 64
    SIGNED = False


def int8(value: _IntLike) -> Int8:
    """Shorthand constructor for :class:`Int8`."""
    return Int8(value)


def uint8(value: _IntLike) -> UInt8:
    """Shorthand constructor for :class:`UInt8`."""
    return UInt8(value)


def int16(value: _IntLike) -> Int16:
    """Shorthand constructor for :class:`Int16`."""
    return Int16(value)


def uint16(value: _IntLike) -> UInt16:
    """Shorthand constructor for :class:`UInt16`."""
    return UInt16(value)


def int32(value: _IntLike) -> Int32:
    """Shorthand constructor for :class:`Int32`."""
    return Int32(value)


def uint32(value: _IntLike) -> UInt32:
    """Shorthand constructor for :class:`UInt32`."""
    return UInt32(value)


def int64(value: _IntLike) -> Int64:
    """Shorthand constructor for :class:`Int64`."""
    return Int64(value)


def uint64(value: _IntLike) -> UInt64:
    """Shorthand constructor for :class:`UInt64`."""
    return UInt64(value)


def atoi(text: str) -> Int32:
    """C ``atoi``: parse a decimal prefix into a wrapping 32-bit int.

    This is the conversion through which Sendmail #3163 turns the attacker
    string ``str_x`` into a (possibly negative, possibly wrapped) array
    index.  Leading whitespace is skipped, an optional sign is consumed,
    then the longest decimal digit prefix is read.  Values outside the
    ``int`` range wrap, matching glibc's 2003 behaviour of unchecked
    accumulation into a machine register.
    """
    index = 0
    length = len(text)
    while index < length and text[index] in " \t\n\r\v\f":
        index += 1
    sign = 1
    if index < length and text[index] in "+-":
        if text[index] == "-":
            sign = -1
        index += 1
    accumulator = Int32(0)
    saw_digit = False
    while index < length and text[index].isdigit():
        saw_digit = True
        accumulator = accumulator * 10 + int(text[index])
        index += 1
    if not saw_digit:
        return Int32(0)
    return Int32(sign) * accumulator


def strtol(text: str, base: int = 10) -> Int32:
    """Simplified C ``strtol`` clamped to ``long`` (32-bit on the paper's
    platforms): saturates instead of wrapping, per the C standard."""
    text = text.strip()
    sign = 1
    if text[:1] in {"+", "-"}:
        if text[0] == "-":
            sign = -1
        text = text[1:]
    digits = ""
    valid = "0123456789abcdef"[:base]
    for char in text:
        if char.lower() not in valid:
            break
        digits += char
    if not digits:
        return Int32(0)
    value = sign * int(digits, base)
    if value > Int32.max_value():
        return Int32(Int32.max_value())
    if value < Int32.min_value():
        return Int32(Int32.min_value())
    return Int32(value)
