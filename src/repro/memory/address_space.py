"""A flat, byte-addressable simulated address space.

Every exploit consequence in the paper is a memory effect — overwriting
the GOT entry of ``setuid()`` (Figure 3), corrupting free-chunk links and
the GOT entry of ``free()`` (Figure 4), smashing a stack return address
(GHTTPD #5960), or writing through ``%n`` (rpc.statd #1480).  This module
provides the substrate on which those effects are reproduced: a sparse
dictionary of byte values with region bookkeeping, watchpoints, and
little-endian word access matching the paper's x86 context.

Unlike real memory, the space records which *region* each address belongs
to, so analyses can detect out-of-bounds writes (the hidden IMPL_ACPT
path) without preventing them — the point of the model is to let the
overflow happen and observe its propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "MemoryError_",
    "MemoryFault",
    "Region",
    "WriteRecord",
    "AddressSpace",
    "WORD_SIZE",
]

#: Word size in bytes; the paper's platforms (x86/SPARC32) are 32-bit.
WORD_SIZE = 4


class MemoryError_(Exception):
    """Base class for simulated-memory errors (named to avoid shadowing
    the builtin :class:`MemoryError`)."""


class MemoryFault(MemoryError_):
    """Raised for accesses to unmapped addresses (a simulated SIGSEGV)."""


@dataclass(frozen=True)
class Region:
    """A named, mapped range ``[start, start + size)`` of the space."""

    name: str
    start: int
    size: int
    writable: bool = True

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.start + self.size

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside the region."""
        return self.start <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        """True when the two regions share at least one address."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class WriteRecord:
    """An audit-trail entry for one write to the space."""

    address: int
    length: int
    region: Optional[str]
    out_of_bounds: bool
    label: str = ""


class AddressSpace:
    """Sparse byte-addressable memory with region and audit bookkeeping.

    Parameters
    ----------
    size:
        Total span of addressable bytes.  Addresses outside ``[0, size)``
        fault.  Defaults to a 16 MiB span, ample for the modeled exploits.
    track_writes:
        When true (default) every write appends a :class:`WriteRecord`,
        which the FSM analysis layer uses to observe hidden-path effects.
    """

    def __init__(self, size: int = 16 * 1024 * 1024, track_writes: bool = True) -> None:
        if size <= 0:
            raise ValueError("address space size must be positive")
        self.size = size
        self._bytes: Dict[int, int] = {}
        self._regions: Dict[str, Region] = {}
        self._track = track_writes
        self.write_log: List[WriteRecord] = []
        self._watchpoints: Dict[int, List[Callable[[int, int], None]]] = {}

    # -- region management ----------------------------------------------

    def map_region(
        self, name: str, start: int, size: int, writable: bool = True
    ) -> Region:
        """Register a named region; overlapping an existing one is an error."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already mapped")
        region = Region(name, start, size, writable)
        if start < 0 or region.end > self.size:
            raise ValueError(f"region {name!r} exceeds address space")
        for existing in self._regions.values():
            if region.overlaps(existing):
                raise ValueError(
                    f"region {name!r} overlaps existing region {existing.name!r}"
                )
        self._regions[name] = region
        return region

    def unmap_region(self, name: str) -> None:
        """Remove a region registration (contents are preserved)."""
        del self._regions[name]

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        return self._regions[name]

    def regions(self) -> Iterator[Region]:
        """All mapped regions, in ascending start order."""
        return iter(sorted(self._regions.values(), key=lambda r: r.start))

    def region_at(self, address: int) -> Optional[Region]:
        """The region containing ``address``, or None if unmapped."""
        for region in self._regions.values():
            if region.contains(address):
                return region
        return None

    def find_free_range(self, size: int, align: int = WORD_SIZE) -> int:
        """First-fit search for an unmapped gap of at least ``size`` bytes."""
        cursor = align
        for region in self.regions():
            if cursor + size <= region.start:
                return cursor
            cursor = max(cursor, region.end)
            cursor = (cursor + align - 1) // align * align
        if cursor + size <= self.size:
            return cursor
        raise MemoryError_("no free range large enough")

    # -- watchpoints ------------------------------------------------------

    def add_watchpoint(
        self, address: int, callback: Callable[[int, int], None]
    ) -> None:
        """Invoke ``callback(address, new_byte)`` whenever ``address`` is
        written.  Used by analyses to observe reference-consistency
        violations (e.g. a GOT entry changing underneath the program)."""
        self._watchpoints.setdefault(address, []).append(callback)

    def clear_watchpoints(self) -> None:
        """Remove all watchpoints."""
        self._watchpoints.clear()

    # -- byte access -------------------------------------------------------

    def _check_bounds(self, address: int, length: int = 1) -> None:
        if address < 0 or address + length > self.size:
            raise MemoryFault(
                f"access at {address:#x}+{length} outside address space"
            )

    def read_byte(self, address: int) -> int:
        """Read one byte (unmapped bytes read as zero-fill)."""
        self._check_bounds(address)
        return self._bytes.get(address, 0)

    def write_byte(self, address: int, value: int, label: str = "") -> None:
        """Write one byte, honouring bookkeeping but not protection —
        out-of-region writes are recorded, not blocked."""
        self._check_bounds(address)
        self._bytes[address] = value & 0xFF
        region = self.region_at(address)
        if self._track:
            self.write_log.append(
                WriteRecord(
                    address=address,
                    length=1,
                    region=region.name if region else None,
                    out_of_bounds=region is None,
                    label=label,
                )
            )
        for callback in self._watchpoints.get(address, ()):
            callback(address, value & 0xFF)

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes."""
        self._check_bounds(address, length)
        return bytes(self._bytes.get(address + i, 0) for i in range(length))

    def write(self, address: int, data: bytes, label: str = "") -> None:
        """Write a byte string starting at ``address``."""
        self._check_bounds(address, len(data))
        for offset, byte in enumerate(data):
            self.write_byte(address + offset, byte, label=label)

    # -- word access (little-endian, 32-bit) --------------------------------

    def read_word(self, address: int) -> int:
        """Read an unsigned 32-bit little-endian word."""
        return int.from_bytes(self.read(address, WORD_SIZE), "little")

    def write_word(self, address: int, value: int, label: str = "") -> None:
        """Write an unsigned 32-bit little-endian word."""
        self.write(
            address, (value & 0xFFFFFFFF).to_bytes(WORD_SIZE, "little"), label=label
        )

    # -- strings --------------------------------------------------------------

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated C string (without the terminator)."""
        out = bytearray()
        cursor = address
        while len(out) < limit:
            byte = self.read_byte(cursor)
            if byte == 0:
                break
            out.append(byte)
            cursor += 1
        return bytes(out)

    def write_cstring(self, address: int, data: bytes, label: str = "") -> None:
        """Write ``data`` followed by a NUL terminator."""
        self.write(address, data + b"\x00", label=label)

    # -- audit helpers ----------------------------------------------------------

    def writes_outside(self, region_name: str) -> List[WriteRecord]:
        """Writes logged with a label naming ``region_name`` as intent but
        landing outside it — the raw signal of a buffer overflow."""
        region = self._regions[region_name]
        return [
            record
            for record in self.write_log
            if record.label == region_name
            and not region.contains(record.address)
        ]

    def overlapping_writes(self, start: int, size: int) -> List[WriteRecord]:
        """All logged writes that touched ``[start, start + size)``."""
        return [
            record
            for record in self.write_log
            if record.address < start + size and start < record.address + record.length
        ]

    def snapshot(self, address: int, length: int) -> Tuple[int, bytes]:
        """Capture ``(address, bytes)`` for later consistency comparison."""
        return (address, self.read(address, length))

    def unchanged_since(self, snapshot: Tuple[int, bytes]) -> bool:
        """True when the snapshotted range holds the same bytes now.

        This is exactly the Reference Consistency Check predicate of the
        paper's Figure 8 applied to raw memory.
        """
        address, data = snapshot
        return self.read(address, len(data)) == data


@dataclass
class _RegionCursor:
    """Internal helper for sequential region carving (used by Process)."""

    space: AddressSpace
    cursor: int = field(default=WORD_SIZE)

    def carve(self, name: str, size: int, writable: bool = True) -> Region:
        """Map the next ``size`` bytes as region ``name`` and advance."""
        region = self.space.map_region(name, self.cursor, size, writable)
        self.cursor = region.end
        return region
