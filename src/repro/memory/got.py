"""Global Offset Table model.

The paper's footnote 4: in position-independent code every absolute symbol
lives in the GOT; a GOT lookup resolves the callee each time a library
function is called.  Both headline exploits corrupt a GOT entry —
``setuid()`` in Sendmail (Figure 3) and ``free()`` in NULL HTTPD
(Figure 4) — so that the next call to the library function transfers
control to attacker code (``Mcode``).

The table is backed by the simulated address space: each entry is a
32-bit function-pointer word at a real simulated address, so heap-unlink
or integer-overflow writes can corrupt entries *through memory*, not via
a privileged API.  Loading snapshots the legitimate targets, which is
what the Reference Consistency Check predicate compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .address_space import AddressSpace, WORD_SIZE

__all__ = ["GotEntry", "GlobalOffsetTable", "ControlFlowHijack"]


class ControlFlowHijack(Exception):
    """Raised when a call dispatches through a corrupted GOT entry.

    Carries the attacker-controlled target so harnesses can confirm that
    control reached ``Mcode``.
    """

    def __init__(self, symbol: str, target: int, legitimate: int) -> None:
        super().__init__(
            f"call to {symbol} dispatched to {target:#x} "
            f"(legitimate target {legitimate:#x})"
        )
        self.symbol = symbol
        self.target = target
        self.legitimate = legitimate


@dataclass(frozen=True)
class GotEntry:
    """One GOT slot: a symbol name bound to an entry address whose stored
    word is the function pointer."""

    symbol: str
    address: int
    legitimate_target: int


class GlobalOffsetTable:
    """A loader-initialised table of function-pointer words in memory.

    Parameters
    ----------
    space:
        The address space the table lives in.
    base:
        Start address for the table region; chosen automatically if None.
    """

    REGION_NAME = "got"

    def __init__(self, space: AddressSpace, base: Optional[int] = None,
                 capacity: int = 64) -> None:
        self.space = space
        size = capacity * WORD_SIZE
        if base is None:
            base = space.find_free_range(size)
        self.region = space.map_region(self.REGION_NAME, base, size, writable=True)
        self._entries: Dict[str, GotEntry] = {}
        self._next_slot = 0
        self._capacity = capacity

    # -- loader interface -----------------------------------------------

    def load_symbol(self, symbol: str, target: int) -> GotEntry:
        """Bind ``symbol`` to ``target`` in the next free slot.

        Mirrors program initialisation ("Load addr_setuid to the memory
        during program initialization" in Figure 3): the legitimate target
        is recorded for later consistency checks.
        """
        if symbol in self._entries:
            raise ValueError(f"symbol {symbol!r} already loaded")
        if self._next_slot >= self._capacity:
            raise ValueError("GOT is full")
        address = self.region.start + self._next_slot * WORD_SIZE
        self._next_slot += 1
        self.space.write_word(address, target, label=self.REGION_NAME)
        entry = GotEntry(symbol, address, target)
        self._entries[symbol] = entry
        return entry

    def entry(self, symbol: str) -> GotEntry:
        """The entry record for ``symbol``."""
        return self._entries[symbol]

    def entry_address(self, symbol: str) -> int:
        """Address of the GOT slot for ``symbol`` (what the paper writes
        as ``&addr_setuid`` / ``&addr_free``)."""
        return self._entries[symbol].address

    def symbols(self) -> Iterator[str]:
        """All loaded symbol names."""
        return iter(self._entries)

    # -- runtime interface ------------------------------------------------

    def current_target(self, symbol: str) -> int:
        """The function pointer currently stored for ``symbol`` — read
        from memory, so corruption through any write primitive shows up."""
        return self.space.read_word(self._entries[symbol].address)

    def is_consistent(self, symbol: str) -> bool:
        """Reference Consistency Check: is the stored pointer still the
        loader-bound target?  (pFSM3 of Figure 3 / pFSM4 of Figure 4.)"""
        entry = self._entries[symbol]
        return self.current_target(symbol) == entry.legitimate_target

    def call(self, symbol: str, check_consistency: bool = False) -> int:
        """Dispatch a call through the GOT.

        Returns the legitimate target when the entry is intact.  When the
        entry has been corrupted the behaviour models the two arms of
        pFSM3/pFSM4:

        * ``check_consistency=False`` (the real 2003 implementations) —
          the hidden IMPL_ACPT transition: control transfers to the
          attacker target, signalled by :class:`ControlFlowHijack`.
        * ``check_consistency=True`` (the predicate's IMPL_REJ arm) —
          the call is refused with :class:`ReferenceViolation` semantics
          via ``ValueError``, foiling the exploit.
        """
        entry = self._entries[symbol]
        target = self.current_target(symbol)
        if target == entry.legitimate_target:
            return target
        if check_consistency:
            raise ValueError(
                f"GOT entry for {symbol} changed "
                f"({entry.legitimate_target:#x} -> {target:#x}); call refused"
            )
        raise ControlFlowHijack(symbol, target, entry.legitimate_target)
