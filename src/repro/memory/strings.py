"""C string and buffer routines over the simulated address space.

The elementary activity "copy the string to a buffer" (Observation 1,
activity 2 of the buffer-overflow chain) is realised here.  The unchecked
functions (``strcpy``, ``sprintf_s_append``, ``memcpy`` with an attacker
length) write past the destination region exactly as their C originals
would; the bounds-checked variants (``strncpy``, ``snprintf``-style) are
the defenses the paper cites for that activity (getns/strncpy).

All functions operate on an :class:`~repro.memory.address_space.AddressSpace`
and label their writes with the destination region name when given, so the
audit log can attribute out-of-bounds bytes to the responsible copy.
"""

from __future__ import annotations

from typing import Optional

from .address_space import AddressSpace

__all__ = [
    "strcpy",
    "strncpy",
    "strcat",
    "memcpy",
    "memset",
    "strlen",
    "gets",
    "getns",
]


def strlen(space: AddressSpace, address: int) -> int:
    """Length of the NUL-terminated string at ``address``."""
    return len(space.read_cstring(address))


def strcpy(
    space: AddressSpace, dest: int, src: bytes, label: str = ""
) -> int:
    """Unchecked C ``strcpy``: copies ``src`` plus NUL regardless of the
    destination's capacity.  Returns the number of bytes written.

    This is the vulnerable copy of the classic stack smash (#5960) — the
    caller's buffer size never enters the signature.
    """
    space.write_cstring(dest, src, label=label)
    return len(src) + 1


def strncpy(
    space: AddressSpace, dest: int, src: bytes, count: int, label: str = ""
) -> int:
    """C ``strncpy``: copies at most ``count`` bytes, zero-padding.

    The paper names ``strncpy`` as the elementary-activity-2 defense for
    buffer overflows.  Note the C wart is preserved: when ``len(src) >=
    count`` the result is *not* NUL-terminated.
    """
    if count < 0:
        raise ValueError("strncpy count must be non-negative")
    payload = src[:count]
    space.write(dest, payload, label=label)
    padding = count - len(payload)
    if padding:
        space.write(dest + len(payload), b"\x00" * padding, label=label)
    return count


def strcat(space: AddressSpace, dest: int, src: bytes, label: str = "") -> int:
    """Unchecked C ``strcat``: append ``src`` at the destination's NUL."""
    offset = strlen(space, dest)
    space.write_cstring(dest + offset, src, label=label)
    return offset + len(src) + 1


def memcpy(
    space: AddressSpace, dest: int, src: bytes, count: int, label: str = ""
) -> int:
    """C ``memcpy`` with an explicit (attacker-controllable) count.

    ``count`` larger than ``len(src)`` reads zero-fill, mirroring a read
    past the source; ``count`` is never clamped to the destination.
    """
    if count < 0:
        raise ValueError("memcpy count must be non-negative")
    payload = src[:count] + b"\x00" * max(0, count - len(src))
    space.write(dest, payload, label=label)
    return count


def memset(
    space: AddressSpace, dest: int, byte: int, count: int, label: str = ""
) -> int:
    """C ``memset``."""
    if count < 0:
        raise ValueError("memset count must be non-negative")
    space.write(dest, bytes([byte & 0xFF]) * count, label=label)
    return count


def gets(space: AddressSpace, dest: int, line: bytes, label: str = "") -> int:
    """C ``gets``: the canonical unbounded read into a buffer.

    ``line`` plays the role of stdin input up to the newline; everything
    is copied, no matter the destination size.
    """
    payload = line.split(b"\n", 1)[0]
    space.write_cstring(dest, payload, label=label)
    return len(payload)


def getns(
    space: AddressSpace, dest: int, size: int, line: bytes, label: str = ""
) -> int:
    """Bounded line read (the ``getns`` the paper cites as a defense for
    elementary activity 1): copies at most ``size - 1`` bytes + NUL."""
    if size <= 0:
        raise ValueError("getns size must be positive")
    payload = line.split(b"\n", 1)[0][: size - 1]
    space.write_cstring(dest, payload, label=label)
    return len(payload)


def bounded_copy_fits(dest_size: Optional[int], src_len: int) -> bool:
    """Predicate form of the content/attribute check for a string copy:
    ``length(input) <= size(buffer)`` (pFSM2 of Figure 4)."""
    if dest_size is None:
        return False
    return src_len <= dest_size
