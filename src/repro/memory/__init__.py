"""Simulated process memory: the substrate on which exploits execute.

The paper's exploit consequences are memory effects — GOT corruption,
free-chunk unlink writes, return-address smashes, ``%n`` stores.  This
package reproduces them on a byte-addressable simulated address space
with C integer semantics, so FSM models can be validated against
*executable* exploits rather than prose.
"""

from .address_space import AddressSpace, MemoryFault, Region, WriteRecord, WORD_SIZE
from .faults import (
    CoverageReport,
    FaultInjector,
    FaultKind,
    FaultRecord,
    measure_detection_coverage,
)
from .format_string import (
    FormatDirective,
    FormatResult,
    contains_directives,
    parse_directives,
    vsprintf,
)
from .got import ControlFlowHijack, GlobalOffsetTable, GotEntry
from .heap import (
    BK_OFFSET,
    CHUNK_HEADER_SIZE,
    FD_OFFSET,
    Heap,
    HeapChunk,
    HeapCorruptionDetected,
    HeapError,
    MIN_CHUNK_SIZE,
)
from .integers import (
    CInt,
    Int8,
    Int16,
    Int32,
    Int64,
    UInt8,
    UInt16,
    UInt32,
    UInt64,
    atoi,
    int8,
    int16,
    int32,
    int64,
    strtol,
    uint8,
    uint16,
    uint32,
    uint64,
)
from .process import MCODE_MAGIC, Process
from .stack import CallStack, StackFrame, StackSmashed
from .strings import gets, getns, memcpy, memset, strcat, strcpy, strlen, strncpy

__all__ = [
    "AddressSpace",
    "MemoryFault",
    "Region",
    "WriteRecord",
    "WORD_SIZE",
    "CoverageReport",
    "FaultInjector",
    "FaultKind",
    "FaultRecord",
    "measure_detection_coverage",
    "FormatDirective",
    "FormatResult",
    "contains_directives",
    "parse_directives",
    "vsprintf",
    "ControlFlowHijack",
    "GlobalOffsetTable",
    "GotEntry",
    "Heap",
    "HeapChunk",
    "HeapCorruptionDetected",
    "HeapError",
    "BK_OFFSET",
    "FD_OFFSET",
    "CHUNK_HEADER_SIZE",
    "MIN_CHUNK_SIZE",
    "CInt",
    "Int8",
    "Int16",
    "Int32",
    "Int64",
    "UInt8",
    "UInt16",
    "UInt32",
    "UInt64",
    "atoi",
    "strtol",
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "MCODE_MAGIC",
    "Process",
    "CallStack",
    "StackFrame",
    "StackSmashed",
    "gets",
    "getns",
    "memcpy",
    "memset",
    "strcat",
    "strcpy",
    "strlen",
    "strncpy",
]
