"""The cluster coordinator: the dist work queue, exposed over TCP.

One coordinator serves many sweeps and many workers.  Sweeps enter
through :meth:`ClusterCoordinator.run_chunks` — the scheduler hands
over wire-ready chunks (lists of ``(task index, serialized task)``
rows, exactly the payloads :func:`repro.core.dist._chunk_worker`
executes) and blocks until every chunk has an outcome.  Workers enter
through the line-JSON TCP protocol (:mod:`repro.cluster.protocol`):
they claim chunks, execute them on their local warm pools, and stream
results back.  In between sits one :class:`~repro.cluster.lease.ChunkLedger`
per job: every claim carries a lease, heartbeats renew it, and a
reaper thread reclaims chunks from workers that stop renewing —
plus a fast path that reclaims immediately when a worker's connection
drops (a SIGKILLed agent is detected in milliseconds, not a lease
timeout later).

**Liveness without workers.**  The coordinator never strands a sweep:
while no worker is connected, the submitting thread itself claims
chunks and runs them inline (``cluster.chunks.inline``), so a cluster
sweep with zero workers — or one whose every worker died mid-run —
degrades to local execution and still completes.  Chunks whose retries
are exhausted surface back to the scheduler, which falls back to its
usual inline per-task path.  Either way the result set is bit-for-bit
what ``backend="process"`` would have produced.

**Observability.**  Counters are kept unconditionally in the
coordinator (:meth:`snapshot` — the CLI's ``--json`` cluster block and
the recovery tests read them), mirrored to the obs registry under
``cluster.*`` when it is enabled, and optionally forwarded to a
:class:`repro.serve.stats.ServeStats` so an embedding server's
Prometheus exposition grows ``repro_serve_cluster_*`` families.  When
the submitting sweep runs under an ambient trace, each chunk ships a
``traceparent`` continuing that trace; the worker's finished spans come
back with the results and are replayed into this process's sinks under
a per-chunk ``cluster.chunk`` span — one timeline across hosts.
"""

from __future__ import annotations

import itertools
import pickle
import socket
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from .. import faults as _faults
from ..obs import DEFAULT as _OBS
from ..obs.trace import TraceContext, emit_span, mint_span_id
from .journal import SweepJournal, job_digest
from .lease import ChunkLedger
from .protocol import (
    STATUS_CHUNK,
    STATUS_ERROR,
    STATUS_IDLE,
    STATUS_OK,
    ClusterProtocolError,
    decode_message,
    decode_blob,
    encode_line,
    encode_payload,
    read_line,
)

__all__ = ["ClusterCoordinator"]

#: How often the reaper scans for expired leases (seconds).
_REAP_INTERVAL = 0.05

#: Idle workers are told to poll again after this many milliseconds.
_IDLE_RETRY_MS = 50

#: A worker silent for this many lease timeouts is dropped outright
#: (backstop for connections that die without a FIN).
_STALE_FACTOR = 3.0


class _Job:
    """One ``run_chunks`` call in flight: its ledger and completion
    signal, plus the submitting sweep's trace context and (when the
    coordinator journals) its journal digest."""

    __slots__ = ("id", "ledger", "trace_ctx", "done", "journal_digest")

    def __init__(self, job_id: int, ledger: ChunkLedger,
                 trace_ctx: Optional[TraceContext],
                 journal_digest: Optional[str] = None) -> None:
        self.id = job_id
        self.ledger = ledger
        self.trace_ctx = trace_ctx
        self.done = threading.Event()
        self.journal_digest = journal_digest


class ClusterCoordinator:
    """Serve the chunked work queue to worker agents over loopback or
    LAN TCP.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port; read the
        bound address back from :attr:`address` after :meth:`start`.
    lease_timeout:
        Seconds a claimed chunk may go un-renewed before it is
        reclaimed.  Workers are told to heartbeat at a quarter of this.
    max_retries:
        Default per-chunk reclaim budget (mirrors the process
        scheduler's crash-retry bound); :meth:`run_chunks` can override
        per job.
    stats:
        Optional :class:`repro.serve.stats.ServeStats` — every counter
        movement is forwarded (``cluster.*``), which puts
        ``repro_serve_cluster_*`` families on the embedding server's
        Prometheus exposition.
    journal:
        Optional path to a :class:`~repro.cluster.journal.SweepJournal`.
        Every accepted chunk outcome is appended crash-safely, and a
        job submitted with the same content digest (same chunks, same
        bytes) pre-completes its journaled chunks — a coordinator
        killed mid-sweep resumes re-executing only in-flight work
        (``repro sweep --backend cluster --journal PATH``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 lease_timeout: float = 10.0, max_retries: int = 2,
                 stats: Optional[Any] = None,
                 journal: Optional[Any] = None) -> None:
        self._host = host
        self._port = port
        self.lease_timeout = lease_timeout
        self.max_retries = max_retries
        self._stats = stats
        self._journal: Optional[SweepJournal] = (
            None if journal is None
            else journal if isinstance(journal, SweepJournal)
            else SweepJournal(journal))
        self._lock = threading.RLock()
        self._jobs: "OrderedDict[int, _Job]" = OrderedDict()
        self._job_ids = itertools.count(1)
        self._workers: Dict[str, Dict[str, Any]] = {}
        #: ``(job id, chunk id)`` → claim-time metadata (chunk span id,
        #: monotonic/wall claim stamps, attempt) for span emission.
        self._lease_meta: Dict[Tuple[int, int], Dict[str, Any]] = {}
        self._counters: Dict[str, int] = {}
        self._closed = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []

    # -- lifecycle --------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and spin up the accept + reaper threads.
        Returns the bound ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._listener = listener
        self._port = listener.getsockname()[1]
        accept = threading.Thread(target=self._accept_loop,
                                  name="cluster-accept", daemon=True)
        reaper = threading.Thread(target=self._reap_loop,
                                  name="cluster-reaper", daemon=True)
        self._threads = [accept, reaper]
        accept.start()
        reaper.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    @property
    def port(self) -> int:
        return self._port

    def close(self) -> None:
        """Stop accepting, drop every connection, wake pending jobs.

        Chunks still unfinished surface to their submitters as failed
        (the scheduler's inline fallback picks them up) — closing the
        fabric degrades sweeps, never loses them.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
            jobs = list(self._jobs.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for job in jobs:
            job.done.set()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ClusterCoordinator":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- counters ---------------------------------------------------------

    def _incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
        if _OBS.enabled:
            _OBS.incr(f"cluster.{name}", n)
        if self._stats is not None:
            self._stats.incr(f"cluster.{name}", n)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """Counters plus live gauges (connected workers, outstanding
        leases, unclaimed chunks)."""
        with self._lock:
            counters = dict(self._counters)
            workers = len(self._workers)
            leases = sum(len(job.ledger.leases())
                         for job in self._jobs.values())
            pending = sum(job.ledger.pending()
                          for job in self._jobs.values())
        return {"counters": counters, "workers": workers,
                "leases": leases, "pending_chunks": pending}

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def wait_for_workers(self, count: int,
                         timeout: Optional[float] = None) -> bool:
        """Block until ``count`` workers are connected (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.worker_count() < count:
            if self._closed.is_set():
                return False
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    # -- job submission (the scheduler side) ------------------------------

    def run_chunks(
        self,
        chunks: List[List[Tuple[int, bytes]]],
        *,
        max_retries: Optional[int] = None,
    ) -> Tuple[Dict[int, Any], List[int]]:
        """Dispatch one sweep's chunks across the fabric and block until
        every chunk has an outcome.

        ``chunks`` are wire-ready payload rows — ``(task index,
        serialized task bytes)`` — exactly what the local scheduler
        would submit to its pool.  Returns ``(results, failed)``:
        ``results`` maps task index → finding for every task whose
        chunk completed anywhere on the fabric, ``failed`` lists the
        task indexes of retry-exhausted (or fabric-closed) chunks, for
        the caller's inline fallback.

        While no worker is connected the submitting thread executes
        chunks itself, so completion never depends on external agents.

        With a journal configured, chunks whose outcomes were journaled
        by a previous (killed) coordinator under the same content
        digest are pre-completed — only unjournaled work executes.
        """
        retries = self.max_retries if max_retries is None else max_retries
        trace_ctx = _OBS.current_trace() if _OBS.enabled else None
        ledger = ChunkLedger(
            {cid: rows for cid, rows in enumerate(chunks)},
            max_retries=retries)
        digest: Optional[str] = None
        resumed = 0
        if self._journal is not None:
            digest = job_digest(chunks)
            for chunk_id, outcome in sorted(
                    self._journal.load(digest).items()):
                if 0 <= chunk_id < len(chunks) \
                        and ledger.complete(chunk_id, outcome):
                    resumed += 1
        with self._lock:
            job = _Job(next(self._job_ids), ledger, trace_ctx,
                       journal_digest=digest)
            self._jobs[job.id] = job
        self._incr("jobs.submitted")
        if resumed:
            self._incr("journal.resumed", resumed)
            if _OBS.enabled:
                _OBS.event("cluster.journal.resumed", chunks=resumed,
                           job=digest)
        if ledger.done:
            job.done.set()
        try:
            while not job.done.is_set() and not self._closed.is_set():
                if self.worker_count() == 0 and self._run_one_inline(job):
                    continue
                job.done.wait(0.02)
        finally:
            with self._lock:
                self._jobs.pop(job.id, None)
        self._incr("jobs.completed")
        results: Dict[int, Any] = {}
        for outcome in job.ledger.outcomes.values():
            for index, finding in outcome:
                results[index] = finding
        every = {index for rows in chunks for index, _raw in rows}
        failed = sorted(every - set(results))
        return results, failed

    def _run_one_inline(self, job: _Job) -> bool:
        """Claim and execute one chunk in the submitting thread (the
        zero-workers degrade path).  ``True`` if a chunk ran."""
        from ..core.dist import _chunk_worker

        with self._lock:
            lease = job.ledger.claim(
                "coordinator-inline", now=time.monotonic(),
                ttl=float("inf"))
            if lease is None:
                return False
            payload = job.ledger.payload(lease.chunk_id)
        self._incr("chunks.claimed")
        try:
            pairs = _chunk_worker(payload)
        except Exception:
            with self._lock:
                disposition = job.ledger.release(lease.chunk_id)
                if job.ledger.done:
                    job.done.set()
            if disposition == "exhausted":
                self._incr("chunks.failed")
            return True
        with self._lock:
            accepted = job.ledger.complete(lease.chunk_id, pairs)
            if job.ledger.done:
                job.done.set()
        if accepted:
            self._incr("chunks.inline")
            self._incr("chunks.completed")
            self._journal_outcome(job, lease.chunk_id, pairs)
        return True

    def _journal_outcome(self, job: _Job, chunk_id: int,
                         pairs: Any) -> None:
        """Persist one accepted chunk outcome (outside the lock — the
        journal serializes its own appends)."""
        if self._journal is None or job.journal_digest is None:
            return
        if self._journal.record(job.journal_digest, chunk_id, pairs):
            self._incr("journal.appends")
        else:
            self._incr("journal.write_errors")

    # -- the TCP face -----------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return
            with self._lock:
                self._conns.append(conn)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"cluster-conn-{addr[1]}", daemon=True)
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        worker_id: Optional[str] = None
        clean = False
        reader = conn.makefile("rb")
        try:
            while not self._closed.is_set():
                try:
                    line = read_line(reader)
                except (ClusterProtocolError, OSError):
                    break
                if line is None:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = decode_message(line)
                except ClusterProtocolError as exc:
                    conn.sendall(encode_line(
                        {"status": STATUS_ERROR, "message": str(exc)}))
                    continue
                if message["op"] == "hello":
                    worker_id = message["worker"]
                if message["op"] == "bye":
                    clean = True
                try:
                    response = self._dispatch(message)
                except Exception as exc:  # never kill the connection
                    response = {"status": STATUS_ERROR,
                                "message": f"{type(exc).__name__}: {exc}"}
                try:
                    data = encode_line(response)
                    # Fault taps on the response path: a dropped send
                    # kills the connection (the worker reconnects); a
                    # partial write leaves a torn frame on the wire and
                    # then kills it.  Either way the EOF fast path
                    # reclaims this worker's leases.
                    if _faults.fire("cluster.send.drop") is not None:
                        raise OSError("injected: cluster.send.drop")
                    if _faults.fire("cluster.send.partial") is not None:
                        conn.sendall(data[:max(1, len(data) // 2)])
                        raise OSError("injected: cluster.send.partial")
                    conn.sendall(data)
                except OSError:
                    self._undeliverable(response)
                    break
                if message["op"] == "bye":
                    break
        finally:
            try:
                reader.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            if worker_id is not None:
                self._connection_closed(worker_id, clean)

    def _undeliverable(self, response: Dict[str, Any]) -> None:
        """A response failed to send.  If it carried a chunk assignment
        the worker never learned of the lease — release it now, or the
        claimant's heartbeats (which renew every lease under its worker
        id, including ones it never heard about) keep the orphan alive
        forever and the sweep never completes.  The reconnect race makes
        the EOF fast path insufficient here: by the time this
        connection's cleanup runs, the worker may already be back on a
        fresh connection, so ``_connection_closed`` sees a live worker
        and releases nothing."""
        if response.get("status") != STATUS_CHUNK:
            return
        job_id = response.get("job")
        chunk_id = response.get("chunk")
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            lease = next((lease for lease in job.ledger.leases()
                          if lease.chunk_id == chunk_id), None)
            if lease is None or lease.token != response.get("lease"):
                return  # already completed, reaped, or re-claimed
            disposition = job.ledger.release(chunk_id)
            self._lease_meta.pop((job_id, chunk_id), None)
            if job.ledger.done:
                job.done.set()
        self._incr("chunks.undelivered")
        if disposition == "requeued":
            self._incr("chunks.reclaimed")
        elif disposition == "exhausted":
            self._incr("chunks.failed")

    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message["op"]
        if op == "hello":
            return self._op_hello(message)
        if op == "claim":
            return self._op_claim(message)
        if op == "result":
            return self._op_result(message)
        if op == "fail":
            return self._op_fail(message)
        if op == "heartbeat":
            return self._op_heartbeat(message)
        if op == "bye":
            return self._op_bye(message)
        return self._op_ping(message)

    def _op_hello(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = message["worker"]
        with self._lock:
            record = self._workers.get(worker)
            if record is None:
                record = {"pid": message.get("pid"),
                          "host": message.get("host"),
                          "slots": message.get("slots", 1),
                          "conns": 0}
                self._workers[worker] = record
                joined = True
            else:
                joined = False
            record["conns"] += 1
            record["last_seen"] = time.monotonic()
        if joined:
            self._incr("workers.joined")
            if _OBS.enabled:
                _OBS.event("cluster.worker.joined", worker=worker,
                           pid=message.get("pid"),
                           host=message.get("host"))
        return {"status": STATUS_OK,
                "lease_timeout": self.lease_timeout,
                "heartbeat_interval": self.lease_timeout / 4.0}

    def _touch(self, worker: str) -> None:
        record = self._workers.get(worker)
        if record is not None:
            record["last_seen"] = time.monotonic()

    def _op_claim(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = message["worker"]
        with self._lock:
            self._touch(worker)
            now = time.monotonic()
            active = False
            for job in self._jobs.values():
                if job.ledger.remaining():
                    active = True
                lease = job.ledger.claim(worker, now=now,
                                         ttl=self.lease_timeout)
                if lease is None:
                    continue
                rows = job.ledger.payload(lease.chunk_id)
                traceparent = None
                span_hex = None
                if job.trace_ctx is not None:
                    # Minted at claim so the worker's spans can parent
                    # under the chunk span before it is emitted.
                    span_hex = mint_span_id()
                    traceparent = TraceContext(
                        job.trace_ctx.trace_id, span_hex,
                        job.trace_ctx.sampled).to_traceparent()
                lease_meta = {"span_hex": span_hex,
                              "claimed_mono": now,
                              "claimed_wall": _OBS._wall(),
                              "attempt": lease.attempt}
                self._lease_meta[(job.id, lease.chunk_id)] = lease_meta
                payload = encode_payload(rows)
                shipped = sum(len(raw) for _i, raw in rows)
                break
            else:
                return {"status": STATUS_IDLE, "retry_ms": _IDLE_RETRY_MS,
                        "active": active}
        self._incr("chunks.claimed")
        self._incr("bytes.shipped", shipped)
        return {"status": STATUS_CHUNK, "job": job.id,
                "chunk": lease.chunk_id, "lease": lease.token,
                "attempt": lease.attempt, "traceparent": traceparent,
                "payload": payload}

    def _op_result(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = message["worker"]
        job_id = message.get("job")
        chunk_id = message.get("chunk")
        data = message.get("data")
        if not isinstance(data, str):
            return {"status": STATUS_ERROR,
                    "message": "result requires base64 'data'"}
        raw = decode_blob(data)
        try:
            outcome = pickle.loads(raw)
        except Exception:
            return {"status": STATUS_ERROR,
                    "message": "result payload does not unpickle"}
        if isinstance(outcome, tuple) and len(outcome) == 2:
            pairs, remote_spans = outcome
        else:
            pairs, remote_spans = outcome, ()
        with self._lock:
            self._touch(worker)
            job = self._jobs.get(job_id)
            accepted = (job is not None
                        and job.ledger.complete(chunk_id, pairs))
            meta = self._lease_meta.pop((job_id, chunk_id), None)
            if accepted and job is not None and job.ledger.done:
                job.done.set()
        self._incr("bytes.received", len(raw))
        if not accepted:
            # Late duplicate after a reclaim: identical by determinism,
            # so dropping it loses nothing.
            self._incr("chunks.duplicate")
            return {"status": STATUS_OK, "accepted": False}
        self._incr("chunks.completed")
        if job is not None:
            self._journal_outcome(job, chunk_id, pairs)
        if meta is not None and meta["span_hex"] is not None \
                and job is not None and job.trace_ctx is not None:
            elapsed = time.monotonic() - meta["claimed_mono"]
            emit_span(_OBS, "cluster.chunk", job.trace_ctx,
                      meta["claimed_wall"], elapsed,
                      span_hex=meta["span_hex"], worker=worker,
                      tasks=len(pairs), attempt=meta["attempt"])
            for event in remote_spans:
                _OBS._emit(event)
        if _OBS.enabled:
            _OBS.event("cluster.chunk", worker=worker, tasks=len(pairs))
        return {"status": STATUS_OK, "accepted": True}

    def _op_fail(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = message["worker"]
        job_id = message.get("job")
        chunk_id = message.get("chunk")
        with self._lock:
            self._touch(worker)
            job = self._jobs.get(job_id)
            if job is None:
                return {"status": STATUS_OK, "requeued": False}
            disposition = job.ledger.release(chunk_id)
            self._lease_meta.pop((job_id, chunk_id), None)
            if job.ledger.done:
                job.done.set()
        if disposition == "requeued":
            self._incr("chunks.reclaimed")
        elif disposition == "exhausted":
            self._incr("chunks.failed")
        if _OBS.enabled:
            _OBS.event("cluster.chunk.failed", worker=worker,
                       error=message.get("error"),
                       disposition=disposition)
        return {"status": STATUS_OK,
                "requeued": disposition == "requeued"}

    def _op_heartbeat(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = message["worker"]
        with self._lock:
            self._touch(worker)
            now = time.monotonic()
            renewed = sum(
                job.ledger.renew(worker, now=now, ttl=self.lease_timeout)
                for job in self._jobs.values())
        self._incr("heartbeats")
        return {"status": STATUS_OK, "renewed": renewed}

    def _op_bye(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"status": STATUS_OK}

    def _op_ping(self, message: Dict[str, Any]) -> Dict[str, Any]:
        snap = self.snapshot()
        return {"status": STATUS_OK, "workers": snap["workers"],
                "leases": snap["leases"],
                "pending_chunks": snap["pending_chunks"]}

    # -- failure detection ------------------------------------------------

    def _connection_closed(self, worker: str, clean: bool) -> None:
        """A worker connection dropped: release its leases immediately
        (the fast recovery path — no need to wait out the lease)."""
        with self._lock:
            record = self._workers.get(worker)
            if record is None:
                return
            record["conns"] -= 1
            if record["conns"] > 0:
                return
            del self._workers[worker]
            reclaimed = self._release_worker_locked(worker)
        if not clean:
            self._incr("workers.lost")
            if _OBS.enabled:
                _OBS.event("cluster.worker.lost", worker=worker,
                           reclaimed=reclaimed)

    def _release_worker_locked(self, worker: str) -> int:
        """Requeue every chunk ``worker`` holds.  Caller holds the
        lock; returns how many chunks were reclaimed."""
        reclaimed = 0
        failed = 0
        for job in self._jobs.values():
            for chunk_id, disposition in \
                    job.ledger.release_claimant(worker):
                self._lease_meta.pop((job.id, chunk_id), None)
                if disposition == "requeued":
                    reclaimed += 1
                elif disposition == "exhausted":
                    failed += 1
            if job.ledger.done:
                job.done.set()
        if reclaimed:
            self._counters["chunks.reclaimed"] = \
                self._counters.get("chunks.reclaimed", 0) + reclaimed
            if _OBS.enabled:
                _OBS.incr("cluster.chunks.reclaimed", reclaimed)
            if self._stats is not None:
                self._stats.incr("cluster.chunks.reclaimed", reclaimed)
        if failed:
            self._counters["chunks.failed"] = \
                self._counters.get("chunks.failed", 0) + failed
            if _OBS.enabled:
                _OBS.incr("cluster.chunks.failed", failed)
            if self._stats is not None:
                self._stats.incr("cluster.chunks.failed", failed)
        return reclaimed

    def _reap_loop(self) -> None:
        while not self._closed.wait(_REAP_INTERVAL):
            now = time.monotonic()
            expired_total = 0
            with self._lock:
                for job in self._jobs.values():
                    for chunk_id, claimant, disposition in \
                            job.ledger.reap(now):
                        if claimant == "coordinator-inline":
                            continue  # inline leases never expire
                        self._lease_meta.pop((job.id, chunk_id), None)
                        expired_total += 1
                        name = ("chunks.reclaimed"
                                if disposition == "requeued"
                                else "chunks.failed")
                        self._counters[name] = \
                            self._counters.get(name, 0) + 1
                        if _OBS.enabled:
                            _OBS.incr(f"cluster.{name}")
                        if self._stats is not None:
                            self._stats.incr(f"cluster.{name}")
                    if job.ledger.done:
                        job.done.set()
                stale_cutoff = now - _STALE_FACTOR * self.lease_timeout
                stale = [w for w, rec in self._workers.items()
                         if rec.get("last_seen", now) < stale_cutoff]
                for worker in stale:
                    del self._workers[worker]
                    self._release_worker_locked(worker)
            if expired_total:
                self._incr("leases.expired", expired_total)
                if _OBS.enabled:
                    _OBS.event("cluster.leases.expired", n=expired_total)
            for worker in stale if not self._closed.is_set() else ():
                self._incr("workers.lost")
                if _OBS.enabled:
                    _OBS.event("cluster.worker.stale", worker=worker)
