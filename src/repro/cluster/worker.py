"""The cluster worker agent: claim chunks, execute locally, stream back.

One agent process serves one coordinator.  It opens a single TCP
connection (every RPC is one request line and one response line under a
lock — the serve framing), announces itself with ``hello``, and runs
``slots`` claim threads plus a heartbeat thread:

* each slot thread loops *claim → execute → result*.  Execution is
  byte-identical to the local process backend: the chunk payload is the
  same ``(task index, pickled task)`` rows, handed to the same
  :func:`repro.core.dist._chunk_worker`, on the agent's own warm
  process pool (``dist._get_pool``) so slots scan in parallel instead
  of serializing on the agent's GIL.  A broken pool is torn down and
  the chunk retried on a fresh one, then inline in the agent — the
  local mirror of dist's crash-retry contract.  A chunk that still
  fails is reported with ``fail`` so the coordinator requeues it under
  its bounded-retry budget;
* the heartbeat thread renews the agent's leases at the interval the
  coordinator announced in its ``hello`` response, so a *busy* worker
  is never mistaken for a dead one mid-chunk.

Trace contexts ride along: a claimed chunk may carry a ``traceparent``
(the submitting sweep's trace), which the agent passes straight through
to ``_chunk_worker`` — the worker process records its spans under that
context and they ship back inside the pickled result for the
coordinator to replay.

Failure behaviour is deliberately asymmetric.  Failing to *reach* the
coordinator at startup is an operator error (wrong address, service not
up): :meth:`ClusterWorker.run` raises :class:`WorkerConnectError` after
``connect_timeout`` seconds — the CLI turns that into exit code 2, the
same contract as ``repro query --connect-timeout``.  Losing the
coordinator *after* having worked for it is normal lifecycle (a
``repro sweep --listen`` fabric dies with its sweep): the agent retries
for the same window, then exits cleanly.
"""

from __future__ import annotations

import importlib
import os
import pickle
import socket
import threading
import time
import uuid
from typing import Any, Dict, Optional, Sequence

from .. import faults as _faults
from ..obs import DEFAULT as _OBS
from .protocol import (
    STATUS_CHUNK,
    STATUS_IDLE,
    ClusterProtocolError,
    decode_payload,
    encode_blob,
    encode_line,
    read_line,
)

__all__ = ["ClusterWorker", "WorkerConnectError", "ChunkTimeout"]


class WorkerConnectError(ConnectionError):
    """The coordinator could not be reached within the connect
    timeout."""


class ChunkTimeout(RuntimeError):
    """A chunk blew through the worker's hard execution deadline.

    Reported to the coordinator as a ``fail`` — the ledger's bounded
    retries take over, so a hung predicate costs one deadline instead
    of holding its lease alive forever through heartbeats."""


class ClusterWorker:
    """One worker agent: local execution slots for a remote queue.

    Parameters
    ----------
    host, port:
        The coordinator's address.
    slots:
        Concurrent chunk claims (and the width of the local warm pool).
    inline:
        Execute chunks in the slot thread instead of the local process
        pool.  Slower (GIL-bound) but with zero subprocesses — used by
        in-process tests and the recovery suite, where SIGKILLing the
        agent must kill the execution with it.
    connect_timeout:
        Seconds to keep retrying the initial connect before raising
        :class:`WorkerConnectError`; also the patience window for
        reconnecting after the coordinator goes away mid-run.
    preload:
        Module names imported before execution starts — the hook for
        registering application predicates
        (:func:`repro.core.predspec.named_predicate`) that shipped
        tasks resolve by name.
    chunk_timeout:
        Optional hard per-chunk execution deadline in seconds
        (``repro worker --chunk-timeout``).  Without it a hung
        predicate holds its lease alive forever (heartbeats renew at
        lease/4 no matter what the slot is doing); with it the chunk is
        killed — pool workers are terminated outright, inline execution
        is abandoned — and reported as ``fail`` so the coordinator's
        bounded retries reassign it.
    """

    def __init__(self, host: str, port: int, *, slots: int = 2,
                 inline: bool = False, connect_timeout: float = 10.0,
                 rpc_timeout: float = 120.0, poll_interval: float = 0.05,
                 preload: Sequence[str] = (),
                 worker_id: Optional[str] = None,
                 chunk_timeout: Optional[float] = None) -> None:
        self.host = host
        self.port = port
        self.slots = max(1, slots)
        self.inline = inline
        self.connect_timeout = connect_timeout
        self.rpc_timeout = rpc_timeout
        self.poll_interval = poll_interval
        self.preload = tuple(preload)
        self.chunk_timeout = chunk_timeout
        self.id = worker_id or f"w-{uuid.uuid4().hex[:12]}"
        self.heartbeat_interval = 2.0
        self.chunks_done = 0
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[Any] = None
        self._rpc_lock = threading.Lock()
        self._stop = threading.Event()
        self._ever_connected = False
        self._threads: list = []
        self._run_thread: Optional[threading.Thread] = None

    # -- connection management -------------------------------------------

    def _connect_once(self, remaining: float) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=max(0.1, min(2.0, remaining)))
        sock.settimeout(self.rpc_timeout)
        return sock

    def _connect_locked(self) -> bool:
        """(Re)establish the coordinator connection and say hello.
        Caller holds the RPC lock.  ``False`` when the window ran out."""
        deadline = time.monotonic() + self.connect_timeout
        last_error: Optional[Exception] = None
        while not self._stop.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                sock = self._connect_once(remaining)
            except OSError as exc:
                last_error = exc
                time.sleep(min(0.2, max(0.0, deadline - time.monotonic())))
                continue
            self._sock = sock
            self._reader = sock.makefile("rb")
            try:
                response = self._exchange_locked(
                    {"op": "hello", "worker": self.id, "pid": os.getpid(),
                     "host": socket.gethostname(), "slots": self.slots})
            except (OSError, ValueError, ClusterProtocolError) as exc:
                last_error = exc
                self._teardown_locked()
                continue
            interval = response.get("heartbeat_interval")
            if isinstance(interval, (int, float)) and interval > 0:
                self.heartbeat_interval = float(interval)
            self._ever_connected = True
            return True
        if not self._ever_connected:
            raise WorkerConnectError(
                f"cannot connect to coordinator at "
                f"{self.host}:{self.port} within "
                f"{self.connect_timeout:.1f}s"
                + (f": {last_error}" if last_error else ""))
        return False

    def _teardown_locked(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None

    def _exchange_locked(self, message: Dict[str, Any]) -> Dict[str, Any]:
        assert self._sock is not None and self._reader is not None
        data = encode_line(message)
        # Request-side fault taps (the recv-side taps live in
        # read_line): a dropped/partial send looks like a dead
        # coordinator and exercises _rpc's reconnect-and-retry.
        if _faults.fire("cluster.send.drop") is not None:
            raise OSError("injected: cluster.send.drop")
        if _faults.fire("cluster.send.partial") is not None:
            self._sock.sendall(data[:max(1, len(data) // 2)])
            raise OSError("injected: cluster.send.partial")
        self._sock.sendall(data)
        line = read_line(self._reader)
        if line is None:
            raise OSError("coordinator closed the connection")
        import json

        return json.loads(line)

    def _rpc(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """One request/response round-trip; reconnects once on a dead
        socket.  ``None`` means the coordinator is gone for good (the
        agent should wind down)."""
        with self._rpc_lock:
            if self._sock is None:
                if not self._connect_locked():
                    self._stop.set()
                    return None
            try:
                return self._exchange_locked(message)
            except (OSError, ValueError, ClusterProtocolError):
                self._teardown_locked()
                if self._stop.is_set():
                    return None
                if not self._connect_locked():
                    self._stop.set()
                    return None
                try:
                    return self._exchange_locked(message)
                except (OSError, ValueError, ClusterProtocolError):
                    self._teardown_locked()
                    self._stop.set()
                    return None

    # -- chunk execution --------------------------------------------------

    def _execute(self, payload: Any,
                 traceparent: Optional[str]) -> Any:
        """Run one chunk exactly like a local pool worker would,
        optionally under the hard ``chunk_timeout`` deadline.

        Without a deadline this is a straight call into
        :meth:`_execute_now`.  With one, execution runs on a watchdog
        thread: on expiry the warm pool's processes are terminated
        (``dist.kill_pool`` — the hung scan dies with them), inline
        execution is abandoned on its daemon thread, and
        :class:`ChunkTimeout` propagates so the chunk is failed back to
        the coordinator.
        """
        if self.chunk_timeout is None:
            return self._execute_now(payload, traceparent)
        from ..core import dist

        box: Dict[str, Any] = {}
        cancelled = threading.Event()

        def target() -> None:
            try:
                box["result"] = self._execute_now(payload, traceparent,
                                                  cancelled)
            except BaseException as exc:
                box["error"] = exc

        runner = threading.Thread(target=target, daemon=True,
                                  name="cluster-chunk-exec")
        runner.start()
        runner.join(self.chunk_timeout)
        if runner.is_alive():
            cancelled.set()
            if not self.inline:
                dist.kill_pool()
            if _OBS.enabled:
                _OBS.incr("cluster.worker.chunk_timeouts")
                _OBS.event("cluster.worker.chunk_timeout",
                           worker=self.id, seconds=self.chunk_timeout)
            raise ChunkTimeout(
                f"chunk exceeded the {self.chunk_timeout:.1f}s hard "
                f"deadline; execution killed")
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _execute_now(self, payload: Any, traceparent: Optional[str],
                     cancelled: Optional[threading.Event] = None) -> Any:
        """Run one chunk exactly like a local pool worker would.

        Pool path mirrors dist's crash-retry contract: broken pool →
        fresh pool → inline.  Exceptions from a *healthy* execution
        propagate to the caller (reported as ``fail``).  A set
        ``cancelled`` event (the watchdog expired and killed the pool)
        stops the retry ladder — the chunk is already being failed.
        """
        from ..core import dist

        rule = _faults.fire("worker.chunk.crash")
        if rule is not None:
            raise _faults.InjectedFault("worker.chunk.crash")
        rule = _faults.fire("worker.chunk.hang") \
            or _faults.fire("worker.chunk.slow")
        if rule is not None:
            _faults.sleep_ms(rule)
        if self.inline:
            return dist._chunk_worker(payload, traceparent)
        from concurrent.futures.process import BrokenProcessPool

        for attempt in range(2):
            pool = dist._get_pool(self.slots)
            try:
                future = pool.submit(dist._chunk_worker, payload,
                                     traceparent)
                return future.result()
            except BrokenProcessPool:
                if cancelled is not None and cancelled.is_set():
                    raise ChunkTimeout("execution cancelled by the "
                                       "chunk deadline watchdog")
                dist.shutdown_pool()
                if attempt == 0:
                    continue
        return dist._chunk_worker(payload, traceparent)

    def _slot_loop(self) -> None:
        while not self._stop.is_set():
            response = self._rpc({"op": "claim", "worker": self.id})
            if response is None:
                return
            status = response.get("status")
            if status == STATUS_CHUNK:
                self._handle_chunk(response)
                continue
            if status == STATUS_IDLE:
                retry_ms = response.get("retry_ms", 50)
                self._stop.wait(max(self.poll_interval,
                                    float(retry_ms) / 1000.0))
                continue
            # Protocol error: back off rather than spin.
            self._stop.wait(self.poll_interval)

    def _handle_chunk(self, response: Dict[str, Any]) -> None:
        job = response.get("job")
        chunk = response.get("chunk")
        lease = response.get("lease")
        traceparent = response.get("traceparent")
        try:
            payload = decode_payload(response.get("payload"))
            outcome = self._execute(payload, traceparent)
        except Exception as exc:
            self._rpc({"op": "fail", "worker": self.id, "job": job,
                       "chunk": chunk, "lease": lease,
                       "error": f"{type(exc).__name__}: {exc}"})
            return
        data = encode_blob(pickle.dumps(outcome))
        reply = self._rpc({"op": "result", "worker": self.id, "job": job,
                           "chunk": chunk, "lease": lease, "data": data})
        if reply is not None:
            self.chunks_done += 1

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            if self._rpc({"op": "heartbeat", "worker": self.id}) is None:
                return

    # -- lifecycle --------------------------------------------------------

    def run(self) -> int:
        """Serve the coordinator until :meth:`stop` or it goes away.

        Raises :class:`WorkerConnectError` when the coordinator was
        never reachable; returns 0 otherwise (losing a coordinator that
        we did work for is a clean end of life).
        """
        for module in self.preload:
            importlib.import_module(module)
        with self._rpc_lock:
            self._connect_locked()  # raises WorkerConnectError
        if _OBS.enabled:
            _OBS.event("cluster.worker.started", worker=self.id,
                       coordinator=f"{self.host}:{self.port}",
                       slots=self.slots)
        self._threads = [
            threading.Thread(target=self._slot_loop,
                             name=f"cluster-slot-{n}", daemon=True)
            for n in range(self.slots)
        ]
        self._threads.append(threading.Thread(
            target=self._heartbeat_loop, name="cluster-heartbeat",
            daemon=True))
        for thread in self._threads:
            thread.start()
        for thread in self._threads:
            while thread.is_alive():
                thread.join(timeout=0.2)
        with self._rpc_lock:
            if self._sock is not None:
                try:
                    self._exchange_locked(
                        {"op": "bye", "worker": self.id})
                except (OSError, ValueError, ClusterProtocolError):
                    pass
                self._teardown_locked()
        return 0

    def start(self) -> None:
        """Run the agent on a background thread (tests, embedding)."""
        self._run_thread = threading.Thread(
            target=self.run, name=f"cluster-worker-{self.id}",
            daemon=True)
        self._run_thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Finish in-flight chunks, say goodbye, stop claiming."""
        self._stop.set()
        if self._run_thread is not None:
            self._run_thread.join(timeout=timeout)
