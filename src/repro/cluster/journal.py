"""Crash-safe journal of completed chunk outcomes for cluster sweeps.

A killed coordinator used to lose its whole sweep: chunk outcomes lived
only in the in-memory :class:`~repro.cluster.lease.ChunkLedger`.  The
:class:`SweepJournal` makes them durable — every accepted chunk outcome
is appended as one JSONL record, and a restarted coordinator
(``repro sweep --backend cluster --journal PATH`` re-run after a
SIGKILL) pre-completes the journaled chunks so only in-flight work is
re-executed, with results still bit-for-bit equal to
``--backend process``.

Record format (one per line)::

    {"job": "<16-hex job digest>", "chunk": 3, "data": "<base64 pickle>"}

``job`` is a content digest over the submitted chunks (ids, task
indexes, and serialized task bytes), so a journal only resumes the
*identical* workload: change the corpus, the limit, or the chunking and
the digest changes — stale records are simply ignored, never replayed
into the wrong sweep.  ``data`` is the pickled chunk outcome, exactly
the ``(task index, finding)`` pairs the ledger records.

Crash discipline is inherited from :class:`repro.core.dist.ResultStore`:
appends are single atomic-ish line writes, a process that dies mid-append
leaves a truncated tail that ``load`` skips (counted as
``cluster.journal.truncated``), and the next append heals the file by
prefixing a newline.  Write failures (torn writes, ENOSPC) degrade the
journal — the sweep continues, it just re-executes more on resume.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .. import faults as _faults
from ..obs import DEFAULT as _OBS

__all__ = ["SweepJournal", "job_digest"]


def job_digest(chunks: Iterable[List[Tuple[int, bytes]]]) -> str:
    """Content digest of one submitted chunk set (16 hex chars).

    Covers chunk order, task indexes, and the serialized task bytes —
    the same bytes a worker would unpickle — so equal digests mean the
    resumed workload is byte-identical to the journaled one.
    """
    digest = hashlib.sha256()
    for chunk_id, rows in enumerate(chunks):
        digest.update(b"c%d" % chunk_id)
        for index, raw in rows:
            digest.update(b"t%d:%d:" % (index, len(raw)))
            digest.update(raw)
    return digest.hexdigest()[:16]


class SweepJournal:
    """Append-only JSONL journal of completed chunk outcomes.

    One journal file can hold records from several jobs (digests keep
    them apart).  Thread-safe: the coordinator appends from connection
    handler threads and the inline degrade path concurrently.
    """

    def __init__(self, path: Any) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        #: Appends that failed (torn write / ENOSPC / IO error) —
        #: surfaced in the coordinator's counters as journal.errors.
        self.write_errors = 0

    # -- crash healing (the ResultStore discipline) -----------------------

    def _tail_truncated(self) -> bool:
        """Does the file end mid-record (non-empty, no final newline)?"""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):
            return False  # missing or empty file

    def _append_prefix(self) -> str:
        if not self._tail_truncated():
            return ""
        if _OBS.enabled:
            _OBS.incr("cluster.journal.truncated")
            _OBS.event("cluster.journal.truncated", path=self.path,
                       action="repaired")
        return "\n"

    # -- the journal API ---------------------------------------------------

    def load(self, digest: str) -> Dict[int, Any]:
        """Every journaled ``chunk id → outcome`` for one job digest.

        Malformed lines and records of other jobs are skipped; a
        truncated tail (the append the dying coordinator never
        finished) is skipped and counted.  Later records supersede
        earlier ones for the same chunk, though duplicates only arise
        from multiple resume generations — outcomes are deterministic,
        so any copy is the right one.
        """
        outcomes: Dict[int, Any] = {}
        if not os.path.exists(self.path):
            return outcomes
        with open(self.path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        truncated_tail = bool(raw) and not raw.endswith("\n")
        lines = raw.split("\n")
        for position, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record["job"] != digest:
                    continue
                chunk_id = record["chunk"]
                if isinstance(chunk_id, bool) or \
                        not isinstance(chunk_id, int):
                    raise ValueError("chunk id must be an int")
                data = base64.b64decode(
                    record["data"].encode("ascii"), validate=True)
                outcomes[chunk_id] = pickle.loads(data)
            except Exception:
                if not _OBS.enabled:
                    continue
                if truncated_tail and position == len(lines) - 1:
                    _OBS.incr("cluster.journal.truncated")
                    _OBS.event("cluster.journal.truncated",
                               path=self.path, action="skipped")
                else:
                    _OBS.incr("cluster.journal.malformed")
        return outcomes

    def record(self, digest: str, chunk_id: int, outcome: Any) -> bool:
        """Append one completed chunk's outcome; ``False`` when the
        write could not land (the journal degrades, the sweep goes on).
        """
        try:
            data = base64.b64encode(pickle.dumps(outcome)).decode("ascii")
        except Exception:
            self.write_errors += 1
            return False
        line = json.dumps({"job": digest, "chunk": chunk_id,
                           "data": data}) + "\n"
        with self._lock:
            try:
                rule = _faults.fire("journal.append.enospc")
                if rule is not None:
                    raise OSError(28, "No space left on device (injected)")
                torn = _faults.fire("journal.append.torn")
                prefix = self._append_prefix()
                with open(self.path, "a", encoding="utf-8") as handle:
                    if torn is not None:
                        # A torn write: half the record, no newline —
                        # exactly what a crash mid-append leaves behind.
                        handle.write(prefix + line[:max(1, len(line) // 2)])
                        self.write_errors += 1
                        return False
                    handle.write(prefix + line)
            except OSError:
                self.write_errors += 1
                if _OBS.enabled:
                    _OBS.incr("cluster.journal.write_errors")
                    _OBS.event("cluster.journal.write_error",
                               path=self.path)
                return False
        return True
