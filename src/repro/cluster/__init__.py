"""Multi-host sweep fabric: socket work queue, worker agents, leases.

The distribution-scale step on top of :mod:`repro.core.dist`: the
chunked scheduler's work queue, served over a line-JSON TCP protocol to
worker agents on other processes or hosts, with a lease/heartbeat layer
that reclaims chunks from workers that die or stall.  Three moving
parts:

:class:`~repro.cluster.coordinator.ClusterCoordinator`
    Owns the queue (driven through the same
    :class:`repro.core.dist.InProcessQueue` contract the in-process
    scheduler uses), issues leases, reaps the dead, and reassembles
    results.  ``sweep_models(..., backend="cluster")`` routes every
    chunk through it.
:class:`~repro.cluster.worker.ClusterWorker`
    The agent behind ``repro worker --connect host:port``: claims
    chunks, executes them on its local warm process pool via the exact
    code path of the process backend, and streams results (and trace
    spans) back.
:class:`~repro.cluster.lease.ChunkLedger`
    The clock-free fault-recovery core: leases, bounded retries,
    deterministic reassembly under any claim interleaving.

The scheduler finds the fabric through a process-ambient coordinator
handle (:func:`set_coordinator` / :func:`get_coordinator`), set by the
CLI (``repro sweep --listen``), the serving layer (``repro serve
--backend cluster``), or embedding code; :func:`coordinating` scopes it
for tests.

Determinism contract: a cluster sweep returns results bit-for-bit equal
to ``backend="process"`` regardless of worker count, join/leave timing,
or mid-sweep worker death — chunks are reassembled by task index, task
payloads and scan execution are byte-identical to the local pool path,
and duplicated work (a reclaimed chunk whose original result arrives
late) collapses to a single deterministic outcome.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .coordinator import ClusterCoordinator
from .journal import SweepJournal, job_digest
from .lease import ChunkLedger, Lease
from .protocol import ClusterProtocolError, parse_address
from .worker import ChunkTimeout, ClusterWorker, WorkerConnectError

__all__ = [
    "ClusterCoordinator",
    "ClusterWorker",
    "ChunkLedger",
    "ChunkTimeout",
    "Lease",
    "SweepJournal",
    "job_digest",
    "ClusterProtocolError",
    "WorkerConnectError",
    "parse_address",
    "set_coordinator",
    "get_coordinator",
    "coordinating",
]

_AMBIENT_LOCK = threading.Lock()
_AMBIENT: Optional[ClusterCoordinator] = None


def set_coordinator(
    coordinator: Optional[ClusterCoordinator],
) -> Optional[ClusterCoordinator]:
    """Install (or clear, with ``None``) the process-ambient
    coordinator that ``backend="cluster"`` sweeps dispatch through.
    Returns the previous handle."""
    global _AMBIENT
    with _AMBIENT_LOCK:
        previous = _AMBIENT
        _AMBIENT = coordinator
        return previous


def get_coordinator() -> Optional[ClusterCoordinator]:
    """The ambient coordinator, or ``None`` when no fabric is up."""
    with _AMBIENT_LOCK:
        return _AMBIENT


@contextmanager
def coordinating(coordinator: ClusterCoordinator) -> Iterator[
        ClusterCoordinator]:
    """Scope the ambient coordinator (started and closed by caller)."""
    previous = set_coordinator(coordinator)
    try:
        yield coordinator
    finally:
        set_coordinator(previous)
