"""Lease bookkeeping for one batch of distributed chunks.

:class:`ChunkLedger` is the fault-recovery core of the cluster fabric,
deliberately free of sockets, threads, and clocks — every method takes
``now`` explicitly, so the coordinator drives it from real monotonic
time while tests (including the hypothesis interleaving suite) drive it
from a simulated schedule.  It owns exactly the state that makes
worker death recoverable:

* a work queue of chunk ids, driven through the
  :class:`repro.core.dist.InProcessQueue` contract (``put`` / ``claim``
  / ``requeue`` / ``complete``) — the same contract the in-process
  scheduler uses, so the TCP front-end adds transport, not semantics;
* one :class:`Lease` per claimed chunk — claimant, expiry deadline, and
  attempt number.  Heartbeats renew deadlines; :meth:`reap` expires
  overdue leases and requeues their chunks to the *front* of the queue
  (reclaimed work restarts before fresh work waits);
* a bounded retry count per chunk, mirroring the process scheduler's
  crash-retry contract: a chunk reclaimed more than ``max_retries``
  times is marked *exhausted* and surfaces in :attr:`failed` for the
  caller's inline fallback — the ledger refuses work, never loses it.

Determinism: chunk outcomes are recorded keyed by chunk id and
reassembled by task index, so *any* interleaving of claims, expiries,
and completions across any number of consumers yields the same merged
result — a late duplicate result (the original claimant finished after
its lease was reclaimed) is simply dropped, and since re-execution is
deterministic the dropped copy was identical anyway.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.dist import InProcessQueue

__all__ = ["Lease", "ChunkLedger"]


class Lease:
    """One outstanding claim: who holds which chunk until when."""

    __slots__ = ("chunk_id", "claimant", "token", "deadline", "attempt")

    def __init__(self, chunk_id: int, claimant: str, token: str,
                 deadline: float, attempt: int) -> None:
        self.chunk_id = chunk_id
        self.claimant = claimant
        self.token = token
        self.deadline = deadline
        self.attempt = attempt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Lease(chunk={self.chunk_id}, claimant={self.claimant!r}, "
                f"deadline={self.deadline:.3f}, attempt={self.attempt})")


class ChunkLedger:
    """Lease-tracked dispatch state for one batch of chunks.

    ``chunks`` maps chunk id to an opaque payload (the coordinator
    stores wire-ready ``(task index, serialized bytes)`` rows; tests
    store whatever they like).  Not thread-safe — the coordinator
    serializes access under its own lock.
    """

    def __init__(self, chunks: Mapping[int, Any], *, max_retries: int = 2,
                 queue: Optional[Any] = None) -> None:
        self._chunks: Dict[int, Any] = dict(chunks)
        self._queue = queue if queue is not None else InProcessQueue()
        self._max_retries = max_retries
        self._attempts: Dict[int, int] = {cid: 0 for cid in self._chunks}
        self._leases: Dict[int, Lease] = {}
        self._tokens = itertools.count(1)
        #: chunk id → recorded outcome (opaque; first writer wins).
        self.outcomes: Dict[int, Any] = {}
        #: chunk ids whose retries are exhausted (caller falls back).
        self.failed: List[int] = []
        for cid in sorted(self._chunks):
            self._queue.put(cid)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._chunks)

    @property
    def done(self) -> bool:
        """Every chunk either has an outcome or exhausted its retries."""
        return len(self.outcomes) + len(self.failed) == len(self._chunks)

    def remaining(self) -> int:
        return len(self._chunks) - len(self.outcomes) - len(self.failed)

    def pending(self) -> int:
        """Chunks sitting unclaimed in the queue."""
        return len(self._queue)

    def leases(self) -> List[Lease]:
        return list(self._leases.values())

    def payload(self, chunk_id: int) -> Any:
        return self._chunks[chunk_id]

    def attempt(self, chunk_id: int) -> int:
        return self._attempts[chunk_id]

    # -- the claim / complete / reclaim cycle -----------------------------

    def claim(self, claimant: str, *, now: float,
              ttl: float) -> Optional[Lease]:
        """Lease the next available chunk to ``claimant``, or ``None``.

        Skips (and discharges) stale queue entries left behind when a
        reclaimed chunk's original result arrived late — the queue may
        briefly hold ids that already have outcomes.
        """
        while True:
            chunk_id = self._queue.claim(claimant)
            if chunk_id is None:
                return None
            if chunk_id in self.outcomes or chunk_id in self.failed:
                self._queue.complete(chunk_id)
                continue
            lease = Lease(chunk_id, claimant, f"L{next(self._tokens)}",
                          now + ttl, self._attempts[chunk_id])
            self._leases[chunk_id] = lease
            return lease

    def renew(self, claimant: str, *, now: float, ttl: float) -> int:
        """Heartbeat: push out the deadline of every lease ``claimant``
        holds.  Returns how many leases were renewed."""
        renewed = 0
        for lease in self._leases.values():
            if lease.claimant == claimant:
                lease.deadline = now + ttl
                renewed += 1
        return renewed

    def complete(self, chunk_id: int, outcome: Any) -> bool:
        """Record a chunk's outcome; ``False`` for duplicates (the chunk
        already completed via another claimant — dropped, see module
        docstring) or unknown chunk ids."""
        if (chunk_id not in self._chunks or chunk_id in self.outcomes
                or chunk_id in self.failed):
            return False
        self.outcomes[chunk_id] = outcome
        self._leases.pop(chunk_id, None)
        self._queue.complete(chunk_id)
        return True

    def release(self, chunk_id: int) -> str:
        """Give up the lease on one unfinished chunk.

        Returns the disposition: ``"requeued"`` (will be re-claimed),
        ``"exhausted"`` (retries spent — lands in :attr:`failed`), or
        ``"absent"`` (no live lease / already finished; no-op).
        """
        self._leases.pop(chunk_id, None)
        if (chunk_id not in self._chunks or chunk_id in self.outcomes
                or chunk_id in self.failed):
            return "absent"
        self._attempts[chunk_id] += 1
        if self._attempts[chunk_id] > self._max_retries:
            self._queue.complete(chunk_id)
            self.failed.append(chunk_id)
            return "exhausted"
        self._queue.requeue(chunk_id)
        return "requeued"

    def release_claimant(self, claimant: str) -> List[Tuple[int, str]]:
        """Reclaim every chunk ``claimant`` holds (it disconnected).

        Returns ``[(chunk id, disposition), ...]``.
        """
        held = [cid for cid, lease in self._leases.items()
                if lease.claimant == claimant]
        return [(cid, self.release(cid)) for cid in held]

    def reap(self, now: float) -> List[Tuple[int, str, str]]:
        """Expire overdue leases, requeueing their chunks.

        Returns ``[(chunk id, claimant, disposition), ...]`` for each
        reclaimed lease — the coordinator's counters and the recovery
        tests read this.
        """
        expired = [lease for lease in self._leases.values()
                   if lease.deadline <= now]
        return [(lease.chunk_id, lease.claimant,
                 self.release(lease.chunk_id)) for lease in expired]
