"""The cluster wire protocol: line-delimited JSON over TCP.

Same framing conventions as :mod:`repro.serve.protocol` — one message
per newline-terminated JSON line, one response per request, strictly in
order on each connection — but between *workers* and the *coordinator*
rather than clients and the service.  Worker-initiated operations:

``hello``
    ``{"op": "hello", "worker": <hex id>, "pid": 1234, "host": "...",
    "slots": 2}`` — announce a worker agent.  The response carries the
    coordinator's lease timeout and suggested heartbeat interval.
``claim``
    Ask for one chunk of work.  The response is either ``status:
    "chunk"`` — carrying ``job``/``chunk``/``lease`` identifiers, an
    optional ``traceparent`` continuing the submitting sweep's trace,
    and the serialized task ``payload`` — or ``status: "idle"`` with a
    suggested ``retry_ms`` backoff and an ``active`` flag (are there
    jobs in flight at all?).
``result``
    Return one finished chunk: ``{"op": "result", "worker": ...,
    "job": J, "chunk": C, "lease": L, "data": <base64>}``.  ``data`` is
    the pickled worker outcome — exactly what
    :func:`repro.core.dist._chunk_worker` returned, so the coordinator
    reassembles bit-for-bit what the process backend would have seen.
``fail``
    Report a chunk the worker could not execute (the chunk is requeued
    under the bounded-retry contract).
``heartbeat``
    Renew every lease the worker holds.
``bye``
    Clean departure (leases already released or results delivered).
``ping``
    Liveness probe: worker/chunk gauges (tests and the CLI use it).

Every response echoes ``status``: ``ok``, ``chunk``, ``idle``, or
``error`` (with a ``message``).  Task payloads travel as base64-encoded
*pickled bytes* produced by the scheduler's per-task serialization
probe (:func:`repro.core.dist._serialize_task`); the codec here never
re-pickles, so the bytes a worker unpickles are identical to what a
local pool worker would have received.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import faults as _faults

__all__ = [
    "ClusterProtocolError",
    "MAX_LINE",
    "STATUS_OK",
    "STATUS_CHUNK",
    "STATUS_IDLE",
    "STATUS_ERROR",
    "KNOWN_OPS",
    "encode_line",
    "decode_message",
    "encode_payload",
    "decode_payload",
    "encode_blob",
    "decode_blob",
    "parse_address",
    "read_line",
]

#: Hard per-line bound.  Chunk payloads carry pickled tasks (domains
#: included when shared memory cannot cross the host boundary), so the
#: bound is far above the serve protocol's 1 MiB.
MAX_LINE = 1 << 26

STATUS_OK = "ok"
STATUS_CHUNK = "chunk"
STATUS_IDLE = "idle"
STATUS_ERROR = "error"

KNOWN_OPS = ("hello", "claim", "result", "fail", "heartbeat", "bye", "ping")


class ClusterProtocolError(ValueError):
    """A message line that cannot be parsed into a valid message."""


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One message as a newline-terminated JSON line (serve framing)."""
    return (json.dumps(payload, separators=(",", ":"), default=str)
            + "\n").encode("utf-8")


def decode_message(line: str) -> Dict[str, Any]:
    """Parse and validate one worker message line.

    Returns the decoded dict with ``op`` validated and ``worker``
    type-checked (every op but ``ping`` requires one).  Raises
    :class:`ClusterProtocolError` with a renderable message otherwise.
    """
    try:
        obj = json.loads(line)
    except ValueError:
        raise ClusterProtocolError("message is not valid JSON")
    if not isinstance(obj, dict):
        raise ClusterProtocolError("message must be a JSON object")
    op = obj.get("op")
    if op not in KNOWN_OPS:
        raise ClusterProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(KNOWN_OPS)}"
        )
    worker = obj.get("worker")
    if op != "ping" and (not isinstance(worker, str) or not worker):
        raise ClusterProtocolError(
            f"{op} requires a non-empty string 'worker'")
    return obj


def encode_blob(raw: bytes) -> str:
    """Binary payload (pickled bytes) as a JSON-safe base64 string."""
    return base64.b64encode(raw).decode("ascii")


def decode_blob(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError):
        raise ClusterProtocolError("payload is not valid base64")


def encode_payload(
    payload: Sequence[Tuple[int, bytes]],
) -> List[List[Any]]:
    """One chunk's ``(task index, serialized task)`` rows, wire form."""
    return [[index, encode_blob(raw)] for index, raw in payload]


def decode_payload(rows: Any) -> List[Tuple[int, bytes]]:
    """Inverse of :func:`encode_payload`, validated."""
    if not isinstance(rows, list):
        raise ClusterProtocolError("chunk payload must be a list")
    decoded: List[Tuple[int, bytes]] = []
    for row in rows:
        if (not isinstance(row, (list, tuple)) or len(row) != 2
                or isinstance(row[0], bool) or not isinstance(row[0], int)
                or not isinstance(row[1], str)):
            raise ClusterProtocolError(
                "chunk payload rows must be [index, base64] pairs")
        decoded.append((row[0], decode_blob(row[1])))
    return decoded


def parse_address(text: str, *, default_host: str = "127.0.0.1",
                  flag: str = "address") -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"port"``) → ``(host, port)``.

    Raises :class:`ValueError` with a CLI-renderable message naming the
    offending ``flag`` for anything else.
    """
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = default_host, text
    if not host:
        host = default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"{flag} must look like HOST:PORT, got {text!r}")
    if not 0 <= port <= 65535:
        raise ValueError(f"{flag} port out of range: {port}")
    return host, port


def read_line(reader: Any) -> Optional[str]:
    """One protocol line from a file-like reader, or ``None`` on EOF.

    Enforces :data:`MAX_LINE` (a longer line raises
    :class:`ClusterProtocolError` — the peer is malformed, not slow).

    Fault-injection taps (:mod:`repro.faults`) live here because both
    sides of the wire read through this function: ``cluster.recv.delay``
    stalls the frame (a slow network), ``cluster.recv.garble`` corrupts
    the received line (a broken peer/framing bug) — the reader's normal
    protocol-error recovery must absorb both.
    """
    rule = _faults.fire("cluster.recv.delay")
    if rule is not None:
        _faults.sleep_ms(rule)
    line = reader.readline(MAX_LINE + 1)
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise ClusterProtocolError("message line exceeds MAX_LINE")
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    if _faults.fire("cluster.recv.garble") is not None:
        return "\x00garbled" + line[: max(0, len(line) // 3)]
    return line
