"""Deterministic, seedable fault injection for the whole runtime.

The paper's method makes failure modes *enumerable*: each exploit is a
finite sequence of elementary violations that can be walked
deliberately.  This module gives the runtime the same treatment — a
process-wide :class:`FaultPlan` of injection points that the hot seams
consult (cluster socket send/recv, worker chunk execution, dist pool
dispatch, serve admission/batch dispatch, result-store appends), so a
fault *sequence* can be generated from a seed and replayed exactly.

Ambient like :func:`repro.cluster.coordinating`: install a plan with
:func:`install` / :func:`injecting` (or let the CLI do it from
``repro … --faults SPEC`` / ``REPRO_FAULTS=SPEC``) and every tap in the
process starts drawing decisions from it.  With no plan installed, a
tap is one function call that loads a module global and returns —
nothing allocates, nothing locks.

**Spec grammar** (one line, ``;``-separated clauses)::

    seed=42;cluster.send.drop:0.01;worker.chunk.hang:1@after=3@max=1@ms=500

* ``seed=N`` — the plan seed (default 0).  Everything downstream is a
  pure function of (seed, site, call ordinal).
* ``<site-glob>:<rate>`` — an injection rule.  ``site-glob`` is an
  :mod:`fnmatch` pattern over injection-site names (see the table in
  ``docs/API.md``); ``rate`` is the per-call fire probability in
  ``[0, 1]``.
* ``@after=N`` — skip the site's first N calls before arming.
* ``@max=N`` — fire at most N times, then disarm.
* ``@ms=F`` — effect magnitude in milliseconds for delay-shaped faults
  (``*.delay``, ``*.slow``, ``*.hang``).

**Determinism contract.**  Each site owns an RNG seeded from
``(seed, site)`` and a call ordinal counter.  The decision for a site's
k-th call is a pure function of the plan — two runs with the same spec
make identical decisions for every shared call prefix, regardless of
thread or process interleaving elsewhere.  (Sites whose call *count*
varies run-to-run — e.g. idle claim polls — still see the same decision
sequence; only the unreached tail differs.)

Injections are counted unconditionally on the plan
(:meth:`FaultPlan.snapshot` — the CLI ``--json`` ``faults`` block and
the chaos CI job read it) and mirrored to the obs registry as
``faults.injected.<site>`` counters plus ``fault.injected`` span events
when telemetry is enabled, so traces show exactly what was injected
where.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from fnmatch import fnmatchcase
from random import Random
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .obs import DEFAULT as _OBS

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFault",
    "parse_spec",
    "install",
    "get_plan",
    "injecting",
    "init_from_env",
    "fire",
    "sleep_ms",
    "snapshot",
    "ENV_VAR",
]

ENV_VAR = "REPRO_FAULTS"


class FaultSpecError(ValueError):
    """A ``--faults`` / ``REPRO_FAULTS`` spec that does not parse."""


class InjectedFault(RuntimeError):
    """Raised by taps whose fault shape is "crash here".

    Deliberately a :class:`RuntimeError`: recovery paths must treat an
    injected crash exactly like a real one.
    """


class FaultRule:
    """One armed injection rule: which sites, how often, how hard."""

    __slots__ = ("pattern", "rate", "after_n", "max_n", "ms")

    def __init__(self, pattern: str, rate: float, *, after_n: int = 0,
                 max_n: Optional[int] = None, ms: float = 100.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise FaultSpecError(
                f"rate must be in [0, 1], got {rate!r} for {pattern!r}")
        if after_n < 0:
            raise FaultSpecError(f"@after must be >= 0, got {after_n}")
        if max_n is not None and max_n < 0:
            raise FaultSpecError(f"@max must be >= 0, got {max_n}")
        if ms < 0:
            raise FaultSpecError(f"@ms must be >= 0, got {ms}")
        self.pattern = pattern
        self.rate = rate
        self.after_n = after_n
        self.max_n = max_n
        self.ms = ms

    def matches(self, site: str) -> bool:
        return fnmatchcase(site, self.pattern)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extras = []
        if self.after_n:
            extras.append(f"@after={self.after_n}")
        if self.max_n is not None:
            extras.append(f"@max={self.max_n}")
        extras.append(f"@ms={self.ms:g}")
        return f"FaultRule({self.pattern}:{self.rate:g}{''.join(extras)})"


def parse_spec(text: str) -> "FaultPlan":
    """Parse the one-line spec grammar into a :class:`FaultPlan`."""
    seed = 0
    rules: List[FaultRule] = []
    for raw_clause in text.split(";"):
        clause = raw_clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise FaultSpecError(f"seed must be an integer: {clause!r}")
            continue
        pattern, sep, rest = clause.partition(":")
        if not sep or not pattern:
            raise FaultSpecError(
                f"clause {clause!r} is not 'seed=N' or "
                f"'<site-glob>:<rate>[@after=N][@max=N][@ms=F]'")
        parts = rest.split("@")
        try:
            rate = float(parts[0])
        except ValueError:
            raise FaultSpecError(
                f"rate in {clause!r} must be a float in [0, 1]")
        after_n, max_n, ms = 0, None, 100.0
        for option in parts[1:]:
            key, osep, value = option.partition("=")
            if not osep:
                raise FaultSpecError(
                    f"option {option!r} in {clause!r} must be key=value")
            try:
                if key == "after":
                    after_n = int(value)
                elif key == "max":
                    max_n = int(value)
                elif key == "ms":
                    ms = float(value)
                else:
                    raise FaultSpecError(
                        f"unknown option @{key} in {clause!r} "
                        f"(known: @after, @max, @ms)")
            except ValueError:
                raise FaultSpecError(
                    f"@{key} in {clause!r} needs a numeric value, "
                    f"got {value!r}")
        rules.append(FaultRule(pattern.strip(), rate, after_n=after_n,
                               max_n=max_n, ms=ms))
    return FaultPlan(rules, seed=seed)


class FaultPlan:
    """A seeded set of injection rules plus per-site decision state.

    Thread-safe: taps fire from coordinator connection threads, worker
    slot threads, and the serve executor concurrently.  All state that
    decisions depend on (ordinals, RNG streams, fire counts) lives
    behind one lock, so the k-th call at a site sees the k-th decision
    no matter which thread makes it.
    """

    def __init__(self, rules: List[FaultRule], *, seed: int = 0) -> None:
        self.seed = seed
        self.rules = list(rules)
        self._lock = threading.Lock()
        self._ordinals: Dict[str, int] = {}
        self._rngs: Dict[str, Random] = {}
        self._matched: Dict[str, List[Tuple[int, FaultRule]]] = {}
        self._fired: Dict[int, int] = {}
        #: site → times a fault actually fired (kept unconditionally).
        self.injected: Dict[str, int] = {}

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        return parse_spec(text)

    def _site_rules(self, site: str) -> List[Tuple[int, FaultRule]]:
        matched = self._matched.get(site)
        if matched is None:
            matched = [(index, rule)
                       for index, rule in enumerate(self.rules)
                       if rule.matches(site)]
            self._matched[site] = matched
        return matched

    def check(self, site: str) -> Optional[FaultRule]:
        """One call at ``site``: the rule that fires, or ``None``.

        Rules are consulted in spec order; each matching rule consumes
        one draw from the site's RNG stream per call (fired or not), so
        the decision sequence is reproducible independent of which
        rules hit their ``@max`` budget first.
        """
        with self._lock:
            matched = self._site_rules(site)
            if not matched:
                return None
            ordinal = self._ordinals.get(site, 0)
            self._ordinals[site] = ordinal + 1
            rng = self._rngs.get(site)
            if rng is None:
                rng = self._rngs[site] = Random(f"{self.seed}:{site}")
            winner: Optional[Tuple[int, FaultRule]] = None
            for index, rule in matched:
                draw = rng.random()
                if winner is not None:
                    continue  # keep draining draws for determinism
                if ordinal < rule.after_n:
                    continue
                if rule.max_n is not None \
                        and self._fired.get(index, 0) >= rule.max_n:
                    continue
                if draw < rule.rate:
                    winner = (index, rule)
            if winner is None:
                return None
            index, rule = winner
            self._fired[index] = self._fired.get(index, 0) + 1
            self.injected[site] = self.injected.get(site, 0) + 1
        if _OBS.enabled:
            _OBS.incr(f"faults.injected.{site}")
            _OBS.event("fault.injected", site=site, rate=rule.rate,
                       ms=rule.ms)
        return rule

    def snapshot(self) -> Dict[str, Any]:
        """Seed + per-site injected counts (the ``faults`` JSON block)."""
        with self._lock:
            return {"seed": self.seed,
                    "rules": len(self.rules),
                    "injected": dict(self.injected),
                    "total_injected": sum(self.injected.values())}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(seed={self.seed}, rules={self.rules!r})"


# ---------------------------------------------------------------------------
# The ambient plan (mirrors repro.cluster's ambient coordinator handle).
# ---------------------------------------------------------------------------

_PLAN_LOCK = threading.Lock()
_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or clear, with ``None``) the process-ambient fault
    plan.  Returns the previous plan."""
    global _PLAN
    with _PLAN_LOCK:
        previous = _PLAN
        _PLAN = plan
        return previous


def get_plan() -> Optional[FaultPlan]:
    """The ambient plan, or ``None`` when injection is off."""
    return _PLAN


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope the ambient plan (tests and the chaos suite)."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def init_from_env(environ: Optional[Dict[str, str]] = None
                  ) -> Optional[FaultPlan]:
    """Install a plan from ``REPRO_FAULTS`` if the variable is set.

    The hook worker agents and spawned subprocesses use — the CLI
    exports the flag value into the environment so ``repro worker``
    children inherit the same spec.
    """
    env = os.environ if environ is None else environ
    spec = env.get(ENV_VAR)
    if not spec:
        return None
    plan = parse_spec(spec)
    install(plan)
    return plan


def fire(site: str) -> Optional[FaultRule]:
    """The tap: the rule firing at ``site`` for this call, or ``None``.

    The zero-cost-disabled path: one global load and one ``is None``
    test when no plan is installed.
    """
    plan = _PLAN
    if plan is None:
        return None
    return plan.check(site)


def sleep_ms(rule: FaultRule) -> None:
    """Apply a delay-shaped rule's magnitude (used by ``*.delay`` /
    ``*.slow`` / ``*.hang`` effect sites)."""
    if rule.ms > 0:
        time.sleep(rule.ms / 1000.0)


def snapshot() -> Optional[Dict[str, Any]]:
    """The ambient plan's :meth:`FaultPlan.snapshot`, or ``None``."""
    plan = _PLAN
    return None if plan is None else plan.snapshot()
