"""Users, groups, and privilege for the simulated OS.

The rwall vulnerability (Figure 6) is a privilege question — "does the
user have root privilege?" is the Content/Attribute Check of its pFSM1 —
and the xterm race (Figure 5) is about a specific user's write permission
on a specific file.  This module provides just enough identity machinery
to express both predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

__all__ = ["User", "ROOT", "NOBODY"]


@dataclass(frozen=True)
class User:
    """A UNIX-style principal."""

    name: str
    uid: int
    gid: int = 100
    groups: FrozenSet[int] = field(default_factory=frozenset)

    @property
    def is_root(self) -> bool:
        """Root privilege — uid 0 (pFSM1 of Figure 6 checks exactly this)."""
        return self.uid == 0

    def in_group(self, gid: int) -> bool:
        """True when ``gid`` is the primary or a supplementary group."""
        return gid == self.gid or gid in self.groups

    @staticmethod
    def regular(name: str, uid: int, gid: int = 100,
                groups: Iterable[int] = ()) -> "User":
        """Convenience constructor for an unprivileged user."""
        if uid == 0:
            raise ValueError("regular users must not have uid 0")
        return User(name=name, uid=uid, gid=gid, groups=frozenset(groups))


#: The superuser.
ROOT = User(name="root", uid=0, gid=0, groups=frozenset({0}))

#: A generic unprivileged principal.
NOBODY = User(name="nobody", uid=65534, gid=65534, groups=frozenset())
