"""An inode filesystem with permissions, symlinks, and terminal devices.

Two of the paper's case studies live here:

* **xterm log-file race (Figure 5)** — needs symbolic links that can be
  swapped in between a permission check and the subsequent ``open`` (the
  reference-consistency violation), and per-user write-permission bits
  (the content/attribute check).
* **rwall /etc/utmp corruption (Figure 6)** — needs a world-writable
  ``/etc/utmp``, terminal device files versus regular files (the object
  type check rwalld omits), and message appends that land in whatever
  the utmp entry names.

Paths are resolved UNIX-style: each component walks a directory inode;
symlink components substitute their target.  ``open`` can resolve with
or without following the final symlink (``follow_symlinks``), which is
what distinguishes a safe reopen from the vulnerable one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .users import User

__all__ = [
    "FileType",
    "Mode",
    "Inode",
    "FileSystem",
    "FsError",
    "PermissionDenied",
    "FileNotFound",
    "NotADirectory",
    "SymlinkLoop",
    "normalize_path",
]


class FsError(Exception):
    """Base filesystem error."""


class PermissionDenied(FsError):
    """EACCES."""


class FileNotFound(FsError):
    """ENOENT."""


class NotADirectory(FsError):
    """ENOTDIR."""


class SymlinkLoop(FsError):
    """ELOOP — too many levels of symbolic links."""


class FileType(enum.Enum):
    """Inode types; TERMINAL is the device type rwalld should check for."""

    REGULAR = "regular"
    DIRECTORY = "directory"
    SYMLINK = "symlink"
    TERMINAL = "terminal"


class Mode:
    """Permission bit constants (octal UNIX semantics)."""

    R = 4
    W = 2
    X = 1

    @staticmethod
    def bits(mode: int, who: str) -> int:
        """Extract the 3-bit field for 'user', 'group', or 'other'."""
        shift = {"user": 6, "group": 3, "other": 0}[who]
        return (mode >> shift) & 0o7


@dataclass
class Inode:
    """One filesystem object."""

    file_type: FileType
    owner_uid: int
    group_gid: int
    mode: int
    data: bytearray = field(default_factory=bytearray)
    link_target: Optional[str] = None  # for SYMLINK
    children: Dict[str, "Inode"] = field(default_factory=dict)  # for DIRECTORY
    terminal_output: List[bytes] = field(default_factory=list)  # for TERMINAL

    def permits(self, user: User, want: int) -> bool:
        """POSIX permission check: root bypasses; otherwise owner, group,
        then other bits apply."""
        if user.is_root:
            return True
        if user.uid == self.owner_uid:
            granted = Mode.bits(self.mode, "user")
        elif user.in_group(self.group_gid):
            granted = Mode.bits(self.mode, "group")
        else:
            granted = Mode.bits(self.mode, "other")
        return (granted & want) == want


def normalize_path(path: str) -> str:
    """Collapse ``.``/``..``/double slashes without touching symlinks.

    Note this is *lexical* normalization — exactly the operation the IIS
    example (Figure 7) warns may disagree with what the server executes
    when decoding happens after checking.
    """
    parts: List[str] = []
    for component in path.split("/"):
        if component in ("", "."):
            continue
        if component == "..":
            if parts:
                parts.pop()
            continue
        parts.append(component)
    return "/" + "/".join(parts)


_MAX_SYMLINK_HOPS = 16


class FileSystem:
    """A rooted tree of inodes with UNIX path resolution."""

    def __init__(self) -> None:
        self.root = Inode(
            file_type=FileType.DIRECTORY, owner_uid=0, group_gid=0, mode=0o755
        )

    # -- resolution ---------------------------------------------------------

    def _components(self, path: str) -> List[str]:
        if not path.startswith("/"):
            raise FsError(f"paths must be absolute, got {path!r}")
        return [part for part in path.split("/") if part]

    def _resolve(
        self, path: str, follow_final: bool = True, _hops: int = 0
    ) -> Tuple[Inode, str, Inode]:
        """Resolve to ``(parent_dir, final_name, inode)``.

        Raises :class:`FileNotFound` when the final component is missing;
        the parent and name are still meaningful to callers that create.
        """
        if _hops > _MAX_SYMLINK_HOPS:
            raise SymlinkLoop(path)
        components = self._components(path)
        node = self.root
        parent = self.root
        if not components:
            return (self.root, "", self.root)
        for index, name in enumerate(components):
            if node.file_type is not FileType.DIRECTORY:
                raise NotADirectory("/".join(components[:index]))
            child = node.children.get(name)
            is_final = index == len(components) - 1
            if child is None:
                if is_final:
                    raise FileNotFound(path)
                raise FileNotFound("/" + "/".join(components[: index + 1]))
            if child.file_type is FileType.SYMLINK and (not is_final or follow_final):
                target = child.link_target or "/"
                remainder = "/".join(components[index + 1 :])
                new_path = target if not remainder else target.rstrip("/") + "/" + remainder
                return self._resolve(new_path, follow_final, _hops + 1)
            parent, node = node, child
        return (parent, components[-1], node)

    def lookup(self, path: str, follow_symlinks: bool = True) -> Inode:
        """Resolve ``path`` to an inode."""
        return self._resolve(path, follow_final=follow_symlinks)[2]

    def exists(self, path: str, follow_symlinks: bool = True) -> bool:
        """True when the path resolves."""
        try:
            self.lookup(path, follow_symlinks)
            return True
        except FsError:
            return False

    def resolve_path(self, path: str) -> str:
        """The canonical path an open of ``path`` would actually touch —
        symlinks followed.  Comparing this against the checked path is
        the reference-consistency predicate of Figure 5."""
        inode = self.lookup(path)
        found = self._find_inode(self.root, "/", inode)
        return found if found is not None else normalize_path(path)

    def _find_inode(self, node: Inode, prefix: str, needle: Inode) -> Optional[str]:
        if node is needle:
            return "/" if prefix == "/" else prefix.rstrip("/")
        if node.file_type is FileType.DIRECTORY:
            for name, child in node.children.items():
                hit = self._find_inode(
                    child, prefix.rstrip("/") + "/" + name, needle
                )
                if hit:
                    return hit
        return None

    # -- creation --------------------------------------------------------------

    def _parent_of(self, path: str) -> Tuple[Inode, str]:
        components = self._components(path)
        if not components:
            raise FsError("cannot create root")
        parent_path = "/" + "/".join(components[:-1])
        parent = self.lookup(parent_path)
        if parent.file_type is not FileType.DIRECTORY:
            raise NotADirectory(parent_path)
        return parent, components[-1]

    def mkdir(self, path: str, owner: User, mode: int = 0o755) -> Inode:
        """Create a directory."""
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise FsError(f"{path} exists")
        inode = Inode(FileType.DIRECTORY, owner.uid, owner.gid, mode)
        parent.children[name] = inode
        return inode

    def mkdirs(self, path: str, owner: User, mode: int = 0o755) -> None:
        """Create all missing ancestors plus the directory itself."""
        components = self._components(path)
        current = ""
        for name in components:
            current += "/" + name
            if not self.exists(current):
                self.mkdir(current, owner, mode)

    def create_file(
        self, path: str, owner: User, mode: int = 0o644, data: bytes = b""
    ) -> Inode:
        """Create a regular file."""
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise FsError(f"{path} exists")
        inode = Inode(FileType.REGULAR, owner.uid, owner.gid, mode,
                      data=bytearray(data))
        parent.children[name] = inode
        return inode

    def create_terminal(self, path: str, owner: User, mode: int = 0o620) -> Inode:
        """Create a terminal device file (e.g. ``/dev/pts/25``)."""
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise FsError(f"{path} exists")
        inode = Inode(FileType.TERMINAL, owner.uid, owner.gid, mode)
        parent.children[name] = inode
        return inode

    def symlink(self, link_path: str, target: str, owner: User) -> Inode:
        """Create a symbolic link — the attacker's move in Figure 5."""
        parent, name = self._parent_of(link_path)
        if name in parent.children:
            raise FsError(f"{link_path} exists")
        inode = Inode(FileType.SYMLINK, owner.uid, owner.gid, 0o777,
                      link_target=target)
        parent.children[name] = inode
        return inode

    def unlink(self, path: str, user: User) -> None:
        """Remove a directory entry (requires write on the parent)."""
        parent, name, _node = self._resolve(path, follow_final=False)
        if not parent.permits(user, Mode.W):
            raise PermissionDenied(f"unlink {path} as {user.name}")
        del parent.children[name]

    # -- access & I/O ---------------------------------------------------------------

    def access(self, path: str, user: User, want: int,
               follow_symlinks: bool = True) -> bool:
        """The ``access(2)``-style permission probe — the *check* half of
        a time-of-check-to-time-of-use pair."""
        try:
            inode = self.lookup(path, follow_symlinks)
        except FsError:
            return False
        return inode.permits(user, want)

    def open_write(self, path: str, user: User,
                   follow_symlinks: bool = True) -> Inode:
        """The *use* half: open for writing, enforcing permissions at the
        moment of open against whatever the path resolves to *now*."""
        inode = self.lookup(path, follow_symlinks)
        if not inode.permits(user, Mode.W):
            raise PermissionDenied(f"open {path} for write as {user.name}")
        return inode

    def write(self, inode: Inode, data: bytes) -> None:
        """Append to an open inode (terminal writes go to the scrollback)."""
        if inode.file_type is FileType.TERMINAL:
            inode.terminal_output.append(data)
        elif inode.file_type is FileType.REGULAR:
            inode.data.extend(data)
        else:
            raise FsError(f"cannot write a {inode.file_type.value}")

    def read(self, path: str, user: User) -> bytes:
        """Read a regular file's contents."""
        inode = self.lookup(path)
        if not inode.permits(user, Mode.R):
            raise PermissionDenied(f"read {path} as {user.name}")
        return bytes(inode.data)

    def is_terminal(self, path: str) -> bool:
        """Object Type Check of Figure 6's pFSM2: does the path name a
        terminal device?"""
        try:
            return self.lookup(path).file_type is FileType.TERMINAL
        except FsError:
            return False

    def listdir(self, path: str) -> Iterator[str]:
        """Directory entry names."""
        inode = self.lookup(path)
        if inode.file_type is not FileType.DIRECTORY:
            raise NotADirectory(path)
        return iter(sorted(inode.children))
