"""Socket model with ``recv`` chunking semantics.

The NULL HTTPD vulnerabilities (Figure 4 and the newly-discovered #6255)
live in a ``recv`` loop: the server reads the POST body in chunks of up
to 1024 bytes and decides when to stop based on the chunk size (``rc ==
1024``) and a byte counter against ``contentLen``.  The paper's footnote
on the socket programming style is the key constraint this model keeps:
*the socket has no way of determining the length of the input* — length
and data arrive separately, and only the programmer's loop condition
bounds the copy.

:class:`SimulatedSocket` therefore delivers exactly the attacker-supplied
byte stream in ``recv``-sized chunks and reports closure with ``-1``-style
sentinels the way the 2003 code expected.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SimulatedSocket", "RECV_ERROR"]

#: C-style error return of ``recv`` (the ``rc == -1`` branch in the
#: paper's Figure 4b source listing).
RECV_ERROR = -1


class SimulatedSocket:
    """A one-directional byte stream from attacker to server.

    Parameters
    ----------
    payload:
        The full byte stream the remote peer will send.
    error_after:
        When set, ``recv`` returns :data:`RECV_ERROR` once this many
        bytes have been consumed — models a mid-request connection error.
    """

    def __init__(self, payload: bytes, error_after: Optional[int] = None) -> None:
        self._payload = payload
        self._cursor = 0
        self._error_after = error_after
        self.closed = False

    @property
    def remaining(self) -> int:
        """Bytes the peer still has queued."""
        return len(self._payload) - self._cursor

    def recv(self, max_bytes: int) -> "RecvResult":
        """Receive up to ``max_bytes``.

        Returns a :class:`RecvResult` whose ``count`` mirrors the C return
        convention: positive byte count, ``0`` on orderly shutdown with
        nothing queued, ``-1`` on error.
        """
        if self.closed:
            return RecvResult(RECV_ERROR, b"")
        if self._error_after is not None and self._cursor >= self._error_after:
            self.closed = True
            return RecvResult(RECV_ERROR, b"")
        if max_bytes <= 0:
            return RecvResult(0, b"")
        chunk = self._payload[self._cursor : self._cursor + max_bytes]
        self._cursor += len(chunk)
        return RecvResult(len(chunk), chunk)

    def close(self) -> None:
        """Close the connection (subsequent recv errors)."""
        self.closed = True


class RecvResult:
    """Return of :meth:`SimulatedSocket.recv` — count plus data."""

    __slots__ = ("count", "data")

    def __init__(self, count: int, data: bytes) -> None:
        self.count = count
        self.data = data

    def __iter__(self):
        return iter((self.count, self.data))

    def __repr__(self) -> str:
        return f"RecvResult(count={self.count}, data={self.data[:16]!r}...)"
