"""Simulated operating-system substrate: filesystem, users, scheduling,
and sockets.

These are the environments in which the paper's non-memory
vulnerabilities live: the xterm race needs symlinks and a timing window,
rwall needs terminals versus regular files and a world-writable utmp,
and NULL HTTPD needs ``recv`` chunk semantics.
"""

from .environment import Environment, TRUSTED_PATH, resolve_command
from .filesystem import (
    FileNotFound,
    FileSystem,
    FileType,
    FsError,
    Inode,
    Mode,
    NotADirectory,
    PermissionDenied,
    SymlinkLoop,
    normalize_path,
)
from .scheduler import (
    InterleavingResult,
    RaceAnalysis,
    Scheduler,
    Step,
    ThreadScript,
)
from .sockets import RECV_ERROR, RecvResult, SimulatedSocket
from .users import NOBODY, ROOT, User

__all__ = [
    "Environment",
    "TRUSTED_PATH",
    "resolve_command",
    "FileNotFound",
    "FileSystem",
    "FileType",
    "FsError",
    "Inode",
    "Mode",
    "NotADirectory",
    "PermissionDenied",
    "SymlinkLoop",
    "normalize_path",
    "InterleavingResult",
    "RaceAnalysis",
    "Scheduler",
    "Step",
    "ThreadScript",
    "RECV_ERROR",
    "RecvResult",
    "SimulatedSocket",
    "NOBODY",
    "ROOT",
    "User",
]
