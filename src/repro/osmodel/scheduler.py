"""Deterministic interleaving scheduler for race-condition analysis.

File race conditions (Figure 5; "time-of-check-to-time-of-use") are
timing windows between two operations.  The paper's pFSM2 predicate is
"Tom cannot create a symbolic link until the open operation is complete"
— a statement about *orderings*.  To make that checkable we model each
participant as a sequence of labeled atomic steps and enumerate every
interleaving of the participants, running each from a fresh world state.

The result object reports, per interleaving, whether the run violated a
caller-supplied security predicate, and which orderings (e.g. attacker's
``symlink`` landing between victim's ``check`` and ``open``) did so —
turning the race window into an enumerable, assertable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Dict, Generic, List, Sequence, Tuple, TypeVar

__all__ = ["Step", "ThreadScript", "InterleavingResult", "RaceAnalysis", "Scheduler"]

W = TypeVar("W")  # world-state type


@dataclass(frozen=True)
class Step(Generic[W]):
    """One atomic action of a participant: a label plus an effect on the
    world.  The effect may raise; the exception is recorded and ends
    that participant's script for the interleaving."""

    label: str
    effect: Callable[[W], None]


@dataclass(frozen=True)
class ThreadScript(Generic[W]):
    """A named, ordered list of steps."""

    name: str
    steps: Tuple[Step[W], ...]

    @staticmethod
    def of(name: str, *steps: Step[W]) -> "ThreadScript[W]":
        """Build a script from steps."""
        return ThreadScript(name=name, steps=tuple(steps))


@dataclass
class InterleavingResult(Generic[W]):
    """Outcome of running one interleaving."""

    order: Tuple[str, ...]  # "thread:label" in execution order
    world: W
    violated: bool
    errors: Dict[str, str] = field(default_factory=dict)

    def position(self, qualified_label: str) -> int:
        """Index of a step in the executed order (-1 if skipped)."""
        try:
            return self.order.index(qualified_label)
        except ValueError:
            return -1

    def happened_between(self, label: str, after: str, before: str) -> bool:
        """True when ``label`` executed strictly between ``after`` and
        ``before`` — the shape of a TOCTTOU window hit."""
        i, j, k = (self.position(after), self.position(label),
                   self.position(before))
        return 0 <= i < j < k or (0 <= i < j and k == -1)


@dataclass
class RaceAnalysis(Generic[W]):
    """Aggregate over all interleavings."""

    results: List[InterleavingResult[W]]

    @property
    def total(self) -> int:
        """Number of interleavings executed."""
        return len(self.results)

    @property
    def violations(self) -> List[InterleavingResult[W]]:
        """Interleavings where the security predicate was violated."""
        return [r for r in self.results if r.violated]

    @property
    def has_race(self) -> bool:
        """True when at least one interleaving violates security — the
        hidden-path existence statement for a race-condition pFSM."""
        return bool(self.violations)

    @property
    def violation_ratio(self) -> float:
        """Fraction of interleavings that violate (window width)."""
        if not self.results:
            return 0.0
        return len(self.violations) / len(self.results)


def _merges(lengths: Sequence[int]) -> List[Tuple[int, ...]]:
    """All interleavings of ``len(lengths)`` sequences given their
    lengths, as tuples of thread indexes.  Two threads of lengths n, m
    yield C(n+m, n) interleavings."""
    if len(lengths) == 1:
        return [tuple([0] * lengths[0])]
    if len(lengths) == 2:
        n, m = lengths
        total = n + m
        orders: List[Tuple[int, ...]] = []
        for first_positions in combinations(range(total), n):
            order = [1] * total
            for position in first_positions:
                order[position] = 0
            orders.append(tuple(order))
        return orders
    # General case by recursion: merge thread 0 into every merge of the rest.
    rest = _merges(lengths[1:])
    orders = []
    n = lengths[0]
    for sub in rest:
        total = n + len(sub)
        for positions in combinations(range(total), n):
            order: List[int] = []
            sub_iter = iter(sub)
            position_set = set(positions)
            for slot in range(total):
                if slot in position_set:
                    order.append(0)
                else:
                    order.append(next(sub_iter) + 1)
            orders.append(tuple(order))
    return orders


class Scheduler(Generic[W]):
    """Enumerates and executes interleavings of thread scripts.

    Parameters
    ----------
    world_factory:
        Builds a fresh world for each interleaving (so runs are
        independent).
    scripts_factory:
        Given the fresh world, returns the participant scripts.  (A
        factory because step effects usually close over the world.)
    violation:
        Predicate over the final world: True means security violated.
    """

    def __init__(
        self,
        world_factory: Callable[[], W],
        scripts_factory: Callable[[W], Sequence[ThreadScript[W]]],
        violation: Callable[[W], bool],
    ) -> None:
        self._world_factory = world_factory
        self._scripts_factory = scripts_factory
        self._violation = violation

    def run_order(self, thread_order: Sequence[int]) -> InterleavingResult[W]:
        """Execute one interleaving given a sequence of thread indexes."""
        world = self._world_factory()
        scripts = list(self._scripts_factory(world))
        cursors = [0] * len(scripts)
        executed: List[str] = []
        errors: Dict[str, str] = {}
        dead = set()
        for thread_index in thread_order:
            if thread_index in dead:
                continue
            script = scripts[thread_index]
            cursor = cursors[thread_index]
            if cursor >= len(script.steps):
                continue
            step = script.steps[cursor]
            cursors[thread_index] += 1
            qualified = f"{script.name}:{step.label}"
            try:
                step.effect(world)
                executed.append(qualified)
            except Exception as error:  # recorded, ends this script
                errors[qualified] = f"{type(error).__name__}: {error}"
                dead.add(thread_index)
        return InterleavingResult(
            order=tuple(executed),
            world=world,
            violated=self._violation(world),
            errors=errors,
        )

    def explore(self) -> RaceAnalysis[W]:
        """Run every interleaving and aggregate."""
        probe_world = self._world_factory()
        scripts = list(self._scripts_factory(probe_world))
        lengths = [len(s.steps) for s in scripts]
        results = [self.run_order(order) for order in _merges(lengths)]
        return RaceAnalysis(results=results)

    def run_sequential(self) -> InterleavingResult[W]:
        """The no-concurrency baseline: each script runs to completion in
        order.  A secure implementation must at least pass this."""
        probe_world = self._world_factory()
        scripts = list(self._scripts_factory(probe_world))
        order: List[int] = []
        for index, script in enumerate(scripts):
            order.extend([index] * len(script.steps))
        return self.run_order(order)
