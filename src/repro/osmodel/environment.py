"""Process environment and command resolution.

Support for modeling *Environment Errors* — Figure 1's category defined
as "an interaction in a specific environment between functionally
correct modules".  The classic instance: a privileged program spawns a
helper by bare name, the loader resolves the name through the *caller's*
``PATH``, and a directory the attacker controls shadows the system
binary.  Both modules (the program and the loader) behave correctly in
isolation; the environment wires them into a vulnerability.

:class:`Environment` is a small mapping with PATH conveniences;
:func:`resolve_command` performs the loader's walk over the simulated
filesystem, honouring execute permission bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .filesystem import FileSystem, FileType, Mode
from .users import User

__all__ = ["Environment", "resolve_command", "TRUSTED_PATH"]

#: The sanitized PATH privileged programs should reset to.
TRUSTED_PATH = ("/bin", "/usr/bin")


@dataclass
class Environment:
    """A process environment (the attacker-controllable ambient state)."""

    variables: Dict[str, str] = field(default_factory=dict)

    @staticmethod
    def default() -> "Environment":
        """A typical login environment."""
        return Environment({"PATH": "/bin:/usr/bin", "HOME": "/root",
                            "IFS": " \t\n"})

    def get(self, name: str, fallback: str = "") -> str:
        """Variable lookup with default."""
        return self.variables.get(name, fallback)

    def set(self, name: str, value: str) -> None:
        """Set a variable (what the attacker does before exec)."""
        self.variables[name] = value

    def path_entries(self) -> List[str]:
        """The PATH split into directories, in resolution order."""
        return [entry for entry in self.get("PATH").split(":") if entry]

    def with_sanitized_path(self) -> "Environment":
        """Copy with PATH reset to the trusted directories — the
        standard setuid hygiene fix."""
        clean = dict(self.variables)
        clean["PATH"] = ":".join(TRUSTED_PATH)
        return Environment(clean)

    def path_is_trusted(self) -> bool:
        """Content/attribute predicate: every PATH entry is a trusted
        system directory."""
        return all(entry in TRUSTED_PATH for entry in self.path_entries())


def resolve_command(
    fs: FileSystem, env: Environment, command: str, invoker: User
) -> Optional[str]:
    """The loader's PATH walk: first executable regular file named
    ``command`` in PATH order, or None.

    Absolute command names bypass the walk (and the vulnerability).
    """
    if command.startswith("/"):
        return command if _is_executable(fs, command, invoker) else None
    for directory in env.path_entries():
        candidate = f"{directory.rstrip('/')}/{command}"
        if _is_executable(fs, candidate, invoker):
            return candidate
    return None


def _is_executable(fs: FileSystem, path: str, invoker: User) -> bool:
    try:
        inode = fs.lookup(path)
    except Exception:
        return False
    if inode.file_type is not FileType.REGULAR:
        return False
    # POSIX nuance: even root needs at least one execute bit set.
    if not inode.mode & 0o111:
        return False
    return inode.permits(invoker, Mode.X)
