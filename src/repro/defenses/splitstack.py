"""Split-stack / shadow return stack (the paper's reference [16],
Xu, Kalbarczyk, Patel & Iyer, EASY 2002).

Return addresses are duplicated onto a stack the overflowing data path
cannot reach; on return, the shadow copy is authoritative.  Unlike a
canary, this *recovers* — the function returns to the legitimate site
even after the in-memory word was smashed — and also detects the
tampering, so the event can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..memory import AddressSpace, CallStack, StackFrame

__all__ = ["ShadowStack", "ShadowReturn"]


@dataclass(frozen=True)
class ShadowReturn:
    """Outcome of a shadow-checked return."""

    returned_to: int
    tampering_detected: bool


@dataclass
class ShadowStack:
    """A protected stack of return addresses, paired with a CallStack."""

    _addresses: List[int] = field(default_factory=list)

    def on_call(self, frame: StackFrame) -> None:
        """Record the saved return address at call time."""
        self._addresses.append(frame.saved_return_address)

    def on_return(self, space: AddressSpace, frame: StackFrame) -> ShadowReturn:
        """Resolve the return target: the shadow word wins; a mismatch
        with the in-memory word is reported as tampering."""
        if not self._addresses:
            raise RuntimeError("shadow stack underflow")
        legitimate = self._addresses.pop()
        in_memory = space.read_word(frame.return_address_slot)
        return ShadowReturn(
            returned_to=legitimate,
            tampering_detected=in_memory != legitimate,
        )

    @property
    def depth(self) -> int:
        """Current shadow depth."""
        return len(self._addresses)
