"""Format-string input filtering — the content check of Table 2's
rpc.statd row ("does the filename contain format directives?").

Two strategies: reject outright, or neutralise by escaping every ``%``
so the input prints literally.  Both implement the Content/Attribute
Check pFSM type at the get-input activity.
"""

from __future__ import annotations

from ..memory import contains_directives, parse_directives

__all__ = ["FormatDirectiveError", "reject_directives", "neutralise"]


class FormatDirectiveError(Exception):
    """Raised when user input carries format conversion directives."""

    def __init__(self, directives) -> None:
        shown = ", ".join(d.text for d in directives)
        super().__init__(f"input contains format directives: {shown}")
        self.directives = tuple(directives)


def reject_directives(user_input: bytes) -> bytes:
    """Pass the input through only if it holds no conversion directive;
    raise :class:`FormatDirectiveError` otherwise."""
    directives = parse_directives(user_input)
    if directives:
        raise FormatDirectiveError(directives)
    return user_input


def neutralise(user_input: bytes) -> bytes:
    """Escape every ``%`` as ``%%`` so the string prints literally even
    when (incorrectly) used as a format argument."""
    return user_input.replace(b"%", b"%%")


def is_clean(user_input: bytes) -> bool:
    """Predicate form: no conversion directives present."""
    return not contains_directives(user_input)
