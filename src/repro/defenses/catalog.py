"""Catalog of the defenses the paper maps to elementary activities.

Observation 1's practical payoff: "each elementary activity provides an
opportunity to apply a security check."  For the buffer-overflow chain
the paper names the options explicitly — check the input length at
activity 1, use boundary-checked string functions (getns, strncpy) at
activity 2, or deploy return-address protection (StackGuard [15],
split-stack [16]) at activity 3.

Each catalog entry records which generic pFSM type (Figure 8) the
defense implements and which elementary-activity archetype it attaches
to, so the defense-evaluation harness can inject defenses by activity
and verify the Lemma quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.classification import ActivityKind, PfsmType

__all__ = ["Defense", "DEFENSE_CATALOG", "defenses_for_activity"]


@dataclass(frozen=True)
class Defense:
    """One deployable security check."""

    name: str
    description: str
    implements: PfsmType
    attaches_to: ActivityKind
    citation: str = ""


DEFENSE_CATALOG: Dict[str, Defense] = {
    defense.name: defense
    for defense in [
        Defense(
            name="input-length-check",
            description="validate the input length/range before use",
            implements=PfsmType.CONTENT_ATTRIBUTE,
            attaches_to=ActivityKind.GET_INPUT,
        ),
        Defense(
            name="bounds-checked-copy",
            description="boundary-checked string functions (getns, strncpy)",
            implements=PfsmType.CONTENT_ATTRIBUTE,
            attaches_to=ActivityKind.COPY_TO_BUFFER,
        ),
        Defense(
            name="index-range-check",
            description="two-sided array index validation (0 <= x <= n)",
            implements=PfsmType.CONTENT_ATTRIBUTE,
            attaches_to=ActivityKind.USE_AS_INDEX,
        ),
        Defense(
            name="stackguard",
            description="canary word between locals and the return address",
            implements=PfsmType.REFERENCE_CONSISTENCY,
            attaches_to=ActivityKind.TRANSFER_CONTROL,
            citation="[15] StackGuard",
        ),
        Defense(
            name="split-stack",
            description="return addresses kept on a protected shadow stack",
            implements=PfsmType.REFERENCE_CONSISTENCY,
            attaches_to=ActivityKind.TRANSFER_CONTROL,
            citation="[16] Xu et al., EASY 2002",
        ),
        Defense(
            name="safe-unlink",
            description="verify fd->bk == chunk and bk->fd == chunk before unlink",
            implements=PfsmType.REFERENCE_CONSISTENCY,
            attaches_to=ActivityKind.HANDLE_ADJACENT_DATA,
        ),
        Defense(
            name="got-consistency-check",
            description="verify a GOT entry is unchanged before dispatching",
            implements=PfsmType.REFERENCE_CONSISTENCY,
            attaches_to=ActivityKind.TRANSFER_CONTROL,
        ),
        Defense(
            name="format-directive-filter",
            description="reject user input containing format directives",
            implements=PfsmType.CONTENT_ATTRIBUTE,
            attaches_to=ActivityKind.GET_INPUT,
        ),
        Defense(
            name="file-type-check",
            description="verify the object is of the expected type (e.g. a terminal)",
            implements=PfsmType.OBJECT_TYPE,
            attaches_to=ActivityKind.ACCESS_OBJECT,
        ),
        Defense(
            name="no-follow-open",
            description="refuse to follow symlinks in privileged opens",
            implements=PfsmType.REFERENCE_CONSISTENCY,
            attaches_to=ActivityKind.CHECK_THEN_USE,
        ),
    ]
}


def defenses_for_activity(activity: ActivityKind) -> List[Defense]:
    """All cataloged defenses attachable to one activity archetype."""
    return [
        defense
        for defense in DEFENSE_CATALOG.values()
        if defense.attaches_to is activity
    ]
