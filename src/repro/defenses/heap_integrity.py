"""Heap free-list integrity checking — the missing pFSM3 check of
Figure 4.

The paper's observation (Section 6): "very few techniques are available
to protect other reference inconsistencies, such as ... links to free
memory chunks on the heap."  The safe-unlink predicate
(``B->fd->bk == B and B->bk->fd == B``) is exactly such a technique —
later adopted by mainline glibc.  The allocator enforces it when
constructed with ``check_unlink=True``; this module adds auditing
helpers for harnesses that want to *observe* corruption without
enabling enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..memory import BK_OFFSET, FD_OFFSET, Heap

__all__ = ["ChunkAudit", "audit_free_list"]


@dataclass(frozen=True)
class ChunkAudit:
    """Link-consistency verdict for one free chunk."""

    chunk_address: int
    fd: int
    bk: int
    fd_back_ok: bool
    bk_forward_ok: bool

    @property
    def consistent(self) -> bool:
        """Both invariants hold."""
        return self.fd_back_ok and self.bk_forward_ok


def audit_free_list(heap: Heap) -> List[ChunkAudit]:
    """Audit every free chunk's ``fd``/``bk`` binding.

    Unlike :meth:`Heap.links_intact` this returns the per-chunk detail a
    diagnostic report needs (which link broke, and to where it points).
    """
    audits: List[ChunkAudit] = []
    for chunk_address in heap.free_list():
        fd = heap.space.read_word(chunk_address + FD_OFFSET)
        bk = heap.space.read_word(chunk_address + BK_OFFSET)
        try:
            fd_back_ok = heap.space.read_word(fd + BK_OFFSET) == chunk_address
        except Exception:
            fd_back_ok = False
        try:
            bk_forward_ok = heap.space.read_word(bk + FD_OFFSET) == chunk_address
        except Exception:
            bk_forward_ok = False
        audits.append(
            ChunkAudit(
                chunk_address=chunk_address,
                fd=fd,
                bk=bk,
                fd_back_ok=fd_back_ok,
                bk_forward_ok=bk_forward_ok,
            )
        )
    return audits
