"""StackGuard-style canary protection (the paper's reference [15]).

A random canary word is placed between a frame's locals and its saved
return address; a linear overflow must clobber the canary to reach the
return word, and the epilogue check aborts before the corrupted return
executes.  :class:`~repro.memory.stack.CallStack` provides the slot;
this module supplies canary generation and the policy object used by
the defense-evaluation harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..memory import CallStack, StackFrame

__all__ = ["CanaryPolicy", "TERMINATOR_CANARY"]

#: The classic terminator canary: NUL, CR, LF, -1 — bytes that string
#: functions cannot write past or reproduce.
TERMINATOR_CANARY = 0x000AFF0D


@dataclass(frozen=True)
class CanaryPolicy:
    """Canary selection policy.

    ``random_per_process`` mirrors StackGuard's per-execution random
    canary; otherwise the terminator canary is used.  Seeded for
    reproducibility.
    """

    random_per_process: bool = False
    seed: int = 0x57AC

    def canary_value(self) -> int:
        """The canary word for a new process."""
        if self.random_per_process:
            return random.Random(self.seed).getrandbits(32)
        return TERMINATOR_CANARY

    def protect_frame(
        self,
        stack: CallStack,
        function: str,
        return_address: int,
        local_buffers,
    ) -> StackFrame:
        """Push a frame with this policy's canary installed."""
        return stack.push_frame(
            function,
            return_address=return_address,
            local_buffers=local_buffers,
            canary=self.canary_value(),
        )

    @staticmethod
    def check(stack: CallStack) -> bool:
        """Is the innermost frame's canary intact?"""
        return stack.canary_intact()
