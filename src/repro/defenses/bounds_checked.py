"""Bounds-checked copy primitives — the activity-2 defense family.

These wrap the raw :mod:`repro.memory.strings` operations with an
explicit destination capacity, refusing (``BufferBoundsError``) instead
of overflowing.  They are the executable form of the paper's
"use boundary-checked string functions (e.g., getns, strncpy)".
"""

from __future__ import annotations

from ..memory import AddressSpace, strncpy

__all__ = ["BufferBoundsError", "safe_strcpy", "safe_memcpy", "safe_append"]


class BufferBoundsError(Exception):
    """Raised when a checked copy would exceed the destination."""

    def __init__(self, needed: int, capacity: int) -> None:
        super().__init__(
            f"copy of {needed} bytes exceeds buffer capacity {capacity}"
        )
        self.needed = needed
        self.capacity = capacity


def safe_strcpy(
    space: AddressSpace, dest: int, dest_size: int, src: bytes, label: str = ""
) -> int:
    """strcpy with an explicit capacity: refuses when ``src`` plus its
    NUL terminator would not fit."""
    if len(src) + 1 > dest_size:
        raise BufferBoundsError(len(src) + 1, dest_size)
    space.write_cstring(dest, src, label=label)
    return len(src) + 1


def safe_memcpy(
    space: AddressSpace, dest: int, dest_size: int, src: bytes, count: int,
    label: str = "",
) -> int:
    """memcpy with an explicit capacity."""
    if count > dest_size:
        raise BufferBoundsError(count, dest_size)
    payload = src[:count] + b"\x00" * max(0, count - len(src))
    space.write(dest, payload, label=label)
    return count


def safe_append(
    space: AddressSpace,
    dest: int,
    dest_size: int,
    used: int,
    src: bytes,
    label: str = "",
) -> int:
    """Append ``src`` after ``used`` bytes, bounded by ``dest_size``;
    returns the new used length.  The checked form of NULL HTTPD's
    incremental ``pPostData += rc`` copy loop."""
    if used + len(src) > dest_size:
        raise BufferBoundsError(used + len(src), dest_size)
    space.write(dest + used, src, label=label)
    return used + len(src)
