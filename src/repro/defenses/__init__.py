"""Defenses: the security checks the paper maps to elementary activities.

Each defense implements one of the three generic pFSM types at one
elementary-activity archetype; the defense-evaluation harness injects
them one at a time to demonstrate Observation 1 (any single activity can
foil the exploit) and the Lemma quantitatively.
"""

from .bounds_checked import BufferBoundsError, safe_append, safe_memcpy, safe_strcpy
from .catalog import DEFENSE_CATALOG, Defense, defenses_for_activity
from .format_guard import (
    FormatDirectiveError,
    is_clean,
    neutralise,
    reject_directives,
)
from .heap_integrity import ChunkAudit, audit_free_list
from .splitstack import ShadowReturn, ShadowStack
from .stackguard import CanaryPolicy, TERMINATOR_CANARY

__all__ = [
    "BufferBoundsError",
    "safe_append",
    "safe_memcpy",
    "safe_strcpy",
    "DEFENSE_CATALOG",
    "Defense",
    "defenses_for_activity",
    "FormatDirectiveError",
    "is_clean",
    "neutralise",
    "reject_directives",
    "ChunkAudit",
    "audit_free_list",
    "ShadowReturn",
    "ShadowStack",
    "CanaryPolicy",
    "TERMINATOR_CANARY",
]
