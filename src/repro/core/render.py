"""Rendering pFSMs and models: ASCII reports and Graphviz DOT.

The paper communicates its models as annotated state diagrams (Figures
2–8).  This module regenerates those artifacts from model objects:
``render_pfsm`` prints one primitive FSM with its four transitions
(missing IMPL_REJ marked ``?``, hidden IMPL_ACPT marked dotted), and
``to_dot`` emits a Graphviz digraph of a whole model — solid edges for
specified behaviour, dashed red edges for hidden paths, triangle nodes
for propagation gates.
"""

from __future__ import annotations

from typing import List

from .machine import VulnerabilityModel
from .operation import Operation
from .pfsm import PrimitiveFSM
from .transitions import TransitionKind

__all__ = ["render_pfsm", "render_operation", "render_model", "to_dot"]


def render_pfsm(pfsm: PrimitiveFSM) -> str:
    """ASCII rendering of one primitive FSM (the Figure 2 shape)."""
    lines = [
        f"pFSM {pfsm.name}: {pfsm.activity}",
        f"  object: {pfsm.object_name}",
    ]
    if pfsm.check_type is not None:
        lines.append(f"  type: {pfsm.check_type.value}")
    lines.append("  states: SPEC check -> (accept | reject)")
    for transition in pfsm.transitions_spec():
        lines.append(f"    {transition.render()}")
    return "\n".join(lines)


def render_operation(operation: Operation) -> str:
    """ASCII rendering of an operation: its pFSMs in series."""
    lines = [
        f"Operation: {operation.name}",
        f"  object: {operation.object_description}",
    ]
    for pfsm in operation.pfsms:
        body = render_pfsm(pfsm)
        lines.extend("  " + line for line in body.splitlines())
    return "\n".join(lines)


def render_model(model: VulnerabilityModel) -> str:
    """ASCII rendering of the full cascade with gates."""
    ids = ", ".join(f"#{i}" for i in model.bugtraq_ids) or "n/a"
    lines = [f"=== {model.name} (Bugtraq {ids}) ==="]
    for index, operation in enumerate(model.operations):
        lines.append(render_operation(operation))
        if index < len(model.gates):
            lines.append(f"  ▽ propagation gate: {model.gates[index].description}")
    lines.append(f"terminal consequence: {model.final_consequence}")
    return "\n".join(lines)


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"').replace("\n", "\\n")


def to_dot(model: VulnerabilityModel) -> str:
    """Graphviz DOT for the whole model.

    Each pFSM becomes a three-state cluster; hidden IMPL_ACPT edges are
    dashed red; missing IMPL_REJ edges are drawn grey and labeled '?';
    gates are triangles linking operation clusters.
    """
    lines: List[str] = [
        f'digraph "{_dot_escape(model.name)}" {{',
        "  rankdir=TB;",
        '  node [fontname="Helvetica", fontsize=10];',
        '  edge [fontname="Helvetica", fontsize=9];',
    ]
    previous_exit: str = ""
    for op_index, operation in enumerate(model.operations):
        cluster = f"cluster_op{op_index}"
        lines.append(f"  subgraph {cluster} {{")
        lines.append(f'    label="{_dot_escape(operation.name)}";')
        entry_of_first = ""
        exit_of_last = ""
        for pf_index, pfsm in enumerate(operation.pfsms):
            prefix = f"op{op_index}_pf{pf_index}"
            check = f"{prefix}_check"
            accept = f"{prefix}_accept"
            reject = f"{prefix}_reject"
            lines.append(
                f'    {check} [shape=circle, label="{_dot_escape(pfsm.name)}\\nSPEC check"];'
            )
            lines.append(f'    {accept} [shape=doublecircle, label="accept"];')
            lines.append(f'    {reject} [shape=circle, label="reject"];')
            for transition in pfsm.transitions_spec():
                label = _dot_escape(f"{transition.kind.value}: {transition.label}")
                if transition.kind is TransitionKind.SPEC_ACPT:
                    lines.append(f'    {check} -> {accept} [label="{label}"];')
                elif transition.kind is TransitionKind.SPEC_REJ:
                    lines.append(f'    {check} -> {reject} [label="{label}"];')
                elif transition.kind is TransitionKind.IMPL_REJ:
                    style = (
                        'color=grey, label="? (missing)"'
                        if not transition.exists
                        else f'label="{label}"'
                    )
                    lines.append(f"    {reject} -> {reject} [{style}];")
                else:  # IMPL_ACPT
                    lines.append(
                        f'    {reject} -> {accept} '
                        f'[style=dashed, color=red, label="{label}"];'
                    )
            if pf_index == 0:
                entry_of_first = check
            if pf_index > 0:
                prev_accept = f"op{op_index}_pf{pf_index - 1}_accept"
                lines.append(f"    {prev_accept} -> {check};")
            exit_of_last = accept
        lines.append("  }")
        if previous_exit:
            gate = model.gates[op_index - 1]
            gate_node = f"gate{op_index - 1}"
            lines.append(
                f'  {gate_node} [shape=triangle, '
                f'label="{_dot_escape(gate.description)}"];'
            )
            lines.append(f"  {previous_exit} -> {gate_node};")
            lines.append(f"  {gate_node} -> {entry_of_first};")
        previous_exit = exit_of_last
    terminal = "terminal"
    lines.append(
        f'  {terminal} [shape=box, style=filled, fillcolor="#ffdddd", '
        f'label="{_dot_escape(model.final_consequence)}"];'
    )
    if previous_exit:
        lines.append(f"  {previous_exit} -> {terminal};")
    lines.append("}")
    return "\n".join(lines)
