"""Chunked, resumable, process-distributed sweep scheduling.

:func:`repro.core.sweep.sweep_models` turns a corpus into a flat list of
``(model, operation, pfsm, domain, limit)`` scan tasks; this module is
the scheduler that runs that list across process boundaries.  It adds
three layers on top of the plain executor in :mod:`repro.core.sweep`:

**Chunked dispatch over a warm pool.**  Tasks are grouped into
size-balanced chunks (greedy longest-processing-time packing, with
domain cardinality as the cost estimate) so a handful of huge domains
cannot serialize the sweep behind one worker.  Chunks are dispatched to
a persistent, module-level :class:`~concurrent.futures.ProcessPoolExecutor`
that survives across ``sweep_models`` calls — fork/spawn cost is paid
once per session, not once per sweep (``dist.pool.created`` vs
``dist.pool.reused`` counters).  A chunk whose worker crashes is retried
on a fresh pool, then — still failing — run inline in the parent, so a
poisoned worker degrades throughput, never correctness.

**A pluggable queue front-end.**  Chunk dispatch flows through a work
queue with ``put``/``claim`` semantics (:class:`InProcessQueue` today).
The scheduler only ever *claims* work, so a file- or socket-backed queue
spanning hosts slots in without touching the execution path — the
ROADMAP's distribution-scale step.

**Fingerprint-keyed result reuse.**  Every task whose components have a
stable cross-run identity (predicate spec hashes, domain digest, model
fingerprint — see :func:`repro.core.serialize.sweep_task_fingerprint`)
gets a result key.  Keyed results are memoized in-process (the warm tier
— repeated corpus sweeps in one session skip re-scanning unchanged
tasks, ``dist.memo.hits``) and can be persisted to a JSONL
:class:`ResultStore` (the cold tier — ``sweep_models(resume_from=...)``
re-runs only the delta after a corpus change, ``dist.resume.skips``).
Keys are purely semantic: a rebound predicate, an edited domain, or a
different witness limit all change the key, so reuse is never stale.

Serialized task bytes are produced once by the per-task picklability
probe and reused verbatim for dispatch; a task that does not pickle
(an unregistered opaque predicate) runs inline in the parent instead of
dragging the whole sweep onto threads.

**Zero-copy domain sharing.**  Large materialized domains used to be
re-pickled into every chunk payload.  With the columnar engine enabled,
:func:`run_tasks` now encodes each such domain once (see
:func:`repro.core.columnar.export_shared`), publishes its columns in a
``multiprocessing.shared_memory`` segment, and substitutes a tiny
picklable :class:`~repro.core.columnar.SharedColumnarDomain` ref into
the chunk payloads; pool workers attach the segment read-only and scan
the columns in place.  The parent owns every segment for exactly one
``run_tasks`` call — created before dispatch, unlinked in a ``finally``
after the last chunk completes (crash-retry and inline fallbacks always
re-run the *original* tasks, so a failed attach degrades, never
corrupts).  A substitution only happens when it strictly shrinks the
payload, and where shared memory is unavailable the ref degrades to
inline pickled columns (``dist.shm.fallback``).  Counters:
``dist.shm.segments`` / ``bytes_shared`` / ``bytes_saved`` / ``tasks``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import faults as _faults
from ..obs import DEFAULT as _OBS
from ..obs.sinks import MemorySink
from ..obs.trace import TraceContext, emit_span, mint_span_id
from .predspec import decode_value, encode_value, spec_digest
from .sweep import NO_CACHE, SweepFinding, _scan_task, shared_cache

__all__ = [
    "InProcessQueue",
    "ResultStore",
    "chunk_tasks",
    "domain_digest",
    "task_key",
    "run_tasks",
    "memo_lookup",
    "memo_store",
    "memo_discard",
    "clear_memo",
    "prewarm",
    "set_shm_enabled",
    "shutdown_pool",
    "kill_pool",
    "reset",
]

#: Result slot not yet filled (``None`` is a real "no finding" result).
_PENDING = object()

#: Chunks per worker — mild oversubscription so LPT imbalance and
#: straggler chunks backfill instead of idling the pool.
_CHUNKS_PER_WORKER = 4


# ---------------------------------------------------------------------------
# Stable task identity.
# ---------------------------------------------------------------------------

def _digest_items(items: Sequence[Any]) -> str:
    """Incremental digest of a materialized item sequence.

    Corpus-scale domains are routinely built by tiling a small probe set
    (the same objects repeated by reference), so the canonical encoding
    is memoized by object identity — each distinct object is encoded
    once, and repeats cost a dict lookup plus a hash update.  ``items``
    must be a realized sequence (it keeps every id alive for the scan).
    """
    hasher = hashlib.sha256(b"items\x1f")
    by_id: Dict[int, bytes] = {}
    for item in items:
        key = id(item)
        encoded = by_id.get(key)
        if encoded is None:
            encoded = json.dumps(
                encode_value(item), sort_keys=True, separators=(",", ":"),
            ).encode("utf-8")
            by_id[key] = encoded
        hasher.update(encoded)
        hasher.update(b"\x1f")
    return hasher.hexdigest()


def domain_digest(domain: Any) -> Optional[str]:
    """Stable digest of a domain's contents, or ``None`` when the
    contents have no canonical encodable form.

    Works from the raw backing container (``Domain.backing``): ranges
    digest from their arithmetic triple in O(1), lazy record products
    from their field columns (never materializing the product), anything
    else from the materialized item sequence via the spec value codec.
    The digest is memoized on the domain object.
    """
    cached = getattr(domain, "_dist_digest", None)
    if cached is not None:
        return cached or None  # "" marks a known-undigestable domain
    backing = getattr(domain, "backing", domain)
    digest = ""
    try:
        if isinstance(backing, range):
            digest = spec_digest(["range", backing.start, backing.stop,
                                  backing.step])
        else:
            from .witness import _LazyProduct

            if isinstance(backing, _LazyProduct):
                digest = spec_digest(encode_value(
                    ["records", list(backing._names),
                     [list(column) for column in backing._columns]]
                ))
            else:
                digest = _digest_items(list(backing))
    except (ValueError, TypeError):
        digest = ""
    try:
        setattr(domain, "_dist_digest", digest)
    except Exception:
        pass
    return digest or None


def _model_stamp(model: Any) -> Optional[Tuple[Any, ...]]:
    """Mutation stamp of a model's predicates: every pFSM predicate's
    ``cache_key`` (token + rebind version).  Rebinding any check changes
    the stamp, so fingerprint memos validated against it never go stale
    (the ROADMAP's cache-invalidation-on-version-bump item)."""
    try:
        parts: List[Any] = []
        for _operation, pfsm in model.all_pfsms():
            impl = pfsm.impl_accepts
            parts.append((pfsm.spec_accepts.cache_key,
                          impl.cache_key if impl is not None else None))
        return tuple(parts)
    except Exception:
        return None


def _model_fingerprint(model: Any) -> str:
    """:func:`repro.core.serialize.model_fingerprint`, memoized on the
    model object (corpus models are long-lived; the canonical-JSON dump
    is not free at sweep frequency).  The memo is validated against the
    model's predicate mutation stamp — a rebound check recomputes."""
    stamp = _model_stamp(model)
    cached = getattr(model, "_dist_fingerprint", None)
    if (isinstance(cached, tuple) and len(cached) == 2
            and stamp is not None and cached[0] == stamp):
        return cached[1]
    from .serialize import model_fingerprint

    fingerprint = model_fingerprint(model)
    try:
        setattr(model, "_dist_fingerprint", (stamp, fingerprint))
    except Exception:
        try:
            object.__setattr__(model, "_dist_fingerprint",
                               (stamp, fingerprint))
        except Exception:
            pass
    return fingerprint


def task_key(model: Any, task: Sequence[Any]) -> Optional[str]:
    """The resumable-result key of one sweep task, or ``None`` when the
    task has no stable cross-run identity (see
    :func:`repro.core.serialize.sweep_task_fingerprint`)."""
    _model_name, operation_name, pfsm, domain, limit = task
    digest = domain_digest(domain)
    if digest is None:
        return None
    from .serialize import sweep_task_fingerprint

    # The model fingerprint dominates the cost; hand over the memoized
    # digest instead of the model.
    return sweep_task_fingerprint(
        _model_fingerprint(model), operation_name, pfsm, digest, limit,
    )


# ---------------------------------------------------------------------------
# The persistent result store (cold tier).
# ---------------------------------------------------------------------------

def _encode_finding(finding: Optional[SweepFinding]) -> Any:
    """Tagged-JSON form of a finding (``None`` stays ``None``).  Raises
    :class:`ValueError` for witnesses outside the value codec."""
    if finding is None:
        return None
    return {
        "model_name": finding.model_name,
        "operation_name": finding.operation_name,
        "pfsm_name": finding.pfsm_name,
        "activity": finding.activity,
        "witnesses": [encode_value(w) for w in finding.witnesses],
    }


def _decode_finding(payload: Any) -> Optional[SweepFinding]:
    if payload is None:
        return None
    return SweepFinding(
        model_name=payload["model_name"],
        operation_name=payload["operation_name"],
        pfsm_name=payload["pfsm_name"],
        activity=payload["activity"],
        witnesses=tuple(decode_value(w) for w in payload["witnesses"]),
    )


class ResultStore:
    """Append-only JSONL store of sweep results keyed by task fingerprint.

    One record per line: ``{"key": <fingerprint>, "finding": <tagged
    JSON or null>}``.  ``load`` returns the last record per key (so
    re-recording a key supersedes, no compaction needed); malformed
    lines are skipped and counted (``dist.store.malformed``), keeping a
    store that died mid-write usable for resume.

    A process that crashes mid-append leaves a truncated trailing line
    with no newline.  Both halves of the failure are tolerated: ``load``
    skips the partial tail (counted as ``dist.store.truncated``, with an
    event naming the path), and the append paths heal the file by
    prefixing a newline before the next record — without the repair,
    the next append would glue onto the partial line and silently
    swallow one valid record.

    Appends degrade instead of crashing: an :class:`OSError` mid-write
    (disk full, permissions yanked) is counted
    (``dist.store.write_errors``) and reported as an unrecorded result —
    the sweep keeps its in-memory answer and later runs simply rescan
    the missing keys.  The ``store.append.torn`` / ``store.append.enospc``
    fault taps (:mod:`repro.faults`) exercise exactly these paths.
    """

    def __init__(self, path: Any) -> None:
        self.path = str(path)
        self.write_errors = 0

    def _write_failed(self) -> None:
        self.write_errors += 1
        if _OBS.enabled:
            _OBS.incr("dist.store.write_errors")
            _OBS.event("dist.store.write_error", path=self.path)

    def _tail_truncated(self) -> bool:
        """Does the file end mid-record (non-empty, no final newline)?"""
        import os

        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):
            return False  # missing or empty file

    def _append_prefix(self) -> str:
        """``"\\n"`` when the previous append died mid-line, else ``""``
        (counting and reporting the repair)."""
        if not self._tail_truncated():
            return ""
        if _OBS.enabled:
            _OBS.incr("dist.store.truncated")
            _OBS.event("dist.store.truncated", path=self.path,
                       action="repaired")
        return "\n"

    def load(self) -> Dict[str, Optional[SweepFinding]]:
        """Every stored ``key → finding`` (``None`` = scanned, clean)."""
        import json
        import os

        results: Dict[str, Optional[SweepFinding]] = {}
        if not os.path.exists(self.path):
            return results
        with open(self.path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        truncated_tail = bool(raw) and not raw.endswith("\n")
        lines = raw.split("\n")
        for position, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                results[key] = _decode_finding(record["finding"])
            except Exception:
                if not _OBS.enabled:
                    continue
                if truncated_tail and position == len(lines) - 1:
                    _OBS.incr("dist.store.truncated")
                    _OBS.event("dist.store.truncated", path=self.path,
                               action="skipped")
                else:
                    _OBS.incr("dist.store.malformed")
        return results

    def record(self, key: str, finding: Optional[SweepFinding]) -> bool:
        """Append one result; ``False`` (not an error) when the finding's
        witnesses fall outside the value codec."""
        import json

        try:
            payload = _encode_finding(finding)
        except ValueError:
            if _OBS.enabled:
                _OBS.incr("dist.store.unencodable")
            return False
        prefix = self._append_prefix()
        line = prefix + json.dumps({"key": key, "finding": payload}) + "\n"
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                # No sort_keys: record-shaped witnesses must round-trip
                # with their field order intact.
                if _faults.fire("store.append.enospc") is not None:
                    raise OSError(28, "injected: store.append.enospc")
                if _faults.fire("store.append.torn") is not None:
                    handle.write(line[: max(1, len(line) // 2)])
                    self._write_failed()
                    return False
                handle.write(line)
        except OSError:
            self._write_failed()
            return False
        return True

    def record_many(
        self, items: Sequence[Tuple[str, Optional[SweepFinding]]]
    ) -> int:
        """Batch append; returns how many results were recordable."""
        import json

        lines: List[str] = []
        for key, finding in items:
            try:
                payload = _encode_finding(finding)
            except ValueError:
                if _OBS.enabled:
                    _OBS.incr("dist.store.unencodable")
                continue
            # No sort_keys: see record().
            lines.append(json.dumps({"key": key, "finding": payload}))
        if lines:
            prefix = self._append_prefix()
            blob = prefix + "\n".join(lines) + "\n"
            try:
                with open(self.path, "a", encoding="utf-8") as handle:
                    if _faults.fire("store.append.enospc") is not None:
                        raise OSError(28, "injected: store.append.enospc")
                    if _faults.fire("store.append.torn") is not None:
                        handle.write(blob[: max(1, len(blob) // 2)])
                        self._write_failed()
                        return 0
                    handle.write(blob)
            except OSError:
                self._write_failed()
                return 0
        return len(lines)


# ---------------------------------------------------------------------------
# In-memory result memo (warm tier).
# ---------------------------------------------------------------------------

_MEMO_MAX = 1 << 12
_MEMO_LOCK = threading.Lock()
_RESULT_MEMO: "OrderedDict[str, Optional[SweepFinding]]" = OrderedDict()


def _memo_get(key: str) -> Any:
    with _MEMO_LOCK:
        if key in _RESULT_MEMO:
            _RESULT_MEMO.move_to_end(key)
            return _RESULT_MEMO[key]
        return _PENDING


def _memo_put(key: str, finding: Optional[SweepFinding]) -> None:
    with _MEMO_LOCK:
        _RESULT_MEMO[key] = finding
        _RESULT_MEMO.move_to_end(key)
        while len(_RESULT_MEMO) > _MEMO_MAX:
            _RESULT_MEMO.popitem(last=False)


def memo_lookup(key: str) -> Tuple[bool, Optional[SweepFinding]]:
    """``(hit, finding)`` for one fingerprint key in the warm tier.

    The public face of the in-process result memo, shared with external
    front-ends (the :mod:`repro.serve` tiered cache): a hit refreshes
    the key's LRU position exactly like scheduler-internal reuse, and
    ``None`` findings ("scanned, clean") are distinguishable from
    misses by the boolean.
    """
    found = _memo_get(key)
    if found is _PENDING:
        return False, None
    return True, found


def memo_store(key: str, finding: Optional[SweepFinding]) -> None:
    """Install one fingerprint-keyed result into the warm tier, making
    it visible to every scheduler and service sharing this process."""
    _memo_put(key, finding)


def memo_discard(key: str) -> bool:
    """Drop one fingerprint-keyed result from the warm tier; ``True``
    when an entry was actually evicted.  The invalidation hook of the
    serving layer's :class:`~repro.serve.cache.TieredResultCache`."""
    with _MEMO_LOCK:
        return _RESULT_MEMO.pop(key, _PENDING) is not _PENDING


def clear_memo() -> None:
    """Drop every memoized task result (the in-process warm tier)."""
    with _MEMO_LOCK:
        _RESULT_MEMO.clear()


# ---------------------------------------------------------------------------
# The warm process pool.
# ---------------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS: Optional[int] = None
_POOL_LOCK = threading.Lock()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The session's persistent pool, recreated only when the requested
    width changes (or after :func:`shutdown_pool`)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None and _POOL_WORKERS == workers:
            if _OBS.enabled:
                _OBS.incr("dist.pool.reused")
            return _POOL
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
        if _OBS.enabled:
            _OBS.incr("dist.pool.created")
        return _POOL


def prewarm(workers: int) -> None:
    """Spin up the warm pool ahead of the first sweep.

    Long-running front-ends (``repro serve``) call this at startup so
    the fork/spawn cost is paid before readiness is reported, not inside
    the first client request.
    """
    _get_pool(workers)


def shutdown_pool() -> None:
    """Tear down the warm pool (tests, benches, session end)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = None


def kill_pool() -> None:
    """Forcibly terminate the warm pool's processes *now*.

    The cooperative :func:`shutdown_pool` waits for in-flight work — a
    worker wedged inside a hung scan would stall it forever.  The chunk
    deadline watchdog (``repro worker --chunk-timeout``) calls this
    instead: SIGTERM every pool process, then discard the executor
    without waiting.  The next :func:`_get_pool` builds a fresh pool.
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool, _POOL, _POOL_WORKERS = _POOL, None, None
    if pool is None:
        return
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - pre-3.9 signature
        pool.shutdown(wait=False)
    if _OBS.enabled:
        _OBS.incr("dist.pool.killed")


def reset() -> None:
    """Fresh-session state: no warm pool, no memoized results."""
    shutdown_pool()
    clear_memo()


# ---------------------------------------------------------------------------
# Chunking.
# ---------------------------------------------------------------------------

def _task_cost(task: Sequence[Any]) -> float:
    """Plan-estimated scan cost of one task (see
    :func:`repro.core.plan.task_cost`): interval-strategy tasks are
    O(limit)-cheap however large their domain, compiled tasks weigh
    their program's per-object cost.  Falls back to domain cardinality
    when the planner is bypassed or cannot size the task."""
    from . import plan

    cost = None
    try:
        cost = plan.task_cost(task)
    except Exception:
        cost = None
    if cost is not None:
        return cost
    try:
        return float(max(1, len(task[3])))
    except TypeError:
        return 1.0


def chunk_tasks(tasks: Sequence[Any], indexes: Sequence[int],
                n_chunks: int) -> List[List[int]]:
    """Pack ``indexes`` (into ``tasks``) into ``n_chunks`` size-balanced
    chunks — greedy LPT on the plan cost estimate, deterministic ties.

    Never returns empty chunks: with fewer tasks than chunks, the chunk
    count shrinks.
    """
    n_chunks = max(1, min(n_chunks, len(indexes)))
    costs = {index: _task_cost(tasks[index]) for index in indexes}
    ordered = sorted(indexes, key=lambda i: (-costs[i], i))
    chunks: List[List[int]] = [[] for _ in range(n_chunks)]
    heap: List[Tuple[float, int]] = [(0.0, c) for c in range(n_chunks)]
    for index in ordered:
        load, chunk_id = heappop(heap)
        chunks[chunk_id].append(index)
        heappush(heap, (load + costs[index], chunk_id))
    # Tasks inside a chunk run in submission order for determinism of
    # any per-chunk telemetry; results are reassembled by index anyway.
    for chunk in chunks:
        chunk.sort()
    return chunks


# ---------------------------------------------------------------------------
# The pluggable queue front-end.
# ---------------------------------------------------------------------------

class InProcessQueue:
    """Minimal work queue: FIFO ``put``/``claim`` over an in-process
    deque.  The scheduler only touches this protocol, so a file- or
    socket-backed queue (tasks spanning hosts) is a drop-in
    replacement — implement ``put(item)``, ``claim(claimant=None) ->
    item | None``, ``requeue(item)``, and ``complete(item)``.

    A claim is *leased*, not forgotten: the queue records ``(item,
    claimant)`` until the claimant either finishes the item
    (:meth:`complete`) or hands it back (:meth:`requeue` — the item
    rejoins the *front* of the queue, so reclaimed work is re-issued
    before fresh work).  This is the single queue contract shared by
    the in-process scheduler and the cluster coordinator's TCP
    front-end: the :mod:`repro.cluster` lease layer drives exactly
    these four methods.
    """

    def __init__(self) -> None:
        self._items: "deque[Any]" = deque()
        self._claimed: List[Tuple[Any, Optional[str]]] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, item: Any) -> None:
        with self._lock:
            self._items.append(item)

    def claim(self, claimant: Optional[str] = None) -> Optional[Any]:
        """Next unclaimed item (recording who claimed it), or ``None``
        when the queue is drained."""
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._claimed.append((item, claimant))
            return item

    def _drop_claim(self, item: Any) -> bool:
        for position, (claimed, _claimant) in enumerate(self._claimed):
            if claimed is item or claimed == item:
                del self._claimed[position]
                return True
        return False

    def requeue(self, item: Any) -> bool:
        """Return a claimed-but-unfinished item to the front of the
        queue (the lease layer's reclaim path).  ``True`` when a
        matching claim record existed; the item is re-enqueued either
        way, so a reclaim is never silently lost."""
        with self._lock:
            had_claim = self._drop_claim(item)
            self._items.appendleft(item)
            return had_claim

    def complete(self, item: Any) -> bool:
        """Discharge a claim after its item finished; ``True`` when a
        matching claim record existed."""
        with self._lock:
            return self._drop_claim(item)

    def claimed(self) -> List[Tuple[Any, Optional[str]]]:
        """Snapshot of outstanding ``(item, claimant)`` claims."""
        with self._lock:
            return list(self._claimed)


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------

def _chunk_worker(
    chunk: List[Tuple[int, bytes]],
    traceparent: Optional[str] = None,
) -> Any:
    """Run one chunk of serialized tasks in a worker process.

    Tasks rebuild through predicate specs (see
    :mod:`repro.core.predspec`); scans share the *worker's* process-wide
    predicate cache, whose spec-hash keys make verdicts memoized by one
    chunk reusable by every later chunk in the same worker.

    Payloads come in two shapes: ``(task, program)`` pairs — the
    compiled plan primes the worker's plan cache (and imports the
    parent's CSE marks) as it unpickles — and bare legacy task tuples.
    All tasks of a chunk share one :class:`~repro.core.plan.NodeMemo`,
    so subpredicates shared across the chunk's models evaluate once per
    object.

    With a ``traceparent`` (the shipping chunk's trace context,
    serialized W3C-style), the worker continues the parent's trace: its
    registry records for the chunk's duration under the decoded ambient
    context, and the return value becomes ``(results, span_events)`` —
    the worker's finished spans, stamped with its pid, ship back with
    the chunk results for the parent to replay into its own sinks.
    Without one, the return shape is the bare results list, unchanged.
    """
    from . import plan

    ctx = TraceContext.from_traceparent(traceparent) \
        if traceparent is not None else None
    sink: Optional[MemorySink] = None
    restore = None
    was_enabled = _OBS.enabled
    if ctx is not None:
        sink = MemorySink()
        _OBS.enable(sink)
        restore = _OBS.set_trace(ctx)
    try:
        cache = shared_cache()
        memo = plan.NodeMemo() if plan.is_enabled() else None
        results: List[Tuple[int, Optional[SweepFinding]]] = []
        for index, raw in chunk:
            loaded = pickle.loads(raw)
            if isinstance(loaded, tuple) and len(loaded) == 2:
                task = loaded[0]  # loaded[1] (the plan) primed the cache
            else:
                task = loaded
            results.append((index, _scan_task(task, cache=cache, memo=memo)))
    finally:
        if sink is not None:
            _OBS.set_trace(restore)
            if not was_enabled:
                _OBS.disable()
            _OBS.remove_sink(sink)
    if sink is None:
        return results
    pid = os.getpid()
    span_events = []
    for event in sink.events:
        if event.get("type") == "span":
            event["pid"] = pid
            span_events.append(event)
    return results, span_events


# ---------------------------------------------------------------------------
# The scheduler.
# ---------------------------------------------------------------------------

def _serialize_task(task: Any) -> Optional[bytes]:
    """Dispatch payload of one task: ``(task, compiled plan)`` — the
    plan degrades to ``None`` rather than blocking distribution."""
    from . import plan

    program = None
    try:
        if plan.is_enabled():
            program = plan.program_for(task[2])
    except Exception:
        program = None
    if program is not None:
        try:
            return pickle.dumps((task, program))
        except Exception:
            pass
    try:
        return pickle.dumps((task, None))
    except Exception:
        return None


#: Gate for the shared-memory domain substitution (tests flip it;
#: ``repro sweep --no-columnar`` disables it with the rest of the
#: columnar engine).
_SHM_ENABLED = True


def set_shm_enabled(on: bool) -> bool:
    """Enable/disable zero-copy domain sharing; returns the previous
    setting."""
    global _SHM_ENABLED
    previous = _SHM_ENABLED
    _SHM_ENABLED = bool(on)
    return previous


class _ShmSession:
    """The per-``run_tasks`` shared-domain registry: one export per
    distinct domain object, every export unlinked at :meth:`close`."""

    def __init__(self) -> None:
        self._exports: Dict[int, Any] = {}
        self._pinned: List[Any] = []  # keep ids unique for the session

    def ref_for(self, domain: Any) -> Optional[Any]:
        from . import columnar

        ident = id(domain)
        if ident in self._exports:
            export = self._exports[ident]
        else:
            try:
                export = columnar.export_shared(domain)
            except Exception:
                export = None
            self._exports[ident] = export
            self._pinned.append(domain)
            if export is not None and _OBS.enabled:
                if export.ref.segment is not None:
                    _OBS.incr("dist.shm.segments")
                    _OBS.incr("dist.shm.bytes_shared", export.nbytes)
                else:
                    _OBS.incr("dist.shm.fallback")
        return None if export is None else export.ref

    def shipped_any(self) -> bool:
        return any(export is not None
                   for export in self._exports.values())

    def close(self) -> None:
        for export in self._exports.values():
            if export is not None:
                export.close()
        self._exports.clear()
        self._pinned.clear()


def _substitute_shared_domains(
    tasks: Sequence[Any],
    pending: Sequence[int],
    payload_list: List[Optional[bytes]],
) -> Optional[_ShmSession]:
    """Replace big materialized domains in the pending payloads with
    shared-memory refs.  Returns the session owning the segments (close
    it after dispatch), or ``None`` when nothing was substituted.

    Two gates keep this strictly a win.  A task is only eligible when
    its compiled program vectorizes over the domain's encoding — a
    worker scanning a shared ref on the *scalar* path would have to
    rebuild every row from columns, which is slower than iterating the
    pickled original.  And each substitution is accepted only if it
    strictly shrinks the payload, so the worst case is byte-for-byte
    the status quo."""
    try:
        from . import columnar, plan

        if not columnar.is_enabled():
            return None
    except Exception:
        return None
    session = _ShmSession()
    shipped = 0
    saved = 0
    for index in pending:
        task = tasks[index]
        try:
            # Cheapest gate first: a structurally scalar-only spec never
            # justifies encoding (and content-digesting) a big domain.
            program = plan.program_for(task[2])
            if not columnar.spec_vectorizable(program):
                continue
            if not columnar.kernel_available(program, task[3]):
                continue
            ref = session.ref_for(task[3])
        except Exception:
            ref = None
        if ref is None:
            continue
        original = payload_list[index]
        substituted = _serialize_task(
            (task[0], task[1], task[2], ref, task[4]))
        if substituted is None or original is None or \
                len(substituted) >= len(original):
            continue
        payload_list[index] = substituted
        shipped += 1
        saved += len(original) - len(substituted)
    if not shipped:
        session.close()
        return None
    if _OBS.enabled:
        _OBS.incr("dist.shm.tasks", shipped)
        _OBS.incr("dist.shm.bytes_saved", saved)
    return session


def run_tasks(
    tasks: Sequence[Any],
    workers: int,
    *,
    backend: str = "process",
    keys: Optional[Sequence[Optional[str]]] = None,
    payloads: Optional[Sequence[Optional[bytes]]] = None,
    queue: Optional[Any] = None,
    max_retries: int = 2,
) -> List[Optional[SweepFinding]]:
    """Execute scan tasks through the chunked process scheduler.

    Parameters
    ----------
    tasks:
        ``(model_name, operation_name, pfsm, domain, limit)`` tuples (the
        :mod:`repro.core.sweep` task shape).
    workers:
        Process-pool width.
    backend:
        ``"process"`` dispatches chunks directly; ``"queue"`` routes them
        through the pluggable work queue first (same execution, claimed
        dispatch — the seam for cross-host queues); ``"cluster"`` ships
        chunks through the ambient :mod:`repro.cluster` coordinator to
        remote worker agents (lease-tracked, reclaimed on worker death,
        inline fallback on retry exhaustion — results stay bit-for-bit
        equal to ``"process"``).
    keys:
        Optional per-task result keys (from :func:`task_key`).  Keyed
        tasks hit the in-memory result memo; ``None`` entries always
        compute.
    payloads:
        Optional pre-serialized task bytes (the per-task picklability
        probe's output, reused for dispatch).  Missing entries are
        serialized here; unpicklable tasks run inline in the parent.
    queue:
        Queue instance for ``backend="queue"`` (default
        :class:`InProcessQueue`).
    max_retries:
        Per-chunk resubmissions after a worker crash before the chunk
        falls back to inline execution.

    Returns results in task order, exactly like the inline executor.
    """
    obs_on = _OBS.enabled
    count = len(tasks)
    results: List[Any] = [_PENDING] * count

    # Warm tier: reuse fingerprint-keyed results computed earlier in the
    # session.
    if keys is not None:
        memo_hits = 0
        for index, key in enumerate(keys):
            if key is None:
                continue
            memoized = _memo_get(key)
            if memoized is not _PENDING:
                results[index] = memoized
                memo_hits += 1
        if obs_on and memo_hits:
            _OBS.incr("dist.memo.hits", memo_hits)

    # Per-task probe; serialized bytes are the dispatch payload.
    if payloads is None:
        payloads = [None] * count
    payload_list: List[Optional[bytes]] = list(payloads)
    pending: List[int] = []
    inline_indexes: List[int] = []
    for index in range(count):
        if results[index] is not _PENDING:
            continue
        if payload_list[index] is None:
            payload_list[index] = _serialize_task(tasks[index])
        if payload_list[index] is None:
            inline_indexes.append(index)
        else:
            pending.append(index)
    if obs_on and inline_indexes:
        _OBS.incr("dist.tasks.unpicklable", len(inline_indexes))

    # Encode-once domain sharing: big materialized domains leave the
    # payloads and ride shared memory instead (see module docstring).
    # Cluster payloads skip it — shared-memory segments do not cross
    # the host boundary, and the refs would fail to attach remotely.
    shared_session: Optional[_ShmSession] = None
    if pending and _SHM_ENABLED and backend != "cluster":
        shared_session = _substitute_shared_domains(
            tasks, pending, payload_list)

    try:
        with _OBS.span("dist.run", backend=backend, tasks=count,
                       pending=len(pending), workers=workers) as span:
            if pending and backend == "cluster":
                _run_cluster_chunks(tasks, payload_list, pending,
                                    workers, results, max_retries)
            elif pending:
                chunks = chunk_tasks(tasks, pending,
                                     workers * _CHUNKS_PER_WORKER)
                if obs_on:
                    _OBS.incr("dist.chunks", len(chunks))
                if backend == "queue":
                    front = queue if queue is not None else InProcessQueue()
                    for chunk in chunks:
                        front.put(chunk)
                    claimed: List[List[int]] = []
                    while True:
                        item = front.claim("dist.run_tasks")
                        if item is None:
                            break
                        claimed.append(item)
                    chunks = claimed
                    if obs_on:
                        _OBS.incr("dist.queue.claimed", len(chunks))
                _execute_chunks(tasks, payload_list, chunks, workers,
                                results, max_retries)
                if backend == "queue":
                    # Synchronous drain: every claim is discharged once
                    # the chunks have executed (crash retry and inline
                    # fallback included), so external queues never see a
                    # dangling claim from this path.
                    for chunk in chunks:
                        front.complete(chunk)

            # Parent-side inline degrade for tasks that never pickled.
            for index in inline_indexes:
                results[index] = _scan_task(tasks[index], cache=NO_CACHE)

            memoized = 0
            if keys is not None:
                computed_indexes = set(pending).union(inline_indexes)
                for index, key in enumerate(keys):
                    if key is not None and index in computed_indexes:
                        _memo_put(key, results[index])
                        memoized += 1
            span.set(computed=len(pending) + len(inline_indexes),
                     memoized=memoized)
    finally:
        if shared_session is not None:
            shared_session.close()
    return [None if r is _PENDING else r for r in results]


def _run_cluster_chunks(
    tasks: Sequence[Any],
    payloads: Sequence[Optional[bytes]],
    pending: Sequence[int],
    workers: int,
    results: List[Any],
    max_retries: int,
) -> None:
    """Ship the pending chunks through the ambient cluster coordinator.

    Chunk width scales with the fabric (connected workers beat the
    local ``workers`` hint when larger), execution happens wherever a
    worker claims the chunk, and chunks whose reclaim retries are
    exhausted — or that a closing fabric handed back — degrade to the
    scheduler's usual inline per-task path.  Either way every pending
    index is filled, with results identical to ``backend="process"``.
    """
    from .. import cluster

    coordinator = cluster.get_coordinator()
    if coordinator is None:
        raise RuntimeError(
            "backend='cluster' needs a running coordinator: start one "
            "with `repro sweep --listen HOST:PORT`, `repro serve "
            "--backend cluster`, or repro.cluster.set_coordinator()")
    width = max(int(workers), coordinator.worker_count(), 1)
    chunks = chunk_tasks(tasks, pending, width * _CHUNKS_PER_WORKER)
    if _OBS.enabled:
        _OBS.incr("dist.chunks", len(chunks))
    payload_chunks = [[(index, payloads[index]) for index in chunk]
                      for chunk in chunks]
    got, failed = coordinator.run_chunks(payload_chunks,
                                         max_retries=max_retries)
    for index, finding in got.items():
        results[index] = finding
    if failed and _OBS.enabled:
        _OBS.incr("dist.chunk.inline_fallback", len(failed))
    for index in failed:
        results[index] = _scan_task(tasks[index], cache=NO_CACHE)


def _execute_chunks(
    tasks: Sequence[Any],
    payloads: Sequence[Optional[bytes]],
    chunks: List[List[int]],
    workers: int,
    results: List[Any],
    max_retries: int,
) -> None:
    """Dispatch chunks to the warm pool; retry crashed chunks on a fresh
    pool; last resort runs the chunk inline in the parent.

    When an ambient trace context is live (the serving path sets one
    around the engine dispatch, and the enclosing ``dist.run`` span
    narrows it to itself), every chunk ships a child context as a
    serialized traceparent: the worker continues the trace and returns
    its finished spans with the results, which are replayed into this
    process's sinks under a per-chunk ``dist.chunk`` span.
    """
    obs_on = _OBS.enabled
    trace_ctx = _OBS.current_trace() if obs_on else None
    pending_chunks = chunks
    attempt = 0
    while pending_chunks and attempt <= max_retries:
        pool = _get_pool(workers)
        failed: List[List[int]] = []
        futures = {}
        submit_at: Dict[Any, float] = {}
        submit_wall: Dict[Any, float] = {}
        chunk_hexes: Dict[Any, Optional[str]] = {}
        for position, chunk in enumerate(pending_chunks):
            payload = [(i, payloads[i]) for i in chunk]
            chunk_hex: Optional[str] = None
            try:
                if _faults.fire("dist.dispatch.crash") is not None:
                    raise _faults.InjectedFault("dist.dispatch.crash")
                if trace_ctx is not None:
                    # The chunk span's id is minted at submission so the
                    # worker's spans can parent under it before the span
                    # itself is emitted (on completion).
                    chunk_hex = mint_span_id()
                    header = TraceContext(
                        trace_ctx.trace_id, chunk_hex,
                        trace_ctx.sampled).to_traceparent()
                    future = pool.submit(_chunk_worker, payload, header)
                else:
                    future = pool.submit(_chunk_worker, payload)
            except Exception:
                # Pool broke at submission time; this chunk and every
                # later one join the retry set.
                failed.extend(pending_chunks[position:])
                break
            futures[future] = chunk
            submit_at[future] = time.monotonic()
            submit_wall[future] = _OBS._wall()
            chunk_hexes[future] = chunk_hex
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(outstanding,
                                     return_when=FIRST_COMPLETED)
            for future in done:
                chunk = futures[future]
                try:
                    outcome = future.result()
                    if isinstance(outcome, tuple) and len(outcome) == 2:
                        pairs, remote_spans = outcome
                    else:
                        pairs, remote_spans = outcome, ()
                    for index, finding in pairs:
                        results[index] = finding
                    elapsed = time.monotonic() - submit_at[future]
                    if chunk_hexes.get(future) is not None:
                        emit_span(
                            _OBS, "dist.chunk", trace_ctx,
                            submit_wall[future], elapsed,
                            span_hex=chunk_hexes[future],
                            tasks=len(chunk), attempt=attempt,
                        )
                        for event in remote_spans:
                            _OBS._emit(event)
                    if obs_on:
                        _OBS.incr("dist.chunk.completed")
                        _OBS.event(
                            "dist.chunk",
                            tasks=len(chunk),
                            seconds=elapsed,
                        )
                except Exception:
                    failed.append(chunk)
        if failed:
            # A crashed worker poisons the whole pool; start fresh.
            shutdown_pool()
            if attempt < max_retries and obs_on:
                _OBS.incr("dist.chunk.retries", len(failed))
        pending_chunks = failed
        attempt += 1
    for chunk in pending_chunks:
        if obs_on:
            _OBS.incr("dist.chunk.inline_fallback")
        for index in chunk:
            results[index] = _scan_task(tasks[index], cache=NO_CACHE)
