"""Predicate algebra for pFSM conditions.

Observation 3 of the paper: for each elementary activity, the
vulnerability data and code inspection allow deriving a *predicate*
which, if violated, results in a security vulnerability.  A pFSM is then
"a predicate for accepting an input object with respect to the
specification and implementation".

This module makes predicates first-class: named, composable (``&``,
``|``, ``~``), evaluable over arbitrary analysis objects, and queryable
over finite domains (for hidden-path witness search).  A small library of
constructors covers the checks appearing in the paper's Table 2 —
numeric ranges (``0 <= x <= 100``), length bounds
(``length(input) <= size(buffer)``), content checks (contains ``../``,
contains format directives), type checks, and reference-consistency
comparisons.

Alongside the callable, every library constructor carries a declarative
*spec* — a JSON-serializable term describing how to rebuild the
predicate (see :mod:`repro.core.predspec`).  Specs make predicates
picklable (pickling ships the spec, unpickling re-runs the
constructor), hashable by meaning (``spec_hash`` — the key the
distributed sweep runner and the spec-keyed :class:`PredicateCache`
use), and transportable to worker processes and, eventually, other
hosts.  Predicates built from raw callables are *opaque* (``spec`` is
``None``) unless registered by name through
:func:`repro.core.predspec.named_predicate`.
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Predicate",
    "predicate",
    "always",
    "never",
    "truthy",
    "attr",
    "equals",
    "in_range",
    "less_equal",
    "greater_equal",
    "length_le",
    "contains",
    "not_contains",
    "matches",
    "is_instance",
    "satisfies_all",
    "satisfies_any",
]


# ---------------------------------------------------------------------------
# Closed-form interval semantics.
#
# The comparison constructors (``in_range``, ``less_equal``,
# ``greater_equal``, integer ``equals``) denote *interval sets* over the
# integers.  Carrying that denotation on the predicate lets batch
# evaluation over ``range``-backed domains run arithmetically — witness
# counting becomes interval intersection, O(1) instead of an O(n) scan.
#
# An interval set is a sorted tuple of disjoint ``(low, high)`` pairs
# with ``None`` meaning unbounded on that side.  The combinators below
# keep the representation normalized so ``&``/``|``/``~`` compose exact
# closed forms.
# ---------------------------------------------------------------------------

_NEG_INF = float("-inf")
_POS_INF = float("inf")

Interval = Tuple[Optional[int], Optional[int]]
IntervalSet = Tuple[Interval, ...]


def _lo(bound: Optional[int]) -> Any:
    return _NEG_INF if bound is None else bound


def _hi(bound: Optional[int]) -> Any:
    return _POS_INF if bound is None else bound


def _normalize_intervals(intervals: Iterable[Interval]) -> IntervalSet:
    """Sort, drop empties, and merge touching/overlapping intervals."""
    cleaned = [iv for iv in intervals if _lo(iv[0]) <= _hi(iv[1])]
    cleaned.sort(key=lambda iv: (_lo(iv[0]), _hi(iv[1])))
    merged: List[Interval] = []
    for low, high in cleaned:
        if merged:
            plow, phigh = merged[-1]
            # Adjacent integer intervals (e.g. [0,5] and [6,9]) merge.
            if _lo(low) <= _hi(phigh) + 1:
                if _hi(high) > _hi(phigh):
                    merged[-1] = (plow, high)
                continue
        merged.append((low, high))
    return tuple(merged)


def _intersect_intervals(a: IntervalSet, b: IntervalSet) -> IntervalSet:
    out: List[Interval] = []
    for alow, ahigh in a:
        for blow, bhigh in b:
            low = alow if _lo(alow) >= _lo(blow) else blow
            high = ahigh if _hi(ahigh) <= _hi(bhigh) else bhigh
            if _lo(low) <= _hi(high):
                out.append((low, high))
    return _normalize_intervals(out)


def _union_intervals(a: IntervalSet, b: IntervalSet) -> IntervalSet:
    return _normalize_intervals(list(a) + list(b))


def _complement_intervals(a: IntervalSet) -> IntervalSet:
    """Integer complement of a *normalized* interval set."""
    out: List[Interval] = []
    cursor: Any = _NEG_INF  # first value not yet covered by ``a``
    for low, high in a:
        if _lo(low) > cursor:
            out.append((None if cursor == _NEG_INF else int(cursor), low - 1))
        if high is None:
            return _normalize_intervals(out)
        cursor = high + 1
    out.append((None if cursor == _NEG_INF else int(cursor), None))
    return _normalize_intervals(out)


def _interval_contains(intervals: IntervalSet, value: int) -> bool:
    return any(_lo(low) <= value <= _hi(high) for low, high in intervals)


#: Full integer line — the interval form of ``always``.
_FULL_LINE: IntervalSet = ((None, None),)

_cache_tokens = itertools.count(1)


def _range_backing(objects: Any) -> Optional[range]:
    """The ``range`` behind an iterable, if there is one.

    Recognizes raw ``range`` objects and anything exposing a ``backing``
    attribute that is one (``Domain.integers`` keeps its range lazy).
    """
    if isinstance(objects, range):
        return objects
    backing = getattr(objects, "backing", None)
    if isinstance(backing, range):
        return backing
    return None


def _clip_range(backing: range, low: Optional[int], high: Optional[int]) -> range:
    """The sub-range of ``backing`` whose values lie in ``[low, high]``,
    preserving the backing's stride, phase, and iteration direction."""
    step = backing.step
    start, stop = backing.start, backing.stop
    if step > 0:
        if low is not None and low > start:
            start += -(-(low - start) // step) * step  # ceil to stride
        if high is not None:
            stop = min(stop, high + 1)
    else:
        if high is not None and high < start:
            start += -(-(start - high) // -step) * step
        if low is not None:
            stop = max(stop, low - 1)
    return range(start, stop, step)


def _clipped_subranges(backing: range, intervals: IntervalSet) -> List[range]:
    """``backing`` ∩ ``intervals`` as sub-ranges, in iteration order."""
    ordered = intervals if backing.step > 0 else tuple(reversed(intervals))
    return [
        clipped
        for low, high in ordered
        if len(clipped := _clip_range(backing, low, high))
    ]


class Predicate:
    """A named boolean condition over analysis objects.

    Wraps a callable and a human-readable description.  Combinators build
    new predicates; descriptions compose so rendered FSMs stay legible.
    Evaluation errors are treated as *rejection* (a predicate that cannot
    be established does not hold) — matching the fail-secure reading the
    paper gives to checks.
    """

    def __init__(
        self,
        fn: Callable[[Any], bool],
        description: str,
        intervals: Optional[IntervalSet] = None,
        spec: Optional[Any] = None,
    ) -> None:
        self._fn = fn
        self.description = description
        #: Closed-form integer denotation, when one exists (see module
        #: header).  ``None`` means "opaque — evaluate the callable".
        self._intervals = intervals
        #: Declarative rebuild term (see :mod:`repro.core.predspec`);
        #: ``None`` means the predicate cannot be serialized by meaning.
        self._spec = spec
        self._spec_hash: Optional[str] = None
        #: Stable cache identity: unique per instance, never reused
        #: (unlike ``id``), so memoization keys survive garbage
        #: collection of unrelated predicates.
        self._cache_token = next(_cache_tokens)
        #: Bumped whenever the underlying callable is rebound, so caches
        #: keyed on ``cache_key`` never serve stale verdicts.
        self._cache_version = 0

    @property
    def cache_key(self) -> Tuple[int, int]:
        """Key identifying this predicate *and its current behaviour*
        for memoization (see :mod:`repro.core.sweep`)."""
        return (self._cache_token, self._cache_version)

    @property
    def intervals(self) -> Optional[IntervalSet]:
        """The closed-form integer denotation, or ``None`` if opaque."""
        return self._intervals

    @property
    def spec(self) -> Optional[Any]:
        """The declarative rebuild term, or ``None`` if opaque."""
        return self._spec

    @property
    def spec_hash(self) -> Optional[str]:
        """Stable digest of :attr:`spec` — equal for semantically equal
        predicates built in different processes or runs — or ``None``
        for opaque predicates.  Computed once, lazily."""
        if self._spec is None:
            return None
        if self._spec_hash is None:
            from .predspec import spec_digest

            self._spec_hash = spec_digest(self._spec)
        return self._spec_hash

    def __reduce_ex__(self, protocol: int):
        """Spec-carrying predicates pickle as their spec (plus display
        description), so any library-built predicate crosses process
        boundaries regardless of the lambdas inside.  Opaque predicates
        fall back to default pickling — which works exactly when the
        raw callable itself is picklable."""
        if self._spec is not None:
            from .predspec import _rebuild_predicate

            return (_rebuild_predicate, (self._spec, self.description))
        return super().__reduce_ex__(protocol)

    def rebind(self, fn: Callable[[Any], bool],
               description: Optional[str] = None) -> "Predicate":
        """Mutate this predicate in place to a new condition.

        Bumps the cache version so any memoized verdicts for the old
        callable are invalidated; drops the closed form and the spec
        (the new callable is opaque).  Returns ``self`` for chaining.
        """
        self._fn = fn
        if description is not None:
            self.description = description
        self._intervals = None
        self._spec = None
        self._spec_hash = None
        self._cache_version += 1
        return self

    def __call__(self, obj: Any) -> bool:
        return self.evaluate(obj)

    def evaluate(self, obj: Any) -> bool:
        """Evaluate over ``obj``; exceptions count as False."""
        try:
            return bool(self._fn(obj))
        except Exception:
            return False

    def holds_raising(self, obj: Any) -> bool:
        """Evaluate without the exception shield (for debugging models)."""
        return bool(self._fn(obj))

    # -- combinators --------------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        intervals = None
        if self._intervals is not None and other._intervals is not None:
            intervals = _intersect_intervals(self._intervals, other._intervals)
        spec = None
        if self._spec is not None and other._spec is not None:
            spec = ["and", self._spec, other._spec]
        return Predicate(
            lambda obj: self.evaluate(obj) and other.evaluate(obj),
            f"({self.description}) and ({other.description})",
            intervals=intervals,
            spec=spec,
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        intervals = None
        if self._intervals is not None and other._intervals is not None:
            intervals = _union_intervals(self._intervals, other._intervals)
        spec = None
        if self._spec is not None and other._spec is not None:
            spec = ["or", self._spec, other._spec]
        return Predicate(
            lambda obj: self.evaluate(obj) or other.evaluate(obj),
            f"({self.description}) or ({other.description})",
            intervals=intervals,
            spec=spec,
        )

    def __invert__(self) -> "Predicate":
        intervals = None
        if self._intervals is not None:
            intervals = _complement_intervals(self._intervals)
        return Predicate(
            lambda obj: not self.evaluate(obj),
            f"not ({self.description})",
            intervals=intervals,
            spec=None if self._spec is None else ["not", self._spec],
        )

    def implies(self, other: "Predicate") -> "Predicate":
        """Material implication, useful for stating spec ⊆ impl facts."""
        return (~self) | other

    def renamed(self, description: str) -> "Predicate":
        """Same condition, new display name (and, being semantically
        identical, the same spec and spec hash)."""
        return Predicate(self._fn, description, intervals=self._intervals,
                         spec=self._spec)

    # -- batch evaluation -----------------------------------------------------

    def evaluate_batch(self, objects: Iterable[Any]) -> List[bool]:
        """Evaluate over many objects at once.

        Semantically identical to ``[self.evaluate(o) for o in objects]``.
        Predicates with a closed-form integer denotation evaluated over a
        ``range`` skip the per-object callable entirely and answer by
        interval membership; everything else takes the loop fallback.
        """
        backing = _range_backing(objects)
        if backing is not None and self._intervals is not None:
            intervals = self._intervals
            return [_interval_contains(intervals, value) for value in backing]
        evaluate = self.evaluate
        return [evaluate(obj) for obj in objects]

    def count_over(self, domain: Iterable[Any]) -> int:
        """How many domain objects satisfy the predicate.

        O(1) per interval for closed-form predicates over ``range``-backed
        domains; an O(n) scan otherwise.
        """
        backing = _range_backing(domain)
        if backing is not None and self._intervals is not None:
            return sum(
                len(sub) for sub in _clipped_subranges(backing, self._intervals)
            )
        evaluate = self.evaluate
        return sum(1 for obj in domain if evaluate(obj))

    # -- domain queries -------------------------------------------------------

    def witnesses(self, domain: Iterable[Any], limit: int = 10) -> List[Any]:
        """Up to ``limit`` objects from ``domain`` satisfying the predicate."""
        backing = _range_backing(domain)
        if backing is not None and self._intervals is not None:
            found: List[Any] = []
            for sub in _clipped_subranges(backing, self._intervals):
                take = min(limit - len(found), len(sub))
                found.extend(sub[:take])
                if len(found) >= limit:
                    break
            return found
        found = []
        for candidate in domain:
            if self.evaluate(candidate):
                found.append(candidate)
                if len(found) >= limit:
                    break
        return found

    def holds_over(self, domain: Iterable[Any]) -> bool:
        """True when the predicate holds for every element of ``domain``."""
        backing = _range_backing(domain)
        if backing is not None and self._intervals is not None:
            return self.count_over(backing) == len(backing)
        return all(self.evaluate(candidate) for candidate in domain)

    def __repr__(self) -> str:
        return f"Predicate({self.description!r})"


def predicate(description: str) -> Callable[[Callable[[Any], bool]], Predicate]:
    """Decorator form: ``@predicate("0 <= x <= 100")``."""

    def wrap(fn: Callable[[Any], bool]) -> Predicate:
        return Predicate(fn, description)

    return wrap


#: The vacuous check — accepts everything.  An implementation predicate
#: of ``always`` is the paper's "no check performed" (IMPL_REJ absent).
always = Predicate(lambda _obj: True, "true", intervals=_FULL_LINE,
                   spec=["true"])

#: Rejects everything.
never = Predicate(lambda _obj: False, "false", intervals=(), spec=["false"])


def truthy(description: str = "the object is truthy") -> Predicate:
    """``bool(·)`` — the state-flag checks of the reference-consistency
    pFSMs (``addr_free unchanged``, ``handler registered``, ...)."""
    return Predicate(bool, description, spec=["truthy"])


def _get(obj: Any, name: str) -> Any:
    """Attribute access that also understands mappings."""
    if isinstance(obj, Mapping):
        return obj[name]
    return getattr(obj, name)


def attr(name: str, inner: Predicate) -> Predicate:
    """Apply ``inner`` to a named attribute/key of the object."""
    return Predicate(
        lambda obj: inner.evaluate(_get(obj, name)),
        inner.description.replace("·", name)
        if "·" in inner.description
        else f"{name}: {inner.description}",
        spec=None if inner.spec is None else ["attr", name, inner.spec],
    )


def _value_spec(op: str, value: Any) -> Optional[List[Any]]:
    """``[op, encoded value]`` when the value survives the spec value
    codec, else ``None`` (the predicate stays opaque)."""
    from .predspec import try_encode_value

    encoded, ok = try_encode_value(value)
    return [op, encoded] if ok else None


def equals(expected: Any) -> Predicate:
    """``· == expected``."""
    intervals: Optional[IntervalSet] = None
    if isinstance(expected, int) and not isinstance(expected, bool):
        intervals = ((expected, expected),)
    return Predicate(lambda obj: obj == expected, f"· == {expected!r}",
                     intervals=intervals, spec=_value_spec("eq", expected))


def in_range(low: int, high: int) -> Predicate:
    """``low <= · <= high`` — the corrected Sendmail predicate is
    ``in_range(0, 100)``."""
    return Predicate(lambda obj: low <= int(obj) <= high,
                     f"{low} <= · <= {high}",
                     intervals=_normalize_intervals([(low, high)]),
                     spec=["range", low, high])


def less_equal(bound: int) -> Predicate:
    """``· <= bound`` — the *incomplete* Sendmail check is
    ``less_equal(100)``."""
    return Predicate(lambda obj: int(obj) <= bound, f"· <= {bound}",
                     intervals=((None, bound),), spec=["le", bound])


def greater_equal(bound: int) -> Predicate:
    """``· >= bound`` — e.g. ``contentLen >= 0`` (Figure 4 pFSM1)."""
    return Predicate(lambda obj: int(obj) >= bound, f"· >= {bound}",
                     intervals=((bound, None),), spec=["ge", bound])


def length_le(bound: int) -> Predicate:
    """``length(·) <= bound`` — buffer-copy content checks."""
    return Predicate(lambda obj: len(obj) <= bound, f"length(·) <= {bound}",
                     spec=["lenle", bound])


def contains(substring: Any) -> Predicate:
    """``substring in ·`` — e.g. the IIS ``../`` content check."""
    return Predicate(lambda obj: substring in obj, f"· contains {substring!r}",
                     spec=_value_spec("contains", substring))


def not_contains(substring: Any) -> Predicate:
    """``substring not in ·``."""
    return Predicate(
        lambda obj: substring not in obj, f"· does not contain {substring!r}",
        spec=_value_spec("ncontains", substring),
    )


def matches(pattern: str) -> Predicate:
    """Regex search over strings/bytes."""
    compiled = re.compile(pattern)

    def check(obj: Any) -> bool:
        if isinstance(obj, bytes):
            return bool(re.search(pattern.encode("latin-1"), obj))
        return bool(compiled.search(obj))

    return Predicate(check, f"· matches /{pattern}/",
                     spec=["matches", pattern])


def is_instance(*types: type) -> Predicate:
    """Python-level object type check."""
    names = ", ".join(t.__name__ for t in types)
    return Predicate(lambda obj: isinstance(obj, types), f"· is a {names}",
                     spec=["isa", [[t.__module__, t.__qualname__]
                                   for t in types]])


def satisfies_all(*preds: Predicate) -> Predicate:
    """Conjunction of many predicates."""
    result: Optional[Predicate] = None
    for pred in preds:
        result = pred if result is None else (result & pred)
    return result if result is not None else always


def satisfies_any(*preds: Predicate) -> Predicate:
    """Disjunction of many predicates."""
    result: Optional[Predicate] = None
    for pred in preds:
        result = pred if result is None else (result | pred)
    return result if result is not None else never
