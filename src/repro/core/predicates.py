"""Predicate algebra for pFSM conditions.

Observation 3 of the paper: for each elementary activity, the
vulnerability data and code inspection allow deriving a *predicate*
which, if violated, results in a security vulnerability.  A pFSM is then
"a predicate for accepting an input object with respect to the
specification and implementation".

This module makes predicates first-class: named, composable (``&``,
``|``, ``~``), evaluable over arbitrary analysis objects, and queryable
over finite domains (for hidden-path witness search).  A small library of
constructors covers the checks appearing in the paper's Table 2 —
numeric ranges (``0 <= x <= 100``), length bounds
(``length(input) <= size(buffer)``), content checks (contains ``../``,
contains format directives), type checks, and reference-consistency
comparisons.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, List, Mapping, Optional

__all__ = [
    "Predicate",
    "predicate",
    "always",
    "never",
    "attr",
    "equals",
    "in_range",
    "less_equal",
    "greater_equal",
    "length_le",
    "contains",
    "not_contains",
    "matches",
    "is_instance",
    "satisfies_all",
    "satisfies_any",
]


class Predicate:
    """A named boolean condition over analysis objects.

    Wraps a callable and a human-readable description.  Combinators build
    new predicates; descriptions compose so rendered FSMs stay legible.
    Evaluation errors are treated as *rejection* (a predicate that cannot
    be established does not hold) — matching the fail-secure reading the
    paper gives to checks.
    """

    def __init__(self, fn: Callable[[Any], bool], description: str) -> None:
        self._fn = fn
        self.description = description

    def __call__(self, obj: Any) -> bool:
        return self.evaluate(obj)

    def evaluate(self, obj: Any) -> bool:
        """Evaluate over ``obj``; exceptions count as False."""
        try:
            return bool(self._fn(obj))
        except Exception:
            return False

    def holds_raising(self, obj: Any) -> bool:
        """Evaluate without the exception shield (for debugging models)."""
        return bool(self._fn(obj))

    # -- combinators --------------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda obj: self.evaluate(obj) and other.evaluate(obj),
            f"({self.description}) and ({other.description})",
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda obj: self.evaluate(obj) or other.evaluate(obj),
            f"({self.description}) or ({other.description})",
        )

    def __invert__(self) -> "Predicate":
        return Predicate(
            lambda obj: not self.evaluate(obj), f"not ({self.description})"
        )

    def implies(self, other: "Predicate") -> "Predicate":
        """Material implication, useful for stating spec ⊆ impl facts."""
        return (~self) | other

    def renamed(self, description: str) -> "Predicate":
        """Same condition, new display name."""
        return Predicate(self._fn, description)

    # -- domain queries -------------------------------------------------------

    def witnesses(self, domain: Iterable[Any], limit: int = 10) -> List[Any]:
        """Up to ``limit`` objects from ``domain`` satisfying the predicate."""
        found: List[Any] = []
        for candidate in domain:
            if self.evaluate(candidate):
                found.append(candidate)
                if len(found) >= limit:
                    break
        return found

    def holds_over(self, domain: Iterable[Any]) -> bool:
        """True when the predicate holds for every element of ``domain``."""
        return all(self.evaluate(candidate) for candidate in domain)

    def __repr__(self) -> str:
        return f"Predicate({self.description!r})"


def predicate(description: str) -> Callable[[Callable[[Any], bool]], Predicate]:
    """Decorator form: ``@predicate("0 <= x <= 100")``."""

    def wrap(fn: Callable[[Any], bool]) -> Predicate:
        return Predicate(fn, description)

    return wrap


#: The vacuous check — accepts everything.  An implementation predicate
#: of ``always`` is the paper's "no check performed" (IMPL_REJ absent).
always = Predicate(lambda _obj: True, "true")

#: Rejects everything.
never = Predicate(lambda _obj: False, "false")


def _get(obj: Any, name: str) -> Any:
    """Attribute access that also understands mappings."""
    if isinstance(obj, Mapping):
        return obj[name]
    return getattr(obj, name)


def attr(name: str, inner: Predicate) -> Predicate:
    """Apply ``inner`` to a named attribute/key of the object."""
    return Predicate(
        lambda obj: inner.evaluate(_get(obj, name)),
        inner.description.replace("·", name)
        if "·" in inner.description
        else f"{name}: {inner.description}",
    )


def equals(expected: Any) -> Predicate:
    """``· == expected``."""
    return Predicate(lambda obj: obj == expected, f"· == {expected!r}")


def in_range(low: int, high: int) -> Predicate:
    """``low <= · <= high`` — the corrected Sendmail predicate is
    ``in_range(0, 100)``."""
    return Predicate(lambda obj: low <= int(obj) <= high,
                     f"{low} <= · <= {high}")


def less_equal(bound: int) -> Predicate:
    """``· <= bound`` — the *incomplete* Sendmail check is
    ``less_equal(100)``."""
    return Predicate(lambda obj: int(obj) <= bound, f"· <= {bound}")


def greater_equal(bound: int) -> Predicate:
    """``· >= bound`` — e.g. ``contentLen >= 0`` (Figure 4 pFSM1)."""
    return Predicate(lambda obj: int(obj) >= bound, f"· >= {bound}")


def length_le(bound: int) -> Predicate:
    """``length(·) <= bound`` — buffer-copy content checks."""
    return Predicate(lambda obj: len(obj) <= bound, f"length(·) <= {bound}")


def contains(substring: Any) -> Predicate:
    """``substring in ·`` — e.g. the IIS ``../`` content check."""
    return Predicate(lambda obj: substring in obj, f"· contains {substring!r}")


def not_contains(substring: Any) -> Predicate:
    """``substring not in ·``."""
    return Predicate(
        lambda obj: substring not in obj, f"· does not contain {substring!r}"
    )


def matches(pattern: str) -> Predicate:
    """Regex search over strings/bytes."""
    compiled = re.compile(pattern)

    def check(obj: Any) -> bool:
        if isinstance(obj, bytes):
            return bool(re.search(pattern.encode("latin-1"), obj))
        return bool(compiled.search(obj))

    return Predicate(check, f"· matches /{pattern}/")


def is_instance(*types: type) -> Predicate:
    """Python-level object type check."""
    names = ", ".join(t.__name__ for t in types)
    return Predicate(lambda obj: isinstance(obj, types), f"· is a {names}")


def satisfies_all(*preds: Predicate) -> Predicate:
    """Conjunction of many predicates."""
    result: Optional[Predicate] = None
    for pred in preds:
        result = pred if result is None else (result & pred)
    return result if result is not None else always


def satisfies_any(*preds: Predicate) -> Predicate:
    """Disjunction of many predicates."""
    result: Optional[Predicate] = None
    for pred in preds:
        result = pred if result is None else (result | pred)
    return result if result is not None else never
