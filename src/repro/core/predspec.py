"""Declarative predicate specs — serializing predicates by *meaning*.

The :class:`~repro.core.predicates.Predicate` combinator library closes
over lambdas, so a predicate object is only picklable by accident.  That
made ``sweep_models(mode="process")`` fall back to threads for any model
using an opaque check — i.e. for most of the bundled corpus.  This module
fixes the representation instead of the transport: every library
constructor emits a small declarative *spec* term describing how to
rebuild the predicate, and this module is the codec for those terms.

A spec is a nested JSON-serializable list, e.g.::

    ["range", 0, 100]
    ["and", ["ge", 0], ["attr", "length", ["le", 100]]]
    ["named", "repro.models.sendmail", "represents_int32"]

Three operations are exposed:

``to_spec(pred)`` / ``from_spec(spec)``
    Round-trip between predicates and spec terms.  ``from_spec`` rebuilds
    through the ordinary :mod:`repro.core.predicates` constructors, so
    the result carries the same closed-form interval denotation (and the
    same spec) as the original.

``spec_digest(spec)``
    A stable SHA-256 digest of the canonical JSON encoding — equal for
    semantically equal predicates built in different processes or runs.
    This is the identity used by spec-keyed caches and resumable sweeps.

``named_predicate(name, fn, description)``
    Registers an application-defined check under ``(module, name)`` and
    returns a Predicate whose spec is ``["named", module, name]``.  The
    lambda never crosses the process boundary: the receiving side imports
    ``module`` (re-running the registration) and looks the check up by
    name.  App models use this for checks with no library closed form.

Pickle integration lives in ``Predicate.__reduce_ex__``: spec-carrying
predicates serialize as ``(_rebuild_predicate, (spec, description))``,
so any library-built predicate crosses a spawn/fork boundary regardless
of the lambdas inside it.
"""

from __future__ import annotations

import base64
import hashlib
import importlib
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from .predicates import (
    Predicate,
    always,
    attr,
    contains,
    equals,
    greater_equal,
    in_range,
    is_instance,
    length_le,
    less_equal,
    matches,
    never,
    not_contains,
    truthy,
)

__all__ = [
    "UnknownPredicateError",
    "named_predicate",
    "to_spec",
    "from_spec",
    "spec_digest",
    "spec_fields",
    "encode_value",
    "decode_value",
    "try_encode_value",
]


class UnknownPredicateError(KeyError):
    """A spec term references an operator or named predicate that this
    process cannot resolve."""


# ---------------------------------------------------------------------------
# Value codec.
#
# Spec terms must survive canonical JSON (for hashing) and JSONL result
# stores, so predicate *arguments* (the ``expected`` of ``equals``, the
# needle of ``contains``) are encoded into a tagged-JSON form.  Values
# outside the codec simply leave the predicate opaque — correctness is
# never at stake, only distributability.
# ---------------------------------------------------------------------------

_SCALARS = (type(None), bool, int, float, str)


def encode_value(value: Any) -> Any:
    """Encode a predicate argument as tagged JSON.

    Raises :class:`ValueError` for values outside the codec.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"__list__": [encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        encoded = [encode_value(v) for v in value]
        # Canonical member order so equal sets hash equally.
        encoded.sort(key=lambda e: json.dumps(e, sort_keys=True))
        tag = "__frozenset__" if isinstance(value, frozenset) else "__set__"
        return {tag: encoded}
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            raise ValueError("only str-keyed mappings are encodable")
        return {"__dict__": {k: encode_value(v) for k, v in value.items()}}
    raise ValueError(f"value of type {type(value).__name__} is not encodable")


def try_encode_value(value: Any) -> Tuple[Any, bool]:
    """``(encoded, True)`` on success, ``(None, False)`` otherwise."""
    try:
        return encode_value(value), True
    except ValueError:
        return None, False


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, _SCALARS):
        return encoded
    if isinstance(encoded, list):
        return [decode_value(v) for v in encoded]
    if isinstance(encoded, dict):
        if len(encoded) == 1:
            (tag, payload), = encoded.items()
            if tag == "__bytes__":
                return base64.b64decode(payload)
            if tag == "__tuple__":
                return tuple(decode_value(v) for v in payload)
            if tag == "__list__":
                return [decode_value(v) for v in payload]
            if tag == "__set__":
                return {decode_value(v) for v in payload}
            if tag == "__frozenset__":
                return frozenset(decode_value(v) for v in payload)
            if tag == "__dict__":
                return {k: decode_value(v) for k, v in payload.items()}
        return {k: decode_value(v) for k, v in encoded.items()}
    raise ValueError(f"malformed encoded value: {encoded!r}")


# ---------------------------------------------------------------------------
# Digests.
# ---------------------------------------------------------------------------

def spec_digest(spec: Any) -> str:
    """SHA-256 over the canonical JSON form of ``spec``."""
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"),
                         ensure_ascii=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def spec_fields(spec: Any) -> Tuple[str, ...]:
    """Record field names referenced by ``attr`` terms of ``spec``.

    Returned in first-reference order — these are exactly the columns a
    columnar kernel (:mod:`repro.core.columnar`) would have to
    materialize to evaluate the spec over a record domain, which makes
    this the cheap pre-flight check before committing to an encoding.
    Malformed terms contribute nothing (the interpreter would shield
    them to ``False`` anyway).
    """
    found: List[str] = []

    def walk(node: Any) -> None:
        if not isinstance(node, (list, tuple)) or not node:
            return
        op = node[0]
        if op == "attr":
            if len(node) >= 2 and isinstance(node[1], str) \
                    and node[1] not in found:
                found.append(node[1])
            for child in node[2:]:
                walk(child)
        elif op in ("and", "or", "not"):
            for child in node[1:]:
                walk(child)

    walk(spec)
    return tuple(found)


# ---------------------------------------------------------------------------
# Named-predicate registry.
# ---------------------------------------------------------------------------

_REGISTRY: Dict[Tuple[str, str], Predicate] = {}


def named_predicate(
    name: str,
    fn: Any,
    description: Optional[str] = None,
    *,
    module: Optional[str] = None,
) -> Predicate:
    """Register an application check and return its spec-carrying form.

    ``fn`` may be a plain callable or an existing :class:`Predicate`
    (whose callable, closed form, and — absent an explicit
    ``description`` — display name are reused).  ``module`` defaults to
    the caller's module; it must be importable in worker processes,
    since ``from_spec(["named", module, name])`` resolves unknown names
    by importing ``module`` and expecting the registration to re-run.

    Registration is idempotent by ``(module, name)``: re-importing a
    model module (as spawn-based workers do) silently overwrites the
    previous entry with an equivalent one.
    """
    if module is None:
        try:
            module = sys._getframe(1).f_globals.get("__name__")
        except ValueError:  # pragma: no cover - exotic interpreters
            module = None
        if module is None:
            module = getattr(fn, "__module__", "__main__")
    spec = ["named", module, name]
    if isinstance(fn, Predicate):
        pred = Predicate(
            fn._fn,
            description if description is not None else fn.description,
            intervals=fn.intervals,
            spec=spec,
        )
    else:
        pred = Predicate(fn, description if description is not None else name,
                         spec=spec)
    _REGISTRY[(module, name)] = pred
    return pred


def _lookup_named(module: str, name: str) -> Predicate:
    key = (module, name)
    if key not in _REGISTRY:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise UnknownPredicateError(
                f"named predicate {name!r}: module {module!r} not importable"
            ) from exc
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownPredicateError(
            f"module {module!r} did not register a predicate named {name!r}"
        ) from None


# ---------------------------------------------------------------------------
# Spec ↔ predicate round-trip.
# ---------------------------------------------------------------------------

def _resolve_type(module: str, qualname: str) -> type:
    obj: Any = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not isinstance(obj, type):
        raise UnknownPredicateError(f"{module}.{qualname} is not a type")
    return obj


_BUILDERS: Dict[str, Callable[..., Predicate]] = {
    "true": lambda: always,
    "false": lambda: never,
    "truthy": lambda: truthy(),
    "eq": lambda v: equals(decode_value(v)),
    "range": lambda low, high: in_range(low, high),
    "le": lambda bound: less_equal(bound),
    "ge": lambda bound: greater_equal(bound),
    "lenle": lambda bound: length_le(bound),
    "contains": lambda v: contains(decode_value(v)),
    "ncontains": lambda v: not_contains(decode_value(v)),
    "matches": lambda pattern: matches(pattern),
    "isa": lambda types: is_instance(
        *[_resolve_type(mod, qual) for mod, qual in types]
    ),
    "attr": lambda name, inner: attr(name, from_spec(inner)),
    "and": lambda a, b: from_spec(a) & from_spec(b),
    "or": lambda a, b: from_spec(a) | from_spec(b),
    "not": lambda a: ~from_spec(a),
    "named": _lookup_named,
}


def to_spec(pred: Predicate) -> Any:
    """The declarative term rebuilding ``pred``.

    Raises :class:`ValueError` for opaque predicates (raw lambdas via
    ``@predicate`` that were never registered with
    :func:`named_predicate`).
    """
    spec = pred.spec
    if spec is None:
        raise ValueError(
            f"predicate {pred.description!r} is opaque (no spec); register "
            "it with named_predicate() to make it distributable"
        )
    return spec


def from_spec(spec: Any) -> Predicate:
    """Rebuild a predicate from its spec term."""
    if not isinstance(spec, (list, tuple)) or not spec:
        raise UnknownPredicateError(f"malformed spec term: {spec!r}")
    op = spec[0]
    builder = _BUILDERS.get(op)
    if builder is None:
        raise UnknownPredicateError(f"unknown spec operator: {op!r}")
    try:
        return builder(*spec[1:])
    except UnknownPredicateError:
        raise
    except TypeError as exc:
        raise UnknownPredicateError(
            f"malformed arguments for spec operator {op!r}: {spec!r}"
        ) from exc


def _rebuild_predicate(spec: Any, description: str) -> Predicate:
    """Unpickle hook (see ``Predicate.__reduce_ex__``)."""
    pred = from_spec(spec)
    if pred.description != description:
        pred = pred.renamed(description)
    return pred
